"""The paper's introduction scenario: the unicorn name generator.

A manager must generate a unicorn name for every customer in a
spreadsheet using a web form that is disconnected from the CRM.  Instead
of copy-pasting 100 names by hand, she demonstrates the first two rounds
(enter name, click Generate, scrape the result); WebRobot synthesizes the
data-entry loop and automates the rest through the interactive session.

Run with::

    python examples/unicorn_names.py
"""

from repro import Browser, DataSource, InteractiveSession, OracleUser, Synthesizer, format_program
from repro import parse_program, record_ground_truth
from repro.benchmarks.sites.unicorn_namer import UnicornNamerSite

CUSTOMERS = ["ada stone", "bob reyes", "cyd okoye", "dee lam", "eli fox",
             "fay dorn", "gus pike", "hal voss"]

GROUND_TRUTH = parse_program("""
foreach c in ValuePaths(x["customers"]) do
  EnterData(//input[@name='customer'][1], c)
  Click(//button[@class='generate'][1])
  ScrapeText(//div[@class='unicornName'][1])
""")


def main() -> None:
    data = DataSource({"customers": CUSTOMERS})
    recording = record_ground_truth(UnicornNamerSite(), GROUND_TRUTH, data)

    browser = Browser(UnicornNamerSite(), data)
    session = InteractiveSession(
        browser,
        Synthesizer(data),
        OracleUser(recording),
    )
    report = session.run()

    print("Interactive session finished.")
    print(f"  demonstrated by hand : {report.demonstrated} actions")
    print(f"  authorized one-by-one: {report.authorized} actions")
    print(f"  automated by robot   : {report.automated} actions")
    print(f"  task completed       : {report.completed}\n")

    actions, snapshots = browser.trace()
    result = Synthesizer(data).synthesize(actions[:-1], snapshots[:-1])
    if result.best_program is not None:
        print("Synthesized program:")
        print(format_program(result.best_program))

    print("\nCustomer -> unicorn name:")
    for customer, unicorn in zip(CUSTOMERS, browser.outputs):
        print(f"  {customer:12s} -> {unicorn}")


if __name__ == "__main__":
    main()
