"""The paper's §2 walkthrough: P1 → P2 → P3 → P4 on the store locator.

Ellie wants store names and phone numbers for a list of zip codes from a
paginated store locator.  This script replays her interactive session —
demonstrate, authorize, automate — and prints the programs WebRobot
synthesizes at the same milestones the paper highlights:

* P1 after the first few scrapes (one loop over the cards),
* P2 after she moves to page two (two loops in sequence),
* P3 after she clicks "next page" a second time (a while loop),
* P4 after she starts the second zip code (the full three-level program).

Run with::

    python examples/store_scraper.py
"""

from repro import DataSource, Synthesizer, format_program, parse_program, record_ground_truth
from repro.benchmarks.sites.store_locator import StoreLocatorSite

ZIPS = DataSource({"zips": ["48104", "48105"]})

GROUND_TRUTH = parse_program("""
foreach z in ValuePaths(x["zips"]) do
  EnterData(//input[@name='search'][1], z)
  Click(//button[@class='squareButton btnDoSearch'][1])
  while true do
    foreach r in Dscts(/, div[@class='rightContainer']) do
      ScrapeText(r//h3[1])
      ScrapeText(r//div[@class='locatorPhone'][1])
    Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


def main() -> None:
    site = StoreLocatorSite(pages_per_zip=3, stores_per_page=4)
    recording = record_ground_truth(site, GROUND_TRUTH, ZIPS)
    print(f"Ellie's full task: {recording.length} actions "
          f"({len(recording.outputs)} values scraped)\n")

    synthesizer = Synthesizer(ZIPS)
    milestones = {}
    previous = ""
    for k in range(1, recording.length):
        actions, snapshots = recording.prefix(k)
        result = synthesizer.synthesize(actions, snapshots)
        if result.best_program is None:
            continue
        rendered = format_program(result.best_program)
        if rendered != previous:
            milestones[k] = rendered
            previous = rendered

    # print the four structurally distinct milestones the paper shows
    shown = 0
    last_shape = None
    for k, rendered in milestones.items():
        shape = (rendered.count("foreach"), rendered.count("while"))
        if shape != last_shape:
            shown += 1
            last_shape = shape
            print(f"=== after action {k} (P{shown}) ===")
            print(rendered)
            print()
    print("Done: the final program automates every remaining zip code.")


if __name__ == "__main__":
    main()
