"""Defining your own virtual website and automating it.

Shows the full substrate API: subclass ``VirtualWebsite`` (states render
to DOM snapshots; clicks and typing are state transitions), demonstrate a
few actions against it, and let the synthesizer take over.  The example
site is a two-page bookshelf with a "show more" button.

Run with::

    python examples/custom_site.py
"""

from repro import Browser, Synthesizer, VirtualWebsite, format_program
from repro.dom import E, page, parse_selector
from repro.lang import EMPTY_DATA, click, scrape_text


class BookshelfSite(VirtualWebsite):
    """Two shelves of books behind a 'show more' button."""

    SHELVES = {
        1: [("Gödel, Escher, Bach", "Hofstadter"), ("SICP", "Abelson & Sussman")],
        2: [("TAPL", "Pierce"), ("The Little Typer", "Friedman"),
            ("Software Foundations", "Pierce et al.")],
    }

    def initial_state(self):
        return 1  # shelf number

    def url(self, state):
        return f"virtual://bookshelf/shelf/{state}"

    def render(self, state):
        rows = [
            E("li", {"class": "book"},
              E("span", {"class": "title"}, text=title),
              E("span", {"class": "author"}, text=author))
            for title, author in self.SHELVES[state]
        ]
        more = []
        if state < len(self.SHELVES):
            more.append(E("button", {"class": "more"}, text="show more"))
        return page(
            E("h1", text=f"Shelf {state}"),
            E("ul", {"class": "books"}, *rows),
            *more,
        )

    def on_click(self, state, node, dom):
        if node.tag == "button" and "more" in node.get("class"):
            if state < len(self.SHELVES):
                return state + 1
        return None


def main() -> None:
    browser = Browser(BookshelfSite())

    # Demonstrate: both fields of both books on shelf 1, then 'show more'
    # and the first book of shelf 2.
    for book in (1, 2):
        browser.perform(scrape_text(parse_selector(f"//li[@class='book'][{book}]/span[1]")))
        browser.perform(scrape_text(parse_selector(f"//li[@class='book'][{book}]/span[2]")))
    browser.perform(click(parse_selector("//button[@class='more'][1]")))
    browser.perform(scrape_text(parse_selector("//li[@class='book'][1]/span[1]")))
    browser.perform(scrape_text(parse_selector("//li[@class='book'][1]/span[2]")))

    synthesizer = Synthesizer(EMPTY_DATA)
    # Automate the rest, one predicted action at a time.
    while True:
        actions, snapshots = browser.trace()
        result = synthesizer.synthesize(actions, snapshots)
        if result.best_prediction is None:
            break
        browser.perform(result.best_prediction)

    actions, snapshots = browser.trace()
    final = synthesizer.synthesize(actions[:-1], snapshots[:-1])
    if final.best_program:
        print("Program in effect at the last prediction:")
        print(format_program(final.best_program))
    print(f"\nScraped {len(browser.outputs)} values:")
    for value in browser.outputs:
        print(f"  {value}")


if __name__ == "__main__":
    main()
