"""Export a synthesized robot as a standalone Selenium/Playwright script.

Scenario: the paper's authors hand-wrote Selenium programs as ground
truths ("30 minutes to a few hours" each, §7).  With WebRobot the flow
reverses — demonstrate a few actions, synthesize the program, then
*generate* the Selenium script.  This example demonstrates scraping two
cards, synthesizes the loop, statically checks it, and prints both
exported scripts plus a provenance explanation of what the program did.

Run with::

    python examples/export_codegen.py
"""

from repro import (
    Browser,
    Synthesizer,
    check_program,
    export_program,
    format_program,
    lint_program,
)
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.dom import parse_selector
from repro.lang import EMPTY_DATA, scrape_text
from repro.semantics import DOMTrace
from repro.semantics.provenance import explain, render_summary


def main() -> None:
    site = StoreLocatorSite(pages_per_zip=1, stores_per_page=5, fixed_zip="48104")
    browser = Browser(site)

    # --- 1. Demonstrate: two cards' name + phone -----------------------
    for card in (1, 2):
        browser.perform(scrape_text(parse_selector(
            f"//div[@class='rightContainer'][{card}]//h3[1]")))
        browser.perform(scrape_text(parse_selector(
            f"//div[@class='rightContainer'][{card}]//div[@class='locatorPhone'][1]")))

    # --- 2. Synthesize and statically check ----------------------------
    actions, snapshots = browser.trace()
    result = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots)
    program = result.best_program
    print("Synthesized program:")
    print(format_program(program))
    diagnostics = check_program(program)
    print(f"\nStatic check: {'clean' if not diagnostics else diagnostics}")
    findings = lint_program(program)
    print(f"Lint: {'clean' if not findings else [str(f) for f in findings]}")

    # --- 3. Explain: which statement produced which recorded action ----
    provenance = explain(program, DOMTrace(snapshots), EMPTY_DATA)
    print("\nProvenance summary:")
    print(render_summary(program, provenance))

    # --- 4. Export as runnable automation scripts ----------------------
    for target in ("selenium", "playwright"):
        source = export_program(
            program, target=target, start_url="https://example.com/storelocator"
        )
        compile(source, f"<{target}>", "exec")  # generated code is valid Python
        print(f"\n=== {target} script ({len(source.splitlines())} lines) "
              f"— first 25 lines ===")
        print("\n".join(source.splitlines()[:25]))

    # iMacros (the tool the paper's benchmark corpus comes from) gets a
    # scripting-interface JavaScript file: the loops iMacros itself
    # lacks are compiled down to plain JS around one-line macros.
    imacros = export_program(program, target="imacros")
    print(f"\n=== imacros script ({len(imacros.splitlines())} lines) "
          f"— first 20 lines ===")
    print("\n".join(imacros.splitlines()[:20]))


if __name__ == "__main__":
    main()
