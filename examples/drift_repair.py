"""Replay a synthesized robot on a redesigned site via selector repair.

Scenario: you demonstrated a scrape in March; by June the site shipped a
redesign — a sale banner above the results and a sponsored card ahead of
the first store.  The synthesized program still refers to the March
layout.  A plain replay fails (or worse, silently scrapes the sponsored
card); a :class:`repro.RepairingReplayer` shadow-replays the program on
the remembered layout, fingerprints each intended node, and re-anchors
the actions on the redesigned page — logging every substitution.

Run with::

    python examples/drift_repair.py
"""

from repro import Browser, RepairingReplayer, Replayer, Synthesizer, format_program
from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.lang import EMPTY_DATA, scrape_text
from repro.dom import parse_selector
from repro.util import ReplayError

STORES = [("Ann Arbor", "555-0100"), ("Detroit", "555-0200"), ("Lansing", "555-0300")]


class StoreSite(VirtualWebsite):
    """One results page; ``redesigned=True`` applies the June layout."""

    def __init__(self, redesigned: bool = False) -> None:
        super().__init__()
        self.redesigned = redesigned

    def initial_state(self) -> State:
        return "results"

    def render(self, state: State) -> "DOMNode":
        cards = [
            E("div", {"class": "card"},
              E("h3", text=name),
              E("div", {"class": "phone"}, text=phone))
            for name, phone in STORES
        ]
        if not self.redesigned:
            return page(E("div", {"class": "results"}, *cards))
        sponsored = E("div", {"class": "card", "data-sponsored": "1"},
                      E("h3", text="Sponsored: MegaStore"),
                      E("div", {"class": "phone"}, text="555-9999"))
        return page(
            E("div", {"class": "banner"}, text="SUMMER SALE"),
            E("div", {"class": "results"}, sponsored, *cards),
        )


def main() -> None:
    # --- 1. March: demonstrate on the original site, synthesize --------
    march = Browser(StoreSite())
    for card in (1, 2):
        march.perform(scrape_text(parse_selector(f"//div[@class='card'][{card}]/h3[1]")))
        march.perform(scrape_text(parse_selector(
            f"//div[@class='card'][{card}]/div[@class='phone'][1]")))
    actions, snapshots = march.trace()
    program = Synthesizer(EMPTY_DATA).synthesize(actions, snapshots).best_program
    print("Synthesized in March:")
    print(format_program(program))

    expected = [value for store in STORES for value in store]
    print(f"\nMarch replay scrapes: {Replayer(Browser(StoreSite())).run(program).outputs}")
    assert Replayer(Browser(StoreSite())).run(program).outputs == expected

    # --- 2. June: the redesign breaks / corrupts plain replay ----------
    # The synthesized loop anchors on div[@class='card'], and the June
    # page's first card is the *sponsored* one — plain replay happily
    # scrapes the ad first.  (Programs with raw-path selectors fail
    # outright instead; both hazards are drift.)
    june_plain = Replayer(Browser(StoreSite(redesigned=True)), raise_errors=False)
    outputs = june_plain.run(program).outputs
    print(f"\nJune plain replay scrapes: {outputs[:4]} ...")
    assert outputs[:2] == ["Sponsored: MegaStore", "555-9999"]

    # --- 3. June, repaired: shadow replay against the March layout -----
    live = Browser(StoreSite(redesigned=True))
    reference = Browser(StoreSite())  # the site as demonstrated
    repairer = RepairingReplayer(live, reference, verify=True)
    result = repairer.run(program)
    print(f"\nJune repaired replay scrapes: {result.outputs}")
    print(f"Repairs made ({len(repairer.events)}):")
    for event in repairer.events:
        print(f"  [{event.reason}] {event.kind}: {event.original}")
        print(f"      -> {event.replacement}  (similarity {event.score:.2f})")
    assert result.outputs[: len(expected)] == expected

    # --- 4. Unrepairable drift raises instead of guessing --------------
    class EmptySite(StoreSite):
        def render(self, state: State) -> "DOMNode":
            return page(E("p", text="we moved!"))

    from repro.lang import parse_program

    brittle = parse_program("ScrapeText(/html[1]/body[1]/div[1]/div[1]/h3[1])")
    try:
        RepairingReplayer(Browser(EmptySite()), Browser(StoreSite())).run(brittle)
        raise AssertionError("expected the unrepairable replay to fail")
    except ReplayError as error:
        print(f"\nUnrepairable page correctly refused: {error}")


if __name__ == "__main__":
    main()
