"""Speculative rewriting vs correct-by-construction rewriting (Q4 teaser).

Synthesizes the same nested-list scraping task with both engines and
prints their costs: the egg-style baseline must verify every iteration
syntactically and pays a combinatorial price as nesting grows, while
WebRobot speculates from two iterations and validates semantically.

Run with::

    python examples/baseline_comparison.py
"""

import time

from repro import Synthesizer, format_program, parse_program, record_ground_truth
from repro.baseline import synthesize_baseline
from repro.benchmarks.sites.plain_lists import NestedListSite, PlainListSite
from repro.lang import EMPTY_DATA

FLAT_GT = parse_program("""
foreach i in Children(/html[1]/body[1]/ul[1], li) do
  ScrapeText(i/span[1])
  ScrapeText(i/b[1])
""")

NESTED_GT = parse_program("""
foreach g in Children(/html[1]/body[1], div) do
  foreach i in Children(g/ul[1], li) do
    ScrapeText(i)
""")


def compare(name, site, ground_truth):
    recording = record_ground_truth(site, ground_truth)
    print(f"--- {name}: {recording.length} recorded actions ---")

    started = time.perf_counter()
    baseline = synthesize_baseline(recording.actions, recording.snapshots, timeout=60)
    baseline_time = time.perf_counter() - started

    synthesizer = Synthesizer(EMPTY_DATA)
    started = time.perf_counter()
    result = synthesizer.synthesize(recording.actions[:-1], recording.snapshots[:-1])
    webrobot_time = time.perf_counter() - started

    print(f"baseline (Split/Reroll/Unsplit): {baseline_time * 1000:8.1f} ms "
          f"({baseline.item_lists} item lists explored)")
    print(f"WebRobot (speculate & validate): {webrobot_time * 1000:8.1f} ms")
    if result.best_program is not None:
        print("WebRobot's program:")
        print(format_program(result.best_program))
    print()


def main() -> None:
    compare("flat list (single loop)", PlainListSite(8, fields=2), FLAT_GT)
    compare("nested lists (double loop)", NestedListSite(4, 6), NESTED_GT)


if __name__ == "__main__":
    main()
