"""The paper's b9 failure case, solved by the pagination extension.

§7.1: "b9 involves a job search site which performs pagination using
page numbers and a 'next 10 pages' button.  We do not support such
pagination mechanisms yet."  This example reproduces that published
failure with the default configuration, then enables this repo's
opt-in ``use_numbered_pagination`` extension and synthesizes the
intended ``paginate`` loop, verifying it on a *larger* instance of the
site than was demonstrated.

Run with::

    python examples/numbered_pagination.py
"""

from repro import Browser, Replayer, Synthesizer, format_program
from repro.benchmarks.sites.job_board import JobBoardSite
from repro.lang import EMPTY_DATA, parse_program
from repro.synth.config import DEFAULT_CONFIG, numbered_pagination_config

DEMONSTRATION = parse_program("""
paginate k from 2 do
  foreach r in Dscts(/, li[@class='job-bx']) do
    ScrapeText(r/h2[1])
    ScrapeText(r//h3[1])
  Click(//button[@data-page='{k}'][1])
  Advance(//button[@class='nextBlock'][1])
""")


def record_demonstration():
    """A user scraping 5 pages, clicking page numbers and '»' by hand."""
    site = JobBoardSite(pages=5, jobs_per_page=2, mode="numbered", seed="demo")
    browser = Browser(site, EMPTY_DATA)
    Replayer(browser).run(DEMONSTRATION)
    return site, browser


def synthesize_final(actions, snapshots, config):
    """Feed growing prefixes, as the interactive front end does."""
    synthesizer = Synthesizer(EMPTY_DATA, config)
    final = None
    for cut in range(1, len(actions)):
        result = synthesizer.synthesize(actions[:cut], snapshots[: cut + 1])
        if result.best_program is not None:
            final = result.best_program
    return final


def replay_on(program, site) -> bool:
    """Does the program scrape the full dataset of ``site``?"""
    browser = Browser(site, EMPTY_DATA)
    outcome = Replayer(browser, raise_errors=False).run(program)
    expected = site.expected_fields(("title", "company"))
    return outcome.error is None and browser.outputs == expected


def main() -> None:
    site, browser = record_demonstration()
    actions, snapshots = browser.trace()
    print(f"Recorded {len(actions)} actions across {site.pages} pages "
          f"(page-number clicks + one 'next block' click).\n")

    # --- published behaviour: the default engine fails ------------------
    default_final = synthesize_final(actions, snapshots, DEFAULT_CONFIG)
    scaled = JobBoardSite(pages=8, jobs_per_page=2, mode="numbered", seed="demo")
    if default_final is None:
        print("Default config: no generalizing program (as published).")
    else:
        survives = replay_on(default_final, scaled)
        print("Default config synthesized:")
        print(format_program(default_final))
        print(f"... which {'SURVIVES' if survives else 'FAILS on'} a larger "
              f"instance — the paper's 'solved the tests but is not intended'.\n")

    # --- the extension: an intended paginate loop -----------------------
    extended_final = synthesize_final(
        actions, snapshots, numbered_pagination_config()
    )
    print("With use_numbered_pagination:")
    print(format_program(extended_final))
    demonstrated_ok = replay_on(extended_final, JobBoardSite(
        pages=5, jobs_per_page=2, mode="numbered", seed="demo"))
    scaled_ok = replay_on(extended_final, scaled)
    print(f"\nReplays full dataset on the demonstrated site: {demonstrated_ok}")
    print(f"Replays full dataset on a larger site (8 pages): {scaled_ok}")


if __name__ == "__main__":
    main()
