"""Quickstart: synthesize a scraping loop from four demonstrated actions.

Scenario: a page lists result cards; you scrape the name and phone of
the first two cards by hand.  WebRobot generalizes the four actions into
a loop and predicts what you would do next.

Run with::

    python examples/quickstart.py
"""

from repro import Browser, Synthesizer, format_program
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.dom import parse_selector
from repro.lang import EMPTY_DATA, scrape_text


def main() -> None:
    # A virtual website standing in for a real browser session: results
    # for one zip code, one page of four stores.
    site = StoreLocatorSite(pages_per_zip=1, stores_per_page=4, fixed_zip="48104")
    browser = Browser(site)

    # --- 1. Demonstrate: scrape name + phone of the first two cards ----
    for card in (1, 2):
        browser.perform(scrape_text(parse_selector(
            f"//div[@class='rightContainer'][{card}]//h3[1]")))
        browser.perform(scrape_text(parse_selector(
            f"//div[@class='rightContainer'][{card}]//div[@class='locatorPhone'][1]")))
    print("Demonstrated actions (as recorded, raw XPaths):")
    for action in browser.recorded_actions:
        print(f"  {action}")

    # --- 2. Synthesize: find programs that generalize the trace --------
    synthesizer = Synthesizer(EMPTY_DATA)
    actions, snapshots = browser.trace()
    result = synthesizer.synthesize(actions, snapshots)

    print(f"\nGeneralizing programs found: {len(result.programs)}")
    print("Best program:")
    print(format_program(result.best_program))

    # --- 3. Predict: the action the user would perform next ------------
    print(f"\nPredicted next action: {result.best_prediction}")

    # --- 4. Automate: execute the prediction loop to finish the task ---
    while True:
        actions, snapshots = browser.trace()
        result = synthesizer.synthesize(actions, snapshots)
        if result.best_prediction is None:
            break
        browser.perform(result.best_prediction)
    print(f"\nScraped dataset ({len(browser.outputs)} values):")
    for value in browser.outputs:
        print(f"  {value}")


if __name__ == "__main__":
    main()
