"""Concurrent demonstration sessions over one synthesizer process.

A *session* is one user's interactive PBD loop — the per-action round
trip of the paper's interactive model (§5).  The session state itself
lives in the protocol layer (:class:`repro.protocol.session.Session`,
shared with the paper-loop simulator); :class:`SessionManager` owns the
sessions of one worker process and speaks typed protocol messages over
them:

* each session wraps an incremental
  :class:`~repro.synth.synthesizer.Synthesizer` (store carried across
  calls, one engine per session) behind a per-session lock, so requests
  for *different* sessions synthesize concurrently;
* all sessions share the process-level execution cache by default
  (``shared_cache=True``), and — with a persistent backend — the cache
  of every *other* worker process over the same store;
* sessions idle longer than ``max_idle_s`` (env ``REPRO_SESSION_TTL``)
  are evicted, their stats folded into the manager totals, so a
  long-lived server never leaks abandoned demonstrations;
* :meth:`export_snapshot` / :meth:`import_snapshot` serialize a live
  session into a :class:`~repro.protocol.messages.SessionSnapshot` and
  resume it under another manager — another worker, another process —
  with byte-identical subsequent candidates (worker migration).

The manager is transport-agnostic: :mod:`repro.service.server` exposes
it over HTTP, tests and benchmarks drive it directly.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.lang.data import DataSource, EMPTY_DATA
from repro.obs import metrics as obs_metrics
from repro.protocol.messages import (
    Accepted,
    CandidateList,
    Migrated,  # noqa: F401  (re-exported for server/client convenience)
    ProgramProposed,
    Rejected,
    SessionClosed,
    SessionCreated,
    SessionSnapshot,
)
from repro.protocol.session import (
    Session,
    SessionClosedError,
    SessionError,
    SessionStats,
    UnknownSessionError,
)
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig

#: Deprecated alias — the session core now lives in the protocol layer.
DemoSession = Session

#: How many departed (closed/evicted/migrated) session ids the manager
#: remembers so a late request gets a 409-shaped "closed", not a 404.
_DEPARTED_LIMIT = 4096


def _live_gauge():
    """The ``repro_sessions_live`` gauge (the rebalancer's load signal)."""
    return obs_metrics.registry().gauge(
        "repro_sessions_live", "Sessions currently live on this worker."
    )


def resolved_session_ttl(max_idle_s: Optional[float]) -> Optional[float]:
    """The effective idle TTL: the argument, else ``REPRO_SESSION_TTL``."""
    if max_idle_s is not None:
        return max_idle_s if max_idle_s > 0 else None
    raw = os.environ.get("REPRO_SESSION_TTL", "").strip()
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


class SessionManager:
    """All live sessions of one service worker process.

    ``config`` seeds every session's synthesizer; by default sessions
    join the process-level shared execution cache (and through its
    backend, other worker processes).  ``timeout`` is the per-call
    synthesis budget (the paper's interactive 1s default unless the
    creator overrides per session).  ``max_idle_s`` evicts sessions
    idle longer than that many seconds (default: ``REPRO_SESSION_TTL``,
    unset = never).
    """

    def __init__(
        self,
        config: SynthesisConfig = DEFAULT_CONFIG,
        timeout: Optional[float] = None,
        share_cache: bool = True,
        max_idle_s: Optional[float] = None,
    ) -> None:
        if share_cache and config.shared_cache is None:
            config = replace(config, shared_cache=True)
        self.config = config
        self.timeout = timeout
        self.max_idle_s = resolved_session_ttl(max_idle_s)
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._ids = itertools.count(1)
        self._closed_stats = SessionStats()
        self._closed_count = 0
        self._evicted_count = 0
        self._imported_count = 0
        # sid -> why it departed ("closed" | "evicted" | "migrated")
        self._departed: OrderedDict[str, str] = OrderedDict()

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------
    def create(
        self,
        snapshot: DOMNode,
        data: Optional[DataSource] = None,
        timeout: Optional[float] = None,
    ) -> str:
        """Open a session on an initial page snapshot; returns its id."""
        self.evict_idle()
        session_timeout = timeout if timeout is not None else self.timeout
        # build outside the manager lock: synthesizer construction may
        # resolve a backend (SQLite connect) and must not stall every
        # concurrent request on another session
        sid = self._mint_sid()
        session = Session(
            sid, data if data is not None else EMPTY_DATA,
            self.config, session_timeout,
        )
        session.start(snapshot)
        with self._lock:
            self._sessions[sid] = session
        self._publish_live()
        return sid

    def create_session(self, message) -> SessionCreated:
        """Typed creation: a :class:`CreateSession` in, the id out."""
        data = DataSource(message.data) if message.data is not None else None
        return SessionCreated(
            session=self.create(message.snapshot, data=data, timeout=message.timeout)
        )

    def _mint_sid(self) -> str:
        with self._lock:
            return f"s{next(self._ids)}"

    def _session(self, sid: str) -> Session:
        with self._lock:
            session = self._sessions.get(sid)
            departed = self._departed.get(sid)
        if session is None:
            if departed is not None:
                raise SessionClosedError(f"session {sid} was {departed}")
            raise UnknownSessionError(f"unknown session {sid!r}")
        return session

    def _depart(self, session: Session, reason: str) -> None:
        """Fold a departed session's stats in and remember why it left."""
        with self._lock:
            if reason != "migrated":
                self._closed_stats.merge(session.stats)
            self._closed_count += reason == "closed"
            self._evicted_count += reason == "evicted"
            self._departed[session.sid] = reason
            while len(self._departed) > _DEPARTED_LIMIT:
                self._departed.popitem(last=False)

    # ------------------------------------------------------------------
    # The per-action round trip
    # ------------------------------------------------------------------
    def record_action(
        self, sid: str, action: Action, snapshot: DOMNode
    ) -> ProgramProposed:
        """One per-action round trip; returns the typed summary."""
        self.evict_idle()
        session = self._session(sid)
        with session.lock:
            session.record(action, snapshot)
            return session.proposal()

    def candidates(self, sid: str) -> CandidateList:
        """The ranked candidate programs of a session."""
        session = self._session(sid)
        with session.lock:
            return session.candidate_list()

    def accept(self, sid: str, index: int = 0) -> Accepted:
        """Mark one candidate accepted; returns its rendered program."""
        session = self._session(sid)
        with session.lock:
            return session.accept(index)

    def reject(self, sid: str) -> Rejected:
        """Record that the user rejected every current proposal."""
        session = self._session(sid)
        with session.lock:
            return session.reject()

    def close(self, sid: str) -> SessionClosed:
        """Close a session and fold its stats into the manager totals."""
        with self._lock:
            session = self._sessions.pop(sid, None)
            if session is not None:
                # register the departure at pop time: a concurrent
                # request must see 409 "closed", never a 404 window
                # while the synthesizer tears down below
                self._departed[sid] = "closed"
        if session is None:
            raise self._departed_error(sid)
        with session.lock:
            closed = session.close()
        self._depart(session, "closed")
        self._publish_live()
        # ship the session's buffered cache writes now: with a remote
        # backend this is what makes the finished demonstration's
        # executions visible to every other worker in the fleet
        from repro.service.backends import flush_backends

        flush_backends()
        return closed

    def _departed_error(self, sid: str) -> SessionError:
        with self._lock:
            departed = self._departed.get(sid)
        if departed is not None:
            return SessionClosedError(f"session {sid} was {departed}")
        return UnknownSessionError(f"unknown session {sid!r}")

    def close_all(self) -> None:
        """Close every live session (server shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            with session.lock:
                session.close()
            self._depart(session, "closed")
        self._publish_live()
        from repro.service.backends import flush_backends

        flush_backends()

    # ------------------------------------------------------------------
    # Idle eviction
    # ------------------------------------------------------------------
    def evict_idle(self, now: Optional[float] = None) -> int:
        """Evict sessions idle beyond the TTL; returns how many left.

        A session whose lock is held is mid-request — by definition not
        idle — and is skipped rather than waited for.
        """
        if self.max_idle_s is None:
            return 0
        moment = time.monotonic() if now is None else now
        with self._lock:
            stale = [
                session
                for session in self._sessions.values()
                if moment - session.last_used > self.max_idle_s
            ]
        evicted = 0
        for session in stale:
            if not session.lock.acquire(blocking=False):
                continue  # mid-request: not idle after all
            try:
                # re-check under the session lock: the request that held
                # the lock a moment ago refreshed the idle clock
                if moment - session.last_used <= self.max_idle_s:
                    continue
                with self._lock:
                    if self._sessions.get(session.sid) is not session:
                        continue  # closed/migrated concurrently
                    del self._sessions[session.sid]
                    self._departed[session.sid] = "evicted"
                session.close()
            finally:
                session.lock.release()
            self._depart(session, "evicted")
            evicted += 1
        if evicted:
            self._publish_live()
        return evicted

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def begin_migration(self, sid: str) -> tuple[Session, SessionSnapshot]:
        """Take a session out of service and snapshot it atomically.

        From the moment this returns, the session refuses new work
        (requests answer 409 "being migrated"), so nothing can land in
        the local copy after the snapshot was taken and silently vanish
        once the target takes over.  The caller must finish with
        :meth:`commit_migration` (the target accepted the session) or
        :meth:`abort_migration` (the push failed — the session resumes
        serving here, untouched).
        """
        with self._lock:
            session = self._sessions.pop(sid, None)
            if session is not None:
                self._departed[sid] = "being migrated"
        if session is None:
            raise self._departed_error(sid)
        with session.lock:
            # a request that fetched the session reference before the
            # pop either finished before this lock (it is in the
            # snapshot) or gates on `migrating` after it (it gets 409)
            session.migrating = True
            return session, session.export_snapshot()

    def commit_migration(self, session: Session) -> None:
        """The target acknowledged: tear the local copy down for good."""
        with session.lock:
            session.close()
        self._depart(session, "migrated")
        self._publish_live()

    def abort_migration(self, session: Session) -> None:
        """The push failed: put the session back into service."""
        with session.lock:
            session.migrating = False
        with self._lock:
            self._departed.pop(session.sid, None)
            self._sessions[session.sid] = session
        self._publish_live()

    def export_snapshot(self, sid: str, evict: bool = True) -> SessionSnapshot:
        """Serialize a session; by default it leaves this worker.

        With ``evict`` the session is removed and marked *migrated*
        (subsequent requests for it answer 409) — its stats travel with
        the snapshot instead of folding into this manager's totals.
        """
        if evict:
            session, snapshot = self.begin_migration(sid)
            self.commit_migration(session)
            return snapshot
        session = self._session(sid)
        with session.lock:
            return session.export_snapshot()

    def import_snapshot(self, snapshot: SessionSnapshot) -> SessionCreated:
        """Resume an exported session on this worker under a fresh id.

        The trace is replayed through a fresh synthesizer (see
        :meth:`repro.protocol.session.Session.from_snapshot`), so the
        resumed session's subsequent candidates are byte-identical to
        the exporting worker's.
        """
        self.evict_idle()
        sid = self._mint_sid()
        timeout = snapshot.timeout if snapshot.timeout is not None else self.timeout
        session = Session.from_snapshot(
            replace(snapshot, timeout=timeout), sid, self.config
        )
        with self._lock:
            self._sessions[sid] = session
            self._imported_count += 1
        self._publish_live()
        return SessionCreated(session=sid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _publish_live(self) -> None:
        with self._lock:
            live = len(self._sessions)
        _live_gauge().set(live)

    def session_ids(self) -> Sequence[str]:
        with self._lock:
            return tuple(self._sessions)

    def stats(self) -> dict:
        """Manager-wide stats: live + departed sessions, engine gauges."""
        self.evict_idle()
        totals = SessionStats()
        with self._lock:
            live = list(self._sessions.values())
            totals.merge(self._closed_stats)
            closed = self._closed_count
            evicted = self._evicted_count
            imported = self._imported_count
        for session in live:
            totals.merge(session.stats)
        # backend identity comes from the config resolution, not from
        # live sessions — an idle worker must still report its store
        from repro.service.backends import resolve_backend
        from repro.synth.config import resolved_cache_backend

        backend = resolve_backend(resolved_cache_backend(self.config))
        return {
            "sessions": len(live),
            "closed_sessions": closed,
            "sessions_evicted": evicted,
            "sessions_imported": imported,
            "backend": backend.name,
            "persisted_bytes": backend.persisted_bytes if backend.persistent else 0,
            "codec": getattr(getattr(backend, "codec", None), "name", None),
            "decode_hits": getattr(backend, "decode_hits", 0),
            "decode_bytes": getattr(backend, "decode_bytes", 0),
            "totals": totals.to_json(),
        }
