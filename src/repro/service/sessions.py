"""Concurrent demonstration sessions over one synthesizer process.

A *session* is one user's interactive PBD loop: the recorder streams an
action (plus the snapshot it produced) after every demonstrated step,
and the service answers with the candidate programs and next-action
predictions synthesized so far — the per-action round trip of the
paper's interactive model (§5).  :class:`SessionManager` owns the
sessions of one worker process:

* each session wraps an incremental
  :class:`~repro.synth.synthesizer.Synthesizer` (store carried across
  calls, one engine per session) behind a per-session lock, so requests
  for *different* sessions synthesize concurrently;
* all sessions share the process-level execution cache by default
  (``shared_cache=True``), and — with a persistent backend — the cache
  of every *other* worker process over the same store;
* per-session and manager-wide statistics aggregate the engine
  telemetry that ``repro synthesize --stats`` prints per call.

The manager is transport-agnostic: :mod:`repro.service.server` exposes
it over HTTP, tests and benchmarks drive it directly.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.lang.data import DataSource, EMPTY_DATA
from repro.lang.pretty import format_program
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig
from repro.synth.synthesizer import SynthesisResult, Synthesizer
from repro.util.errors import ReproError


class SessionError(ReproError):
    """Unknown session, bad trace shape, or a closed session."""


@dataclass
class SessionStats:
    """Aggregated telemetry of one session (or the whole manager)."""

    calls: int = 0
    actions: int = 0
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cross_session_hits: int = 0
    warm_start_hits: int = 0
    timed_out_calls: int = 0

    def absorb(self, result: SynthesisResult, elapsed: float) -> None:
        self.calls += 1
        self.elapsed += elapsed
        self.cache_hits += result.stats.cache_hits
        self.cache_misses += result.stats.cache_misses
        self.cross_session_hits += result.stats.cache_cross_session_hits
        self.warm_start_hits += result.stats.cache_warm_hits
        self.timed_out_calls += result.stats.timed_out

    def merge(self, other: "SessionStats") -> None:
        self.calls += other.calls
        self.actions += other.actions
        self.elapsed += other.elapsed
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cross_session_hits += other.cross_session_hits
        self.warm_start_hits += other.warm_start_hits
        self.timed_out_calls += other.timed_out_calls

    def to_json(self) -> dict:
        return {
            "calls": self.calls,
            "actions": self.actions,
            "elapsed": round(self.elapsed, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cross_session_hits": self.cross_session_hits,
            "warm_start_hits": self.warm_start_hits,
            "timed_out_calls": self.timed_out_calls,
        }


class DemoSession:
    """One live demonstration: trace so far + the synthesizer serving it."""

    def __init__(
        self,
        sid: str,
        data: DataSource,
        config: SynthesisConfig,
        timeout: Optional[float],
    ) -> None:
        self.sid = sid
        self.timeout = timeout
        self.lock = threading.Lock()
        self.synthesizer = Synthesizer(data, config)
        self.actions: list[Action] = []
        self.snapshots: list[DOMNode] = []
        self.last_result: Optional[SynthesisResult] = None
        self.accepted_index: Optional[int] = None
        self.stats = SessionStats()
        self.created = time.time()

    # ------------------------------------------------------------------
    def record_action(self, action: Action, snapshot: DOMNode) -> SynthesisResult:
        """Append one demonstrated step and re-synthesize incrementally.

        ``snapshot`` is the page *after* the action (the recorder ships
        ``π_{k+1}``); the session's first snapshot arrived at creation.
        """
        if not self.snapshots:
            raise SessionError(f"session {self.sid} has no initial snapshot")
        self.actions.append(action)
        self.snapshots.append(snapshot)
        started = time.perf_counter()
        try:
            result = self.synthesizer.synthesize(
                self.actions, self.snapshots, timeout=self.timeout
            )
        except Exception:
            # the step was not recorded: roll the trace back so a retry
            # (or the next action) does not synthesize over a
            # demonstration containing a step the caller saw rejected
            self.actions.pop()
            self.snapshots.pop()
            raise
        self.stats.absorb(result, time.perf_counter() - started)
        self.stats.actions = len(self.actions)
        self.last_result = result
        return result

    def candidates(self) -> list[dict]:
        """The current ranked candidates, JSON-ready."""
        if self.last_result is None:
            return []
        return [
            {
                "index": index,
                "program": format_program(program),
                "statements": len(program),
            }
            for index, program in enumerate(self.last_result.programs)
        ]

    def predictions(self) -> list[str]:
        """The distinct predicted next actions, in rank order."""
        if self.last_result is None:
            return []
        return [str(action) for action in self.last_result.predictions]

    def close(self) -> None:
        self.synthesizer.close()


class SessionManager:
    """All live sessions of one service worker process.

    ``config`` seeds every session's synthesizer; by default sessions
    join the process-level shared execution cache (and through its
    backend, other worker processes).  ``timeout`` is the per-call
    synthesis budget (the paper's interactive 1s default unless the
    creator overrides per session).
    """

    def __init__(
        self,
        config: SynthesisConfig = DEFAULT_CONFIG,
        timeout: Optional[float] = None,
        share_cache: bool = True,
    ) -> None:
        if share_cache and config.shared_cache is None:
            config = replace(config, shared_cache=True)
        self.config = config
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sessions: dict[str, DemoSession] = {}
        self._ids = itertools.count(1)
        self._closed_stats = SessionStats()
        self._closed_count = 0

    # ------------------------------------------------------------------
    def create(
        self,
        snapshot: DOMNode,
        data: Optional[DataSource] = None,
        timeout: Optional[float] = None,
    ) -> str:
        """Open a session on an initial page snapshot; returns its id."""
        session_timeout = timeout if timeout is not None else self.timeout
        # build outside the manager lock: synthesizer construction may
        # resolve a backend (SQLite connect) and must not stall every
        # concurrent request on another session
        sid = f"s{next(self._ids)}"
        session = DemoSession(
            sid, data if data is not None else EMPTY_DATA,
            self.config, session_timeout,
        )
        session.snapshots.append(snapshot)
        with self._lock:
            self._sessions[sid] = session
        return sid

    def _session(self, sid: str) -> DemoSession:
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise SessionError(f"unknown session {sid!r}")
        return session

    # ------------------------------------------------------------------
    def record_action(self, sid: str, action: Action, snapshot: DOMNode) -> dict:
        """One per-action round trip; returns the JSON-ready summary."""
        session = self._session(sid)
        with session.lock:
            result = session.record_action(action, snapshot)
            return {
                "session": sid,
                "actions": len(session.actions),
                "programs": len(result.programs),
                "predictions": session.predictions(),
                "stats": {
                    "elapsed": round(result.stats.elapsed, 6),
                    "timed_out": result.stats.timed_out,
                    "cache_hits": result.stats.cache_hits,
                    "cache_misses": result.stats.cache_misses,
                    "cross_session_hits": result.stats.cache_cross_session_hits,
                    "warm_start_hits": result.stats.cache_warm_hits,
                    "backend": result.stats.cache_backend,
                },
            }

    def candidates(self, sid: str) -> list[dict]:
        """The ranked candidate programs of a session, JSON-ready."""
        session = self._session(sid)
        with session.lock:
            return session.candidates()

    def accept(self, sid: str, index: int = 0) -> dict:
        """Mark one candidate accepted; returns its rendered program."""
        session = self._session(sid)
        with session.lock:
            if session.last_result is None or not session.last_result.programs:
                raise SessionError(f"session {sid} has no candidate programs")
            programs = session.last_result.programs
            if not 0 <= index < len(programs):
                raise SessionError(
                    f"candidate index {index} out of range (0..{len(programs) - 1})"
                )
            session.accepted_index = index
            return {
                "session": sid,
                "index": index,
                "program": format_program(programs[index]),
            }

    def close(self, sid: str) -> dict:
        """Close a session and fold its stats into the manager totals."""
        with self._lock:
            session = self._sessions.pop(sid, None)
        if session is None:
            raise SessionError(f"unknown session {sid!r}")
        with session.lock:
            session.close()
            payload = {"session": sid, "stats": session.stats.to_json()}
        # fold under the manager lock: concurrent closes would otherwise
        # interleave merge()'s read-modify-writes and lose counts
        with self._lock:
            self._closed_stats.merge(session.stats)
            self._closed_count += 1
        return payload

    def close_all(self) -> None:
        """Close every live session (server shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            with session.lock:
                session.close()
            with self._lock:
                self._closed_stats.merge(session.stats)
                self._closed_count += 1

    # ------------------------------------------------------------------
    def session_ids(self) -> Sequence[str]:
        with self._lock:
            return tuple(self._sessions)

    def stats(self) -> dict:
        """Manager-wide stats: live + closed sessions, engine gauges."""
        totals = SessionStats()
        with self._lock:
            live = list(self._sessions.values())
            totals.merge(self._closed_stats)
            closed = self._closed_count
        for session in live:
            totals.merge(session.stats)
        # backend identity comes from the config resolution, not from
        # live sessions — an idle worker must still report its store
        from repro.service.backends import resolve_backend
        from repro.synth.config import resolved_cache_backend

        backend = resolve_backend(resolved_cache_backend(self.config))
        return {
            "sessions": len(live),
            "closed_sessions": closed,
            "backend": backend.name,
            "persisted_bytes": backend.persisted_bytes if backend.persistent else 0,
            "totals": totals.to_json(),
        }
