"""The synthesis service: sessions, server, and cache backends.

This package turns the synthesizer into a servable, multi-process
system:

* :mod:`repro.service.backends` — the pluggable execution-cache
  backends (in-process, file-backed persistent, shared across worker
  processes) behind the value-addressed keys of
  :mod:`repro.engine.keys`.
* :mod:`repro.service.sessions` — the session manager driving one
  incremental :class:`~repro.synth.synthesizer.Synthesizer` per
  concurrent demonstration session.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-HTTP JSON API over the session manager (``repro serve``) and
  the thin client that speaks it.

Only the dependency-light backends module is imported here; the session
and server modules pull in the whole synthesizer stack and are imported
explicitly by their users.
"""

from repro.service.backends import (  # noqa: F401
    CacheBackend,
    FileBackend,
    InProcessBackend,
    default_store_path,
    resolve_backend,
)
