"""The synthesis service: sessions, server, and cache backends.

This package turns the synthesizer into a servable, multi-process
system:

* :mod:`repro.service.backends` — the pluggable execution-cache
  backends (in-process, file-backed persistent, shared across worker
  processes) behind the value-addressed keys of
  :mod:`repro.engine.keys`.
* :mod:`repro.service.sessions` — the session manager driving one
  incremental :class:`~repro.synth.synthesizer.Synthesizer` per
  concurrent demonstration session (the session state itself is the
  unified :class:`repro.protocol.session.Session` core), with idle
  eviction and snapshot export/import for worker migration.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  typed, versioned interaction protocol (:mod:`repro.protocol`) over
  stdlib HTTP (``repro serve``, ``/v1/...`` routes) and the typed
  client that speaks it.

Only the dependency-light backends module is imported here; the session
and server modules pull in the whole synthesizer stack and are imported
explicitly by their users.
"""

from repro.service.backends import (  # noqa: F401
    CacheBackend,
    FileBackend,
    InProcessBackend,
    default_store_path,
    resolve_backend,
)
