"""``repro serve``: the session manager over stdlib HTTP + the protocol.

One worker process = one :class:`~repro.service.sessions.SessionManager`
behind a :class:`ThreadingHTTPServer` (no dependencies beyond the
standard library).  Every body — request and response — is a typed
protocol message encoded by the protocol codec
(:mod:`repro.protocol.codec`); errors are
:class:`~repro.protocol.messages.ErrorEnvelope` objects, never bare
strings.  Sessions are sticky to the worker that created them *until
migrated*: ``POST /v1/sessions/<sid>/migrate`` serializes a session
(:class:`~repro.protocol.messages.SessionSnapshot`) and either returns
it to the caller or pushes it straight to another worker's import
endpoint — de-stickying multi-worker deployments.

Versioned routes (all bodies protocol JSON):

==========================================  ===================================
``POST /v1/sessions``                       ``CreateSession`` → ``SessionCreated``
``GET  /v1/sessions``                       → ``{"sessions": [sid, ...]}``
``POST /v1/sessions/<sid>/actions``         ``ActionRecorded`` → ``ProgramProposed``
``GET  /v1/sessions/<sid>/candidates``      → ``CandidateList``
``POST /v1/sessions/<sid>/accept``          ``Accept`` → ``Accepted``
``POST /v1/sessions/<sid>/reject``          ``Reject`` → ``Rejected``
``POST /v1/sessions/<sid>/close``           → ``SessionClosed``
``POST /v1/sessions/<sid>/migrate``         ``MigrateSession`` →
                                            ``SessionSnapshot`` | ``Migrated``
``POST /v1/sessions/import``                ``SessionSnapshot`` → ``SessionCreated``
``GET  /v1/stats``                          → manager-wide stats (JSON gauges)
``GET  /v1/metrics``                        → Prometheus text exposition
``GET  /healthz``                           → ``{ok, protocol, codec}``
==========================================  ===================================

Every request runs under a trace context: the ``X-Repro-Trace`` header
(``<trace_id>-<span_id>``) is adopted when present — so spans recorded
here stitch under the caller's trace, including migration pushes to a
peer worker — and a fresh root is minted otherwise; the active context
is echoed back on the response.  Per-route latency histograms and
status counters publish to the process metrics registry, with session
ids collapsed to ``:sid`` to keep label cardinality bounded.

``--workers N`` forks N workers on consecutive ports over one store —
the multi-process deployment shape; a load balancer (or the client)
picks a port and may rebalance via migration.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import io as repro_io
from repro.lang.data import DataSource
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.protocol.codec import (
    CODECS,
    DEFAULT_CODEC,
    codec_for_content_type,
    sniff_codec,
)
from repro.protocol.messages import (
    PROTOCOL_VERSION,
    Accept,
    ActionRecorded,
    CloseSession,
    CreateSession,
    ErrorEnvelope,
    Migrated,
    MigrateSession,
    ProtocolError,
    Reject,
    SessionSnapshot,
    from_wire,
)
from repro.protocol.session import SessionClosedError, UnknownSessionError
from repro.service.backends import flush_backends
from repro.service.sessions import SessionError, SessionManager
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig
from repro.util.errors import ParseError, ReproError

#: Default service port (consecutive ports for extra workers).
DEFAULT_PORT = 8738

#: Fixed-path routes allowed verbatim as metric labels.
_KNOWN_ROUTES = {
    "/healthz",
    "/v1/stats",
    "/v1/metrics",
    "/v1/sessions",
    "/v1/sessions/import",
}

_SESSION_VERBS = {"actions", "candidates", "accept", "reject", "close", "migrate"}


def _metric_route(path: str) -> str:
    """Low-cardinality route label: session ids collapse to ``:sid``,
    anything unrecognized to ``other`` (404 probes must not mint one
    label per probed path)."""
    path = path.split("?", 1)[0]
    parts = path.split("/")
    if (
        len(parts) == 5
        and parts[1] == "v1"
        and parts[2] == "sessions"
        and parts[4] in _SESSION_VERBS
    ):
        return "/v1/sessions/:sid/" + parts[4]
    if path in _KNOWN_ROUTES:
        return path
    return "other"


class _HttpMetrics:
    """Per-route request counters and latency histograms.

    Caches *family* handles only (children are re-resolved per publish)
    so :func:`repro.obs.metrics.reset_registry` keeps working.
    """

    _instance: Optional["_HttpMetrics"] = None

    def __init__(self) -> None:
        reg = obs_metrics.registry()
        self.requests = reg.counter(
            "repro_http_requests_total",
            "HTTP requests served, by normalized route and status code.",
            ("route", "code"),
        )
        self.latency = reg.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency by normalized route.",
            ("route",),
        )

    @classmethod
    def get(cls) -> "_HttpMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the session manager."""

    daemon_threads = True

    def __init__(self, address, manager: SessionManager, quiet: bool = True):
        self.manager = manager
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/2"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def _response_codec(self):
        """Content negotiation: ``Accept`` wins, else reply in the
        request body's codec, else the wire default (JSON)."""
        return (
            codec_for_content_type(self.headers.get("Accept"))
            or getattr(self, "_request_codec", None)
            or DEFAULT_CODEC
        )

    def _reply_bytes(self, body: bytes, status: int, content_type: str) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        ctx = obs_context.current()
        if ctx is not None:
            self.send_header(obs_context.HEADER, ctx.wire_value())
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, message, status: int = 200) -> None:
        """Encode one protocol message (or a plain gauge dict) and send."""
        codec = self._response_codec()
        if isinstance(message, dict):
            body = codec.encode_payload(message)
        else:
            body = codec.encode(message)
        self._reply_bytes(body, status, codec.content_type)

    def _error(
        self,
        code: str,
        message: str,
        status: int,
        session: Optional[str] = None,
    ) -> None:
        self._reply(ErrorEnvelope(code=code, message=message, session=session), status)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        # negotiate by Content-Type; sniff when absent or unknown, so
        # bare pre-protocol JSON posts keep working unchanged
        codec = codec_for_content_type(self.headers.get("Content-Type"))
        if codec is None:
            codec = sniff_codec(raw)
        self._request_codec = codec
        payload = codec.decode_payload(raw)
        if not isinstance(payload, dict):
            raise ParseError("expected an object body")
        return payload

    # ------------------------------------------------------------------
    # Body adapters (bare pre-protocol dicts are still tolerated on /v1)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_create(payload: dict) -> CreateSession:
        if payload.get("type") is not None:
            message = from_wire(payload)
            if not isinstance(message, CreateSession):
                raise ProtocolError("expected a create_session message")
            return message
        if "snapshot" not in payload:
            raise ParseError("session creation requires 'snapshot'")
        return CreateSession(
            snapshot=repro_io.dom_from_json(payload["snapshot"]),
            data=payload.get("data"),
            timeout=payload.get("timeout"),
        )

    @staticmethod
    def _as_action(sid: str, payload: dict) -> ActionRecorded:
        if payload.get("type") is not None:
            message = from_wire(payload)
            if not isinstance(message, ActionRecorded):
                raise ProtocolError("expected an action_recorded message")
            return ActionRecorded(sid, message.action, message.snapshot)
        if "action" not in payload or "snapshot" not in payload:
            raise ParseError("recording requires 'action' and 'snapshot'")
        return ActionRecorded(
            sid,
            repro_io.action_from_json(payload["action"]),
            repro_io.dom_from_json(payload["snapshot"]),
        )

    @staticmethod
    def _as_accept(sid: str, payload: dict) -> Accept:
        if payload.get("type") is not None:
            message = from_wire(payload)
            if not isinstance(message, Accept):
                raise ProtocolError("expected an accept message")
            return Accept(sid, message.index)
        return Accept(sid, int(payload.get("index", 0)))

    @staticmethod
    def _as_migrate(sid: str, payload: dict) -> MigrateSession:
        if payload.get("type") is not None:
            message = from_wire(payload)
            if not isinstance(message, MigrateSession):
                raise ProtocolError("expected a migrate_session message")
            return MigrateSession(sid, message.target)
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            raise ParseError("'target' must be a worker URL string")
        return MigrateSession(sid, target)

    # ------------------------------------------------------------------
    def _route(self, path: str) -> str:
        """Strip the version prefix."""
        if path.startswith("/v1/"):
            return path[len("/v1") :]
        return path

    def _observe(self, handler) -> None:
        """Run one request under a trace context and publish route metrics.

        The ``X-Repro-Trace`` header is adopted when present (spans
        recorded while serving stitch under the caller's trace); a root
        context is minted otherwise.  Any trace noted by an envelope
        decode is cleared afterwards so it cannot leak into the next
        keep-alive request on this thread.
        """
        started = time.perf_counter()
        route = _metric_route(self.path)
        ctx = obs_context.parse(self.headers.get(obs_context.HEADER))
        if ctx is None:
            ctx = obs_context.new_root()
        self._status = 0
        try:
            with obs_context.use(ctx):
                with obs_tracing.span(
                    "http_request", route=route, method=self.command
                ):
                    handler()
        finally:
            obs_context.take_received()
            metrics = _HttpMetrics.get()
            metrics.latency.labels(route=route).observe(
                time.perf_counter() - started
            )
            metrics.requests.labels(route=route, code=str(self._status)).inc()

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._observe(self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._observe(self._do_post)

    def _do_get(self) -> None:
        path = self._route(self.path)
        sid: Optional[str] = None
        self._request_codec = None  # keep-alive: no carry-over negotiation
        try:
            if self.path == "/healthz":
                self._reply(
                    {
                        "ok": True,
                        "protocol": PROTOCOL_VERSION,
                        "codec": DEFAULT_CODEC.name,
                        "codecs": sorted(CODECS),
                    }
                )
            elif path == "/stats":
                stats = self.server.manager.stats()
                stats["protocol"] = PROTOCOL_VERSION
                self._reply(stats)
            elif path == "/metrics":
                self._reply_bytes(
                    obs_metrics.registry().render().encode("utf-8"),
                    200,
                    obs_metrics.CONTENT_TYPE,
                )
            elif path == "/sessions":
                self._reply(
                    {"sessions": list(self.server.manager.session_ids())}
                )
            elif path.startswith("/sessions/") and path.endswith("/candidates"):
                sid = path[len("/sessions/") : -len("/candidates")]
                self._reply(self.server.manager.candidates(sid))
            else:
                self._error("no_route", f"no route {self.path}", 404)
        except Exception as exc:
            self._handle_error(exc, sid)

    def _do_post(self) -> None:
        path = self._route(self.path)
        manager = self.server.manager
        sid: Optional[str] = None
        self._request_codec = None  # keep-alive: no carry-over negotiation
        try:
            payload = self._body()
            if path == "/sessions":
                self._reply(manager.create_session(self._as_create(payload)))
                return
            if path == "/sessions/import":
                message = from_wire(payload)
                if not isinstance(message, SessionSnapshot):
                    raise ProtocolError("expected a session_snapshot message")
                self._reply(manager.import_snapshot(message))
                return
            if path.startswith("/sessions/"):
                rest = path[len("/sessions/") :]
                if rest.endswith("/actions"):
                    sid = rest[: -len("/actions")]
                    message = self._as_action(sid, payload)
                    self._reply(
                        manager.record_action(sid, message.action, message.snapshot)
                    )
                    return
                if rest.endswith("/accept"):
                    sid = rest[: -len("/accept")]
                    self._reply(
                        manager.accept(sid, self._as_accept(sid, payload).index)
                    )
                    return
                if rest.endswith("/reject"):
                    sid = rest[: -len("/reject")]
                    if payload.get("type") is not None and not isinstance(
                        from_wire(payload), Reject
                    ):
                        raise ProtocolError("expected a reject message")
                    self._reply(manager.reject(sid))
                    return
                if rest.endswith("/close"):
                    sid = rest[: -len("/close")]
                    if payload.get("type") is not None and not isinstance(
                        from_wire(payload), CloseSession
                    ):
                        raise ProtocolError("expected a close_session message")
                    self._reply(manager.close(sid))
                    return
                if rest.endswith("/migrate"):
                    sid = rest[: -len("/migrate")]
                    self._migrate(self._as_migrate(sid, payload))
                    return
            self._error("no_route", f"no route {self.path}", 404)
        except Exception as exc:
            self._handle_error(exc, sid)

    # ------------------------------------------------------------------
    def _migrate(self, message: MigrateSession) -> None:
        """Export a session; hand it to the caller or push it to a peer.

        Begin/commit/abort discipline: from ``begin_migration`` on, the
        session refuses new work (a racing ``record_action`` gets 409
        and retries against the new home — it can never land in the
        local copy after the snapshot and silently vanish), and the
        local copy is torn down only after the target acknowledged; a
        failed push aborts and the session resumes serving here.
        """
        manager = self.server.manager
        if message.target is None:
            self._reply(manager.export_snapshot(message.session))
            return
        from repro.service.client import ServiceClient, ServiceClientError

        session, snapshot = manager.begin_migration(message.session)
        try:
            with ServiceClient(message.target) as peer:
                target_sid = peer.import_session(snapshot)
        except (ServiceClientError, OSError, ValueError) as exc:
            manager.abort_migration(session)
            self._error(
                "migration_failed",
                f"target {message.target} refused the session: {exc}",
                502,
                session=message.session,
            )
            return
        manager.commit_migration(session)
        self._reply(
            Migrated(
                session=message.session,
                target=message.target,
                target_session=target_sid,
            )
        )

    def _handle_error(self, exc: Exception, sid: Optional[str]) -> None:
        if isinstance(exc, UnknownSessionError):
            self._error("unknown_session", str(exc), 404, sid)
        elif isinstance(exc, SessionClosedError):
            self._error("session_closed", str(exc), 409, sid)
        elif isinstance(exc, SessionError):
            self._error("session_state", str(exc), 409, sid)
        elif isinstance(
            exc, (ProtocolError, ParseError, ReproError, ValueError, KeyError)
        ):
            self._error("bad_request", str(exc), 400, sid)
        else:  # pragma: no cover - defensive
            self._error("internal", f"{type(exc).__name__}: {exc}", 500, sid)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: SynthesisConfig = DEFAULT_CONFIG,
    timeout: Optional[float] = None,
    quiet: bool = True,
    max_idle_s: Optional[float] = None,
) -> ServiceServer:
    """Bind one worker's server (tests drive this in a thread)."""
    manager = SessionManager(config, timeout=timeout, max_idle_s=max_idle_s)
    return ServiceServer((host, port), manager, quiet=quiet)


def _announce(server: ServiceServer) -> None:
    host, port = server.server_address[:2]
    # one write syscall: forked workers share this stdout pipe, and a
    # banner split across writes could interleave with a sibling's
    sys.stdout.write(f"repro-service listening on http://{host}:{port}\n")
    sys.stdout.flush()


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 1,
    config: SynthesisConfig = DEFAULT_CONFIG,
    timeout: Optional[float] = None,
    quiet: bool = True,
    max_idle_s: Optional[float] = None,
) -> int:
    """Run the service until interrupted; returns the exit code.

    ``workers > 1`` forks ``workers - 1`` children on consecutive ports
    (``port+1``, ``port+2``, ...), each with its own session manager —
    all resolving the same cache store, so they share executions through
    the persistent backend (and can trade sessions via the migrate
    endpoint).  With ``port=0`` the OS picks each worker's port; every
    worker announces its own URL on stdout.
    """
    # bind the parent first: a bad host/port fails fast, before any
    # worker is forked (a bind failure after forking would orphan them)
    server = make_server(host, port, config, timeout, quiet, max_idle_s)
    child_pids: list[int] = []
    worker_port = port
    try:
        for _ in range(max(0, workers - 1)):
            if port != 0:
                worker_port += 1
            pid = os.fork()
            if pid == 0:
                server.server_close()  # the parent's socket is not ours
                child = make_server(host, worker_port, config, timeout, quiet, max_idle_s)
                _announce(child)
                try:
                    child.serve_forever()
                except KeyboardInterrupt:  # pragma: no cover - signal path
                    pass
                finally:
                    child.manager.close_all()
                    child.server_close()
                    # os._exit skips atexit hooks: push buffered cache
                    # entries to the store before the worker disappears
                    flush_backends()
                os._exit(0)
            child_pids.append(pid)
        _announce(server)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for pid in child_pids:
            try:
                os.kill(pid, signal.SIGINT)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):  # pragma: no cover
                pass
        server.manager.close_all()
        server.server_close()
        flush_backends()
    return 0
