"""``repro serve``: the session manager over stdlib HTTP + JSON.

One worker process = one :class:`~repro.service.sessions.SessionManager`
behind a :class:`ThreadingHTTPServer` (no dependencies beyond the
standard library).  Sessions are sticky to the worker that created
them; what workers share is the *execution cache* — with the file
backend, every worker (and every restart) warm-starts from the same
store, which is the point of the value-addressed key scheme.

Routes (all bodies JSON):

========================================  =====================================
``POST /api/sessions``                    ``{snapshot, data?, timeout?}`` →
                                          ``{session}``
``POST /api/sessions/<sid>/actions``      ``{action, snapshot}`` → per-action
                                          summary (programs, predictions, stats)
``GET  /api/sessions/<sid>/candidates``   → ``{candidates: [...]}``
``POST /api/sessions/<sid>/accept``       ``{index?}`` → ``{program}``
``POST /api/sessions/<sid>/close``        → final session stats
``GET  /api/stats``                       → manager-wide stats
``GET  /healthz``                         → ``{ok: true}``
========================================  =====================================

Snapshots and actions use the same JSON shapes as recorded
demonstrations (:mod:`repro.io`), so a recorder front end that already
ships recordings speaks this API natively.  ``--workers N`` forks N
workers on consecutive ports over one store — the multi-process
deployment shape; a load balancer (or the client) picks a port.
"""

from __future__ import annotations

import json
import os
import signal
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import io as repro_io
from repro.lang.data import DataSource
from repro.service.backends import flush_backends
from repro.service.sessions import SessionError, SessionManager
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig
from repro.util.errors import ParseError, ReproError

#: Default service port (consecutive ports for extra workers).
DEFAULT_PORT = 8738


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the session manager."""

    daemon_threads = True

    def __init__(self, address, manager: SessionManager, quiet: bool = True):
        self.manager = manager
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def _reply(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int) -> None:
        self._reply({"error": message}, status)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        if length <= 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ParseError("expected a JSON object body")
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                self._reply({"ok": True})
            elif self.path == "/api/stats":
                self._reply(self.server.manager.stats())
            elif self.path.startswith("/api/sessions/") and self.path.endswith(
                "/candidates"
            ):
                sid = self.path[len("/api/sessions/") : -len("/candidates")]
                self._reply({"candidates": self.server.manager.candidates(sid)})
            else:
                self._error(f"no route {self.path}", 404)
        except SessionError as exc:
            self._error(str(exc), 404)
        except Exception as exc:  # pragma: no cover - defensive
            self._error(f"{type(exc).__name__}: {exc}", 500)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            payload = self._body()
            manager = self.server.manager
            if self.path == "/api/sessions":
                if "snapshot" not in payload:
                    raise ParseError("session creation requires 'snapshot'")
                snapshot = repro_io.dom_from_json(payload["snapshot"])
                data = (
                    DataSource(payload["data"]) if "data" in payload else None
                )
                sid = manager.create(
                    snapshot, data=data, timeout=payload.get("timeout")
                )
                self._reply({"session": sid})
                return
            if self.path.startswith("/api/sessions/"):
                rest = self.path[len("/api/sessions/") :]
                if rest.endswith("/actions"):
                    sid = rest[: -len("/actions")]
                    if "action" not in payload or "snapshot" not in payload:
                        raise ParseError("recording requires 'action' and 'snapshot'")
                    action = repro_io.action_from_json(payload["action"])
                    snapshot = repro_io.dom_from_json(payload["snapshot"])
                    self._reply(manager.record_action(sid, action, snapshot))
                    return
                if rest.endswith("/accept"):
                    sid = rest[: -len("/accept")]
                    self._reply(manager.accept(sid, int(payload.get("index", 0))))
                    return
                if rest.endswith("/close"):
                    sid = rest[: -len("/close")]
                    self._reply(manager.close(sid))
                    return
            self._error(f"no route {self.path}", 404)
        except SessionError as exc:
            self._error(str(exc), 404)
        except (ParseError, ReproError, ValueError, KeyError) as exc:
            self._error(str(exc), 400)
        except Exception as exc:  # pragma: no cover - defensive
            self._error(f"{type(exc).__name__}: {exc}", 500)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def make_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: SynthesisConfig = DEFAULT_CONFIG,
    timeout: Optional[float] = None,
    quiet: bool = True,
) -> ServiceServer:
    """Bind one worker's server (tests drive this in a thread)."""
    manager = SessionManager(config, timeout=timeout)
    return ServiceServer((host, port), manager, quiet=quiet)


def _announce(server: ServiceServer) -> None:
    host, port = server.server_address[:2]
    print(f"repro-service listening on http://{host}:{port}", flush=True)


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 1,
    config: SynthesisConfig = DEFAULT_CONFIG,
    timeout: Optional[float] = None,
    quiet: bool = True,
) -> int:
    """Run the service until interrupted; returns the exit code.

    ``workers > 1`` forks ``workers - 1`` children on consecutive ports
    (``port+1``, ``port+2``, ...), each with its own session manager —
    all resolving the same cache store, so they share executions through
    the persistent backend.  With ``port=0`` the OS picks each worker's
    port; every worker announces its own URL on stdout.
    """
    # bind the parent first: a bad host/port fails fast, before any
    # worker is forked (a bind failure after forking would orphan them)
    server = make_server(host, port, config, timeout, quiet)
    child_pids: list[int] = []
    worker_port = port
    try:
        for _ in range(max(0, workers - 1)):
            if port != 0:
                worker_port += 1
            pid = os.fork()
            if pid == 0:
                server.server_close()  # the parent's socket is not ours
                child = make_server(host, worker_port, config, timeout, quiet)
                _announce(child)
                try:
                    child.serve_forever()
                except KeyboardInterrupt:  # pragma: no cover - signal path
                    pass
                finally:
                    child.manager.close_all()
                    child.server_close()
                    # os._exit skips atexit hooks: push buffered cache
                    # entries to the store before the worker disappears
                    flush_backends()
                os._exit(0)
            child_pids.append(pid)
        _announce(server)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for pid in child_pids:
            try:
                os.kill(pid, signal.SIGINT)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):  # pragma: no cover
                pass
        server.manager.close_all()
        server.server_close()
        flush_backends()
    return 0
