"""Pluggable execution-cache backends: the persistence layer of the service.

The in-memory execution cache (:mod:`repro.engine.cache`) keeps every
key a *value* (content digests for snapshots and data, alpha-canonical
forms for statements — see :mod:`repro.engine.keys`), so a memoized
outcome is meaningful in any process.  A :class:`CacheBackend` is the
seam that exploits this: the cache consults it on an in-memory miss and
writes every new outcome through it, addressed by the
:func:`~repro.engine.keys.stable_digest` of the full value key.

Three backends:

:class:`InProcessBackend`
    The default: nothing beyond the in-memory tables — byte-for-byte
    today's behavior.  ``persistent`` is False, so the cache skips
    digest computation entirely.

:class:`FileBackend`
    A persistent store over one SQLite file (stdlib ``sqlite3``, WAL
    mode): a cold process warm-starts from executions recorded by prior
    sessions — or prior *processes*.  Payloads go through the protocol
    codec seam (:mod:`repro.protocol.codec`) — binary by default for
    the ~10× payload-size cut, JSON as the ablation fallback; reads
    sniff the codec per row, so mixed and legacy stores keep working.
    A byte-accounted decoded-entry LRU sits in front of SQLite so
    repeat probes of hot keys skip both the read and the decode.  The
    store is size-tiered: terminal/whole-program outcomes and
    consistency memos always persist, while cheap exact interior
    entries (bounded cost at or below the tier threshold) are
    recomputed rather than stored.  Eviction is byte-accounted against
    ``max_bytes``, incremental (running totals, no full-table scans)
    and tier-aware: cheap tiers drop first.

Shared use
    Pointing several worker processes at one store *is* the shared
    backend: SQLite serializes writers (WAL keeps readers concurrent),
    :func:`resolve_backend` hands every session in one process the same
    connection, and ``repro serve`` workers all resolve the same path.
    I/O failures degrade to cache misses — the store is a cache, never
    a source of truth.

:class:`~repro.fleet.remote.RemoteBackend` (``remote://host:port``)
    The fleet tier: the same seam over HTTP to a standalone
    ``repro cache-serve`` process, registered lazily through
    :func:`register_backend_factory` — see :mod:`repro.fleet`.

``REPRO_CACHE_BACKEND`` selects the backend (``memory`` | ``file`` |
``remote://host:port``),
``REPRO_CACHE_DIR`` the store directory, ``REPRO_CACHE_MAX_BYTES`` the
store's eviction threshold, ``REPRO_CODEC`` the payload codec
(``binary`` | ``json``), ``REPRO_DECODE_CACHE_BYTES`` the decoded-entry
LRU budget, and ``REPRO_STORE_TIERING`` / ``REPRO_STORE_TIER_COST`` the
persistence tier policy.
"""

from __future__ import annotations

import atexit
import os
import sqlite3
import threading
from pathlib import Path
from typing import Optional

from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step, TokenPredicate
from repro.lang.actions import Action
from repro.lang.ast import SEL_VAR, ValuePath, Var
from repro.obs import metrics as obs_metrics
from repro.protocol.codec import Codec, ProtocolError, resolve_codec, sniff_codec
from repro.semantics.env import Env

#: Entry kinds.  Stored in the ``kind`` column for store introspection
#: and tier-aware eviction — lookups key on the digest alone, whose
#: input already carries the kind tag, so kinds can never collide even
#: without a column filter.
EXACT, TERMINAL, CONSISTENCY = 0, 1, 2

#: Default store eviction threshold: 256 MiB of payload bytes.
DEFAULT_MAX_BYTES = 256 << 20

#: Default decoded-entry LRU budget: 32 MiB of (encoded) payload bytes.
DEFAULT_DECODE_CACHE_BYTES = 32 << 20

#: Default tier threshold: exact interior entries whose recompute cost
#: (the static bound when the analysis can close it, else the entry's
#: own recorded action count — exact, since entries are value-addressed
#: to their snapshots) is at or below this many simulated actions are
#: recomputed rather than persisted.  12 sits just above the short
#: interior prefixes the synthesis worklist re-probes constantly and
#: below the long whole-trace executions that dominate wall-clock.
#: This is only the *seed*: unless ``REPRO_STORE_TIER_COST`` (or the
#: ``tier_cost`` constructor argument) pins an explicit value, each
#: store derives its threshold from the recompute costs it actually
#: observes (see ``FileBackend._recalc_tier_cost_locked``).
DEFAULT_TIER_COST = 12

#: Adaptive tiering: re-derive the threshold every this many observed
#: bounded EXACT costs.
TIER_RECALC_EVERY = 128

#: Adaptive tiering: skip the cheapest ~75% of bounded exact entries.
TIER_PERCENTILE = 0.75

#: Clamp for the derived threshold — never tier away everything (ceil)
#: and never degenerate into persisting every two-action prefix (floor).
TIER_COST_FLOOR = 4
TIER_COST_CEIL = 64

#: Costs above this all land in one overflow bucket of the observed
#: distribution (they are never near the derived percentile anyway).
_TIER_COST_CAP = 256


class _StoreMetrics:
    """Lazy handles on the store's registry families (shared by all
    ``FileBackend`` instances — one process, one store in practice)."""

    _instance = None

    def __init__(self):
        registry = obs_metrics.registry()
        self.probes = registry.counter(
            "repro_store_probes_total",
            "Persistent-store probe outcomes (decoded = served from the "
            "decoded-entry LRU without a read).",
            ("outcome",),
        )
        self.stores = registry.counter(
            "repro_store_writes_total", "Entries written through to the store."
        )
        self.evictions = registry.counter(
            "repro_store_evictions_total", "Rows dropped by byte-based eviction."
        )
        self.tier_skips = registry.counter(
            "repro_store_tier_skips_total",
            "Writes skipped by the persistence tier policy.",
        )
        self.io_errors = registry.counter(
            "repro_store_io_errors_total", "SQLite errors degraded to misses."
        )
        self.bytes = registry.gauge(
            "repro_store_bytes", "Payload bytes currently on disk."
        )
        self.entries = registry.gauge(
            "repro_store_entries", "Rows currently on disk."
        )
        self.tier_cost = registry.gauge(
            "repro_store_tier_cost",
            "Effective tier threshold (derived unless pinned; -1 = tiering off).",
        )

    @classmethod
    def get(cls) -> "_StoreMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


# ----------------------------------------------------------------------
# Payload conversion (exact structural values — no string round-trips)
# ----------------------------------------------------------------------
class StepInterner:
    """A bounded two-way memo between :class:`Step` objects and payload rows.

    Encode side: maps each step to **one shared row list**, so every
    selector payload that repeats a step emits the same list object —
    the binary codec's identity memo then collapses the repeat into a
    two-byte back-reference (the JSON codec simply re-serializes it).
    Decode side: maps rows back to interned :class:`Step` objects,
    skipping Predicate/Step re-construction — restored selectors repeat
    the same few steps thousands of times (every card of a list page
    shares most of its raw path).

    Bounded as an LRU (hits migrate to the back once the table passes
    half capacity; the oldest entry drops when full), owned per backend
    instance: concurrent validation workers each decode through their
    own backend's interner, so one worker can no longer flush another's
    hot steps mid-decode the way the old module-global wholesale-clear
    dict could.  Losing an entry only costs reconstruction.
    """

    __slots__ = ("capacity", "_rows", "_steps")

    def __init__(self, capacity: int = 1 << 15) -> None:
        self.capacity = capacity
        self._rows: dict[Step, list] = {}
        self._steps: dict[tuple, Step] = {}

    def step_to_row(self, step: Step) -> list:
        rows = self._rows
        row = rows.get(step)
        if row is None:
            pred = step.pred
            row = [
                step.axis == DESC,
                pred.tag,
                pred.attr,
                pred.value,
                type(pred) is TokenPredicate,
                step.index,
            ]
            if len(rows) >= self.capacity:
                del rows[next(iter(rows))]
            rows[step] = row
        elif len(rows) > (self.capacity >> 1):
            rows[step] = rows.pop(step)
        return row

    def row_to_step(self, row: list) -> Step:
        key = tuple(row)
        steps = self._steps
        step = steps.get(key)
        if step is None:
            desc, tag, attr, value, token, index = key
            pred_type = TokenPredicate if token else Predicate
            step = Step(DESC if desc else CHILD, pred_type(tag, attr, value), index)
            if len(steps) >= self.capacity:
                del steps[next(iter(steps))]
            steps[key] = step
        elif len(steps) > (self.capacity >> 1):
            steps[key] = steps.pop(key)
        return step


#: Fallback interner behind the module-level conversion functions
#: (tests and tools call them without a backend).  Backends own their
#: own instance.
_DEFAULT_INTERNER = StepInterner()


def _steps_to_payload(
    steps: tuple[Step, ...], interner: StepInterner
) -> list:
    row = interner.step_to_row
    return [row(step) for step in steps]


def _steps_from_payload(payload: list, interner: StepInterner) -> tuple[Step, ...]:
    step = interner.row_to_step
    return tuple(step(item) for item in payload)


def action_to_payload(
    action: Action, interner: Optional[StepInterner] = None
) -> list:
    """One action as a codec-ready value (structural, lossless)."""
    interner = interner or _DEFAULT_INTERNER
    selector = (
        None
        if action.selector is None
        else _steps_to_payload(action.selector.steps, interner)
    )
    path = None if action.path is None else list(action.path.accessors)
    return [action.kind, selector, action.text, path]


def action_from_payload(
    payload: list, interner: Optional[StepInterner] = None
) -> Action:
    """Rebuild an action from :func:`action_to_payload` output."""
    interner = interner or _DEFAULT_INTERNER
    kind, selector, text, path = payload
    return Action(
        kind,
        None
        if selector is None
        else ConcreteSelector(_steps_from_payload(selector, interner)),
        text,
        None if path is None else ValuePath(None, tuple(path)),
    )


def env_to_payload(
    env: Optional[Env], interner: Optional[StepInterner] = None
) -> Optional[list]:
    """An environment's bindings as a codec-ready value."""
    if env is None:
        return None
    interner = interner or _DEFAULT_INTERNER
    bindings = []
    for var, binding in env.fingerprint():
        if isinstance(binding, ConcreteSelector):
            bindings.append(
                [var.kind, var.uid, _steps_to_payload(binding.steps, interner)]
            )
        else:  # a concrete ValuePath
            bindings.append([var.kind, var.uid, list(binding.accessors)])
    return bindings


def env_from_payload(
    payload: Optional[list], interner: Optional[StepInterner] = None
) -> Optional[Env]:
    """Rebuild an environment from :func:`env_to_payload` output."""
    if payload is None:
        return None
    interner = interner or _DEFAULT_INTERNER
    bindings = {}
    for kind, uid, value in payload:
        var = Var(kind, uid)
        if kind == SEL_VAR:
            bindings[var] = ConcreteSelector(_steps_from_payload(value, interner))
        else:
            bindings[var] = ValuePath(None, tuple(value))
    return Env(bindings)


def entry_to_payload(
    actions: tuple,
    env: Env,
    examined: Optional[tuple[int, ...]],
    exact_budget_ok: bool,
    interner: Optional[StepInterner] = None,
) -> dict:
    """An execution-cache entry as a codec-ready dict."""
    interner = interner or _DEFAULT_INTERNER
    payload: dict = {
        "a": [action_to_payload(action, interner) for action in actions],
        "e": env_to_payload(env, interner),
    }
    if examined is not None:
        payload["x"] = list(examined)
    if exact_budget_ok:
        payload["ok"] = True
    return payload


def entry_from_payload(
    payload: dict, interner: Optional[StepInterner] = None
) -> tuple:
    """``(actions, env, examined, exact_budget_ok)`` back from a payload."""
    interner = interner or _DEFAULT_INTERNER
    actions = tuple(action_from_payload(item, interner) for item in payload["a"])
    env = env_from_payload(payload["e"], interner)
    examined = tuple(payload["x"]) if "x" in payload else None
    return actions, env, examined, bool(payload.get("ok", False))


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class CacheBackend:
    """The persistence seam behind the in-memory execution cache.

    The cache addresses the store by the stable digest of a full value
    key and speaks *decoded* entries — the codec is the backend's
    business, so the engine layer never depends on a wire format.
    ``persistent`` tells the cache whether computing those digests is
    worth anything at all.
    """

    #: Short name surfaced in telemetry (``repro synthesize --stats``).
    name: str = "backend"
    #: Whether the backend can answer across processes/restarts.  False
    #: lets the cache skip digest computation entirely.
    persistent: bool = False

    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        """``(actions, env, examined, exact_budget_ok)`` or ``None``."""
        raise NotImplementedError

    def fetch_entry(self, kind: int, key: bytes) -> tuple[Optional[tuple], int]:
        """``(entry, cached_bytes)``: :meth:`load_entry` plus telemetry.

        ``cached_bytes`` is the encoded payload size when the entry was
        served from a decoded-entry cache (the read *and* the decode
        were skipped), 0 on a store read or a miss.  The base
        implementation has no such cache, so it always reports 0.
        """
        return self.load_entry(kind, key), 0

    def should_persist(self, kind: int, cost: Optional[int]) -> bool:
        """Whether an entry of this kind and bounded cost is worth storing.

        ``cost`` is an upper bound on the simulated actions needed to
        recompute the entry, or ``None`` when unbounded/unknown.  The
        base policy persists everything; tiered backends override.
        """
        return True

    def store_entry(
        self,
        kind: int,
        key: bytes,
        actions: tuple,
        env: Optional[Env],
        examined: Optional[tuple[int, ...]],
        exact_budget_ok: bool,
    ) -> None:
        """Write one execution entry through to the store (may buffer)."""
        raise NotImplementedError

    def load_consistency(self, key: bytes) -> Optional[int]:
        """A stored consistency-memo value, or ``None``."""
        raise NotImplementedError

    def store_consistency(self, key: bytes, value: int) -> None:
        """Write one consistency-memo value through to the store."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make buffered writes visible to other processes."""

    def close(self) -> None:
        """Flush and release resources."""

    @property
    def persisted_bytes(self) -> int:
        """Approximate payload bytes currently held by the store."""
        return 0

    @property
    def entries(self) -> int:
        """Number of entries currently held by the store."""
        return 0


class InProcessBackend(CacheBackend):
    """Today's behavior: no second level, no digests, no I/O."""

    name = "memory"
    persistent = False

    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        return None

    def store_entry(self, kind, key, actions, env, examined, exact_budget_ok) -> None:
        pass

    def load_consistency(self, key: bytes) -> Optional[int]:
        return None

    def store_consistency(self, key: bytes, value: int) -> None:
        pass


def _tier_cost_from_env() -> Optional[int]:
    """The tier threshold the environment selects.

    -1 disables tiering (``REPRO_STORE_TIERING=0``); an integer pins an
    explicit threshold (``REPRO_STORE_TIER_COST``); ``None`` means
    neither was set — the store derives the threshold adaptively.
    """
    toggle = os.environ.get("REPRO_STORE_TIERING", "1").strip().lower()
    if toggle in ("0", "off", "false", "no"):
        return -1
    override = os.environ.get("REPRO_STORE_TIER_COST", "").strip()
    if not override:
        return None
    try:
        return int(override)
    except ValueError:
        return None


class FileBackend(CacheBackend):
    """A byte-accounted persistent store over one SQLite file.

    One connection per process (see :func:`resolve_backend`), guarded by
    a lock so concurrent sessions and validation workers share it
    safely; WAL mode plus a busy timeout make one *file* safe to share
    between worker processes.  Writes are buffered (deduplicated by key)
    and flushed every ``flush_every`` distinct keys (and at interpreter
    exit), so other processes see entries with bounded staleness at a
    fraction of the commit cost.

    Reads go through a decoded-entry LRU (digest → decoded tuple,
    byte-accounted against ``decode_cache_bytes``) before touching
    SQLite; hits count into ``decode_hits`` / ``decode_bytes``.  Writes
    go through the payload codec (binary unless ``REPRO_CODEC``/the
    ``codec`` argument says otherwise); reads sniff the codec per row,
    so a store written by either codec — or a mix — always decodes.

    The store is size-tiered: :data:`TERMINAL` outcomes and
    :data:`CONSISTENCY` memos always persist, while :data:`EXACT`
    interior entries whose recompute cost is bounded at or below
    ``tier_cost`` are skipped (the in-memory tables still hold them).
    Unless pinned (constructor argument or ``REPRO_STORE_TIER_COST``),
    ``tier_cost`` is *derived*: the store tracks the distribution of
    bounded recompute costs it is asked about and re-sets the threshold
    to its :data:`TIER_PERCENTILE` every :data:`TIER_RECALC_EVERY`
    observations, clamped to [:data:`TIER_COST_FLOOR`,
    :data:`TIER_COST_CEIL`].
    Eviction is byte-based and incremental — running totals maintained
    at flush time, no full-table ``SUM`` scans — and tier-aware: once
    the total exceeds ``max_bytes``, rows are dropped down to 90% of
    the threshold cheapest-tier-first (EXACT, then CONSISTENCY, then
    TERMINAL), oldest-written first within a tier.  Every SQLite error
    degrades to a miss or a dropped write — the store is a cache, not a
    ledger.
    """

    name = "file"
    persistent = True

    def __init__(
        self,
        path: str | Path,
        max_bytes: Optional[int] = None,
        flush_every: int = 64,
        codec: Optional[Codec] = None,
        decode_cache_bytes: Optional[int] = None,
        tier_cost: Optional[int] = None,
    ) -> None:
        self.path = str(path)
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        self.flush_every = max(1, flush_every)
        self.codec = codec if codec is not None else resolve_codec(default="binary")
        if decode_cache_bytes is None:
            decode_cache_bytes = int(
                os.environ.get("REPRO_DECODE_CACHE_BYTES", DEFAULT_DECODE_CACHE_BYTES)
            )
        self.decode_cache_bytes = decode_cache_bytes
        #: Tier threshold for :meth:`should_persist`; -1 disables tiering.
        #: An explicit constructor argument or ``REPRO_STORE_TIER_COST``
        #: pins the value; otherwise it seeds at :data:`DEFAULT_TIER_COST`
        #: and tracks the :data:`TIER_PERCENTILE` of the bounded
        #: recompute costs this store actually observes.
        if tier_cost is None:
            tier_cost = _tier_cost_from_env()
        self.tier_adaptive = tier_cost is None
        self.tier_cost = DEFAULT_TIER_COST if tier_cost is None else tier_cost
        #: Observed bounded-EXACT recompute costs: cost -> count (costs
        #: past _TIER_COST_CAP pool in one overflow bucket).
        self._cost_counts: dict[int, int] = {}
        self._cost_samples = 0
        self.interner = StepInterner()
        self._lock = threading.Lock()
        #: Write buffer, deduplicated by key: a re-store of a pending
        #: key replaces the buffered row instead of appending a
        #: double-counted duplicate.
        self._pending: dict[bytes, tuple[int, bytes, int]] = {}
        self._pending_bytes = 0
        #: Decoded-entry LRU: digest → (value, encoded bytes).  The value
        #: is the decoded entry tuple on the read path; the write path
        #: parks the *encoded* ``bytes`` row instead (encoding already
        #: happened for the store), and the first probe decodes it once
        #: and swaps the slot — so a just-written entry never pays the
        #: SQLite read, and the pure-Python decode is paid at most once
        #: per process either way.
        self._decoded: dict[bytes, tuple[object, int]] = {}
        self._decoded_bytes = 0
        #: Telemetry: loads answered / attempted, writes, evicted rows,
        #: entries dropped because their values were not codec-encodable,
        #: I/O errors degraded to misses, decoded-cache hits and the
        #: encoded bytes those hits never re-read, and writes the tier
        #: policy skipped.
        self.load_hits = 0
        self.loads = 0
        self.stores = 0
        self.evictions = 0
        self.encode_errors = 0
        self.io_errors = 0
        self.decode_hits = 0
        self.decode_bytes = 0
        self.tier_skips = 0
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0, isolation_level=None
        )
        #: Running store totals (rows / payload bytes on disk), seeded
        #: once here and maintained incrementally at flush/evict time so
        #: steady-state accounting never rescans the table.
        self._db_entries = 0
        self._db_bytes = 0
        with self._lock:
            try:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=OFF")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " key BLOB PRIMARY KEY,"
                    " kind INTEGER NOT NULL,"
                    " payload BLOB NOT NULL,"
                    " nbytes INTEGER NOT NULL)"
                )
                self._resync_totals_locked()
            except sqlite3.Error:
                self.io_errors += 1
        _StoreMetrics.get().tier_cost.set(self.tier_cost)
        atexit.register(self.flush)

    # ------------------------------------------------------------------
    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        return self.fetch_entry(kind, key)[0]

    def fetch_entry(self, kind: int, key: bytes) -> tuple[Optional[tuple], int]:
        blob: Optional[bytes] = None
        with self._lock:
            cached = self._decoded.get(key)
            if cached is not None:
                self._decoded[key] = self._decoded.pop(key)
                value, nbytes = cached
                if isinstance(value, bytes):
                    blob = value  # write-path slot: still encoded
                else:
                    self.loads += 1
                    self.load_hits += 1
                    self.decode_hits += 1
                    self.decode_bytes += nbytes
                    _StoreMetrics.get().probes.labels(outcome="decoded").inc()
                    return value, nbytes
        if blob is not None:
            # an encoded row remembered at write time: the SQLite read is
            # skipped, the decode is paid here — once per process — and
            # the slot swaps to the decoded entry for every later probe
            entry = self._decode_blob(key, blob)
            if entry is None:
                return None, 0
            nbytes = len(blob) + len(key)
            with self._lock:
                self.loads += 1
                self.load_hits += 1
                self.decode_hits += 1
                self.decode_bytes += nbytes
                self._remember_decoded_locked(key, entry, nbytes)
            _StoreMetrics.get().probes.labels(outcome="encoded").inc()
            return entry, nbytes
        payload, nbytes = self._load(key)
        if payload is None:
            return None, 0
        try:
            entry = entry_from_payload(payload, self.interner)
        except (KeyError, TypeError, ValueError, IndexError):
            return None, 0  # corrupt or foreign payload: a miss
        with self._lock:
            self._remember_decoded_locked(key, entry, nbytes)
        return entry, 0

    def should_persist(self, kind: int, cost: Optional[int]) -> bool:
        if kind != EXACT or self.tier_cost < 0:
            return True
        if cost is None:
            return True
        if self.tier_adaptive:
            with self._lock:
                self._observe_cost_locked(cost)
        if cost > self.tier_cost:
            return True
        self.tier_skips += 1
        _StoreMetrics.get().tier_skips.inc()
        return False

    def _observe_cost_locked(self, cost: int) -> None:
        bucket = cost if cost < _TIER_COST_CAP else _TIER_COST_CAP
        counts = self._cost_counts
        counts[bucket] = counts.get(bucket, 0) + 1
        self._cost_samples += 1
        if self._cost_samples % TIER_RECALC_EVERY == 0:
            self._recalc_tier_cost_locked()

    def _recalc_tier_cost_locked(self) -> None:
        """Re-derive ``tier_cost`` as the :data:`TIER_PERCENTILE` of the
        observed bounded recompute costs, clamped to
        [:data:`TIER_COST_FLOOR`, :data:`TIER_COST_CEIL`].

        The observed distribution is exactly the population the policy
        splits: entries whose cost the tier decision already had in
        hand.  A store dominated by short interior prefixes pushes the
        threshold up (skip more, they are cheap to recompute); a store
        of long bounded executions pulls it down toward the floor so
        genuinely expensive entries keep persisting.
        """
        target = self._cost_samples * TIER_PERCENTILE
        cumulative = 0
        derived = TIER_COST_FLOOR
        for bucket in sorted(self._cost_counts):
            cumulative += self._cost_counts[bucket]
            if cumulative >= target:
                derived = bucket
                break
        self.tier_cost = max(TIER_COST_FLOOR, min(TIER_COST_CEIL, derived))
        _StoreMetrics.get().tier_cost.set(self.tier_cost)

    def store_entry(
        self, kind, key, actions, env, examined, exact_budget_ok
    ) -> None:
        try:
            payload = entry_to_payload(
                actions, env, examined, exact_budget_ok, self.interner
            )
        except (TypeError, AttributeError, ValueError):
            # values outside the codec vocabulary (unit-test stubs,
            # future extensions): the in-memory tables still hold them
            self.encode_errors += 1
            return
        self._store(kind, key, payload)

    def load_consistency(self, key: bytes) -> Optional[int]:
        payload, _ = self._load(key)
        if payload is None or not isinstance(payload.get("v"), int):
            return None
        return payload["v"]

    def store_consistency(self, key: bytes, value: int) -> None:
        self._store(CONSISTENCY, key, {"v": value})

    # ------------------------------------------------------------------
    # Raw payload access: the cache server's seam.  The fleet cache tier
    # relays codec payload dicts verbatim — it never decodes entries into
    # actions/envs, so a cache server can serve stores written by any
    # protocol-compatible worker.
    # ------------------------------------------------------------------
    def load_payload(self, key: bytes) -> Optional[dict]:
        """The codec payload stored under ``key`` (reads the write buffer
        first, so a just-put entry is visible before the next flush)."""
        with self._lock:
            pending = self._pending.get(key)
        if pending is not None:
            blob = pending[1]
            try:
                payload = sniff_codec(blob).decode_payload(blob)
            except ProtocolError:  # pragma: no cover - we encoded it
                return None
            self.loads += 1
            self.load_hits += 1
            return payload if isinstance(payload, dict) else None
        return self._load(key)[0]

    def store_payload(self, kind: int, key: bytes, payload: dict) -> None:
        """Write one codec payload through the buffered store path."""
        self._store(kind, key, payload)

    def _decode_blob(self, key: bytes, blob: bytes) -> Optional[tuple]:
        """Decode an LRU-held encoded row; corrupt rows drop and miss."""
        try:
            payload = sniff_codec(blob).decode_payload(blob)
            if not isinstance(payload, dict) or "a" not in payload:
                raise ProtocolError("not an entry payload")
            return entry_from_payload(payload, self.interner)
        except (ProtocolError, KeyError, TypeError, ValueError, IndexError):
            with self._lock:
                cached = self._decoded.pop(key, None)
                if cached is not None:
                    self._decoded_bytes -= cached[1]
            return None

    # ------------------------------------------------------------------
    def _remember_decoded_locked(self, key: bytes, entry, nbytes: int) -> None:
        decoded = self._decoded
        previous = decoded.pop(key, None)
        if previous is not None:
            self._decoded_bytes -= previous[1]
        decoded[key] = (entry, nbytes)
        self._decoded_bytes += nbytes
        while self._decoded_bytes > self.decode_cache_bytes and decoded:
            oldest = next(iter(decoded))
            self._decoded_bytes -= decoded.pop(oldest)[1]

    def _load(self, key: bytes) -> tuple[Optional[dict], int]:
        self.loads += 1
        metrics = _StoreMetrics.get()
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error:
            self.io_errors += 1
            metrics.io_errors.inc()
            metrics.probes.labels(outcome="miss").inc()
            return None, 0
        if row is None:
            metrics.probes.labels(outcome="miss").inc()
            return None, 0
        blob = bytes(row[0])
        try:
            payload = sniff_codec(blob).decode_payload(blob)
        except ProtocolError:
            metrics.probes.labels(outcome="miss").inc()
            return None, 0  # corrupt row: a miss, never an error
        if not isinstance(payload, dict):
            metrics.probes.labels(outcome="miss").inc()
            return None, 0
        self.load_hits += 1
        metrics.probes.labels(outcome="hit").inc()
        return payload, len(blob) + len(key)

    def _store(self, kind: int, key: bytes, payload: dict) -> None:
        try:
            blob = self.codec.encode_payload(payload)
        except (ProtocolError, TypeError, ValueError):
            self.encode_errors += 1
            return
        self.stores += 1
        _StoreMetrics.get().stores.inc()
        nbytes = len(blob) + len(key)
        with self._lock:
            previous = self._pending.get(key)
            if previous is not None:
                self._pending_bytes -= previous[2]
            self._pending[key] = (kind, blob, nbytes)
            self._pending_bytes += nbytes
            if kind != CONSISTENCY:
                # park the encoded row in the decode LRU: a later probe
                # of this key (another session, a post-eviction re-probe)
                # skips the read and decodes lazily, exactly once — but
                # never downgrade a slot that already holds the decoded
                # entry (same digest, same value: it stays valid)
                cached = self._decoded.get(key)
                if cached is None or isinstance(cached[0], bytes):
                    self._remember_decoded_locked(key, blob, nbytes)
            if len(self._pending) < self.flush_every:
                return
        self.flush()

    def flush(self) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
            pending_bytes, self._pending_bytes = self._pending_bytes, 0
            if not pending:
                return
            try:
                replaced_rows = 0
                replaced_bytes = 0
                keys = list(pending)
                for start in range(0, len(keys), 500):
                    chunk = keys[start : start + 500]
                    marks = ",".join("?" * len(chunk))
                    for _, nbytes in self._conn.execute(
                        f"SELECT key, nbytes FROM entries WHERE key IN ({marks})",
                        chunk,
                    ):
                        replaced_rows += 1
                        replaced_bytes += nbytes
                self._conn.executemany(
                    "INSERT OR REPLACE INTO entries (key, kind, payload, nbytes)"
                    " VALUES (?, ?, ?, ?)",
                    [
                        (key, kind, blob, nbytes)
                        for key, (kind, blob, nbytes) in pending.items()
                    ],
                )
                self._db_entries += len(pending) - replaced_rows
                self._db_bytes += pending_bytes - replaced_bytes
                self._evict_locked()
            except sqlite3.Error:
                self.io_errors += 1
                _StoreMetrics.get().io_errors.inc()
                self._resync_totals_locked()
            metrics = _StoreMetrics.get()
            metrics.bytes.set(self._db_bytes)
            metrics.entries.set(self._db_entries)

    def _resync_totals_locked(self) -> None:
        """Re-seed the running totals from the table (open, error paths)."""
        try:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
            self._db_entries, self._db_bytes = int(count), int(total)
        except sqlite3.Error:
            self.io_errors += 1

    #: Rows examined per eviction round: bounds each DELETE's scan.
    _EVICT_BATCH = 256

    def _evict_locked(self) -> None:
        """Drop rows until under the byte threshold — cheap tiers first.

        EXACT interior entries (recomputable) go before CONSISTENCY
        memos, which go before TERMINAL whole-program outcomes;
        oldest-written first within each tier, in bounded batches.  The
        running byte total replaces the old full-table ``SUM`` +
        ``ORDER BY rowid`` scan per flush.
        """
        if self._db_bytes <= self.max_bytes:
            return
        target = int(self.max_bytes * 0.9)
        for tier in (EXACT, CONSISTENCY, TERMINAL):
            while self._db_bytes > target:
                rows = self._conn.execute(
                    "SELECT rowid, nbytes, key FROM entries WHERE kind = ?"
                    " ORDER BY rowid LIMIT ?",
                    (tier, self._EVICT_BATCH),
                ).fetchall()
                if not rows:
                    break  # tier empty: move on to the next
                cutoff = rows[-1][0]
                freed = 0
                dropped = 0
                for rowid, nbytes, key in rows:
                    cutoff = rowid
                    freed += nbytes
                    dropped += 1
                    # the decode LRU must not outlive the row: a load
                    # after eviction is a miss, not a phantom hit
                    cached = self._decoded.pop(key, None)
                    if cached is not None:
                        self._decoded_bytes -= cached[1]
                    if self._db_bytes - freed <= target:
                        break
                self._conn.execute(
                    "DELETE FROM entries WHERE kind = ? AND rowid <= ?",
                    (tier, cutoff),
                )
                self.evictions += dropped
                _StoreMetrics.get().evictions.inc(dropped)
                self._db_entries -= dropped
                self._db_bytes -= freed
            if self._db_bytes <= target:
                return

    def close(self) -> None:
        self.flush()
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - defensive
            self.io_errors += 1

    # ------------------------------------------------------------------
    @property
    def persisted_bytes(self) -> int:
        """Store payload bytes: the on-disk running total plus the
        deduplicated write buffer (a pending key already on disk is
        counted twice only until the next flush reconciles it)."""
        with self._lock:
            return self._db_bytes + self._pending_bytes

    @property
    def entries(self) -> int:
        with self._lock:
            return self._db_entries + len(self._pending)


# ----------------------------------------------------------------------
# Resolution (one backend object per store per process)
# ----------------------------------------------------------------------
_MEMORY_BACKEND = InProcessBackend()
_FILE_BACKENDS: dict[str, FileBackend] = {}
#: URL-scheme backend factories: scheme -> factory(url) -> CacheBackend.
#: ``remote`` registers itself on first resolution (lazy import keeps
#: this module free of fleet dependencies).
_FACTORIES: dict[str, object] = {}
#: One backend instance per resolved URL (mirrors _FILE_BACKENDS).
_URL_BACKENDS: dict[str, CacheBackend] = {}
_RESOLVE_LOCK = threading.Lock()


def register_backend_factory(scheme: str, factory) -> None:
    """Plug a URL-scheme backend into :func:`resolve_backend`.

    ``factory`` is called once per distinct URL with the full backend
    name (e.g. ``remote://127.0.0.1:8799``) and must return a
    :class:`CacheBackend`; the instance is cached so every session in
    the process shares it, and :func:`flush_backends` /
    :func:`reset_backends` cover it like any file store.
    """
    _FACTORIES[scheme] = factory


def default_store_path() -> str:
    """The store file ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) names."""
    directory = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not directory:
        directory = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.path.join(directory, "execution-cache.sqlite")


def resolve_backend(
    name: Optional[str] = None, path: Optional[str] = None
) -> CacheBackend:
    """The backend a name (default: ``REPRO_CACHE_BACKEND``) selects.

    ``file`` backends are cached per resolved path, so every session in
    one process shares a single connection — and worker processes
    resolving the same path share one store.
    """
    if name is None:
        name = os.environ.get("REPRO_CACHE_BACKEND", "").strip()
    if name in ("", "memory"):
        return _MEMORY_BACKEND
    if name == "file":
        resolved = os.path.abspath(path or default_store_path())
        with _RESOLVE_LOCK:
            backend = _FILE_BACKENDS.get(resolved)
            if backend is None:
                backend = _FILE_BACKENDS[resolved] = FileBackend(resolved)
            return backend
    if "://" in name:
        scheme = name.split("://", 1)[0]
        if scheme == "remote" and scheme not in _FACTORIES:
            import repro.fleet.remote  # noqa: F401  (registers the factory)
        factory = _FACTORIES.get(scheme)
        if factory is not None:
            with _RESOLVE_LOCK:
                backend = _URL_BACKENDS.get(name)
                if backend is None:
                    backend = _URL_BACKENDS[name] = factory(name)
                return backend
    raise ValueError(
        f"unknown cache backend {name!r} "
        f"(expected 'memory', 'file', or 'remote://host:port')"
    )


def flush_backends() -> None:
    """Flush every resolved persistent backend's buffered writes.

    Worker processes call this before exiting: ``os._exit`` (the
    multiprocessing child exit path) skips ``atexit`` hooks, and entries
    still in the write buffer would otherwise never reach the store —
    or, for ``remote://`` backends, the cache tier.
    """
    with _RESOLVE_LOCK:
        backends = list(_FILE_BACKENDS.values()) + list(_URL_BACKENDS.values())
    for backend in backends:
        backend.flush()


def reset_backends() -> None:
    """Close and forget every resolved backend (test isolation)."""
    with _RESOLVE_LOCK:
        backends = list(_FILE_BACKENDS.values()) + list(_URL_BACKENDS.values())
        _FILE_BACKENDS.clear()
        _URL_BACKENDS.clear()
    for backend in backends:
        backend.close()
