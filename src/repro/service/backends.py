"""Pluggable execution-cache backends: the persistence layer of the service.

The in-memory execution cache (:mod:`repro.engine.cache`) keeps every
key a *value* (content digests for snapshots and data, alpha-canonical
forms for statements — see :mod:`repro.engine.keys`), so a memoized
outcome is meaningful in any process.  A :class:`CacheBackend` is the
seam that exploits this: the cache consults it on an in-memory miss and
writes every new outcome through it, addressed by the
:func:`~repro.engine.keys.stable_digest` of the full value key.

Three backends:

:class:`InProcessBackend`
    The default: nothing beyond the in-memory tables — byte-for-byte
    today's behavior.  ``persistent`` is False, so the cache skips
    digest computation entirely.

:class:`FileBackend`
    A persistent store over one SQLite file (stdlib ``sqlite3``, WAL
    mode): a cold process warm-starts from executions recorded by prior
    sessions — or prior *processes*.  Entries are JSON payloads (no
    pickle: pickled frozen dataclasses would smuggle their
    seed-dependent cached hashes across process boundaries); eviction
    is byte-accounted, oldest-write-first, against ``max_bytes``.

Shared use
    Pointing several worker processes at one store *is* the shared
    backend: SQLite serializes writers (WAL keeps readers concurrent),
    :func:`resolve_backend` hands every session in one process the same
    connection, and ``repro serve`` workers all resolve the same path.
    I/O failures degrade to cache misses — the store is a cache, never
    a source of truth.

``REPRO_CACHE_BACKEND`` selects the backend (``memory`` | ``file``),
``REPRO_CACHE_DIR`` the store directory, and ``REPRO_CACHE_MAX_BYTES``
the store's eviction threshold.
"""

from __future__ import annotations

import atexit
import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Optional

from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step, TokenPredicate
from repro.lang.actions import Action
from repro.lang.ast import SEL_VAR, ValuePath, Var
from repro.semantics.env import Env

#: Entry kinds.  Stored in the ``kind`` column for store introspection
#: (``SELECT kind, COUNT(*) ...``) only — lookups key on the digest
#: alone, whose input already carries the kind tag, so kinds can never
#: collide even without a column filter.
EXACT, TERMINAL, CONSISTENCY = 0, 1, 2

#: Default store eviction threshold: 256 MiB of payload bytes.
DEFAULT_MAX_BYTES = 256 << 20


# ----------------------------------------------------------------------
# Payload codec (exact structural JSON — no string round-trips)
# ----------------------------------------------------------------------
def _steps_to_json(steps: tuple[Step, ...]) -> list:
    return [
        [
            step.axis == DESC,
            step.pred.tag,
            step.pred.attr,
            step.pred.value,
            type(step.pred) is TokenPredicate,
            step.index,
        ]
        for step in steps
    ]


#: Decode-side interning: restored selectors repeat the same few steps
#: thousands of times (every card of a list page shares most of its raw
#: path), and Step/Predicate construction re-validates and re-hashes.
#: Bounded by wholesale flush; losing entries only costs reconstruction.
_STEP_INTERN: dict[tuple, Step] = {}
_STEP_INTERN_LIMIT = 1 << 15


def _steps_from_json(payload: list) -> tuple[Step, ...]:
    steps = []
    for item in payload:
        key = tuple(item)
        step = _STEP_INTERN.get(key)
        if step is None:
            desc, tag, attr, value, token, index = item
            pred_type = TokenPredicate if token else Predicate
            step = Step(DESC if desc else CHILD, pred_type(tag, attr, value), index)
            if len(_STEP_INTERN) >= _STEP_INTERN_LIMIT:
                _STEP_INTERN.clear()
            _STEP_INTERN[key] = step
        steps.append(step)
    return tuple(steps)


def action_to_payload(action: Action) -> list:
    """One action as a JSON-ready value (structural, lossless)."""
    selector = None if action.selector is None else _steps_to_json(action.selector.steps)
    path = None if action.path is None else list(action.path.accessors)
    return [action.kind, selector, action.text, path]


def action_from_payload(payload: list) -> Action:
    """Rebuild an action from :func:`action_to_payload` output."""
    kind, selector, text, path = payload
    return Action(
        kind,
        None if selector is None else ConcreteSelector(_steps_from_json(selector)),
        text,
        None if path is None else ValuePath(None, tuple(path)),
    )


def env_to_payload(env: Optional[Env]) -> Optional[list]:
    """An environment's bindings as a JSON-ready value."""
    if env is None:
        return None
    bindings = []
    for var, binding in env.fingerprint():
        if isinstance(binding, ConcreteSelector):
            bindings.append([var.kind, var.uid, _steps_to_json(binding.steps)])
        else:  # a concrete ValuePath
            bindings.append([var.kind, var.uid, list(binding.accessors)])
    return bindings


def env_from_payload(payload: Optional[list]) -> Optional[Env]:
    """Rebuild an environment from :func:`env_to_payload` output."""
    if payload is None:
        return None
    bindings = {}
    for kind, uid, value in payload:
        var = Var(kind, uid)
        if kind == SEL_VAR:
            bindings[var] = ConcreteSelector(_steps_from_json(value))
        else:
            bindings[var] = ValuePath(None, tuple(value))
    return Env(bindings)


def entry_to_payload(
    actions: tuple,
    env: Env,
    examined: Optional[tuple[int, ...]],
    exact_budget_ok: bool,
) -> dict:
    """An execution-cache entry as a JSON-ready dict."""
    payload: dict = {
        "a": [action_to_payload(action) for action in actions],
        "e": env_to_payload(env),
    }
    if examined is not None:
        payload["x"] = list(examined)
    if exact_budget_ok:
        payload["ok"] = True
    return payload


def entry_from_payload(payload: dict) -> tuple:
    """``(actions, env, examined, exact_budget_ok)`` back from a payload."""
    actions = tuple(action_from_payload(item) for item in payload["a"])
    env = env_from_payload(payload["e"])
    examined = tuple(payload["x"]) if "x" in payload else None
    return actions, env, examined, bool(payload.get("ok", False))


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class CacheBackend:
    """The persistence seam behind the in-memory execution cache.

    The cache addresses the store by the stable digest of a full value
    key and speaks *decoded* entries — the codec is the backend's
    business, so the engine layer never depends on a wire format.
    ``persistent`` tells the cache whether computing those digests is
    worth anything at all.
    """

    #: Short name surfaced in telemetry (``repro synthesize --stats``).
    name: str = "backend"
    #: Whether the backend can answer across processes/restarts.  False
    #: lets the cache skip digest computation entirely.
    persistent: bool = False

    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        """``(actions, env, examined, exact_budget_ok)`` or ``None``."""
        raise NotImplementedError

    def store_entry(
        self,
        kind: int,
        key: bytes,
        actions: tuple,
        env: Optional[Env],
        examined: Optional[tuple[int, ...]],
        exact_budget_ok: bool,
    ) -> None:
        """Write one execution entry through to the store (may buffer)."""
        raise NotImplementedError

    def load_consistency(self, key: bytes) -> Optional[int]:
        """A stored consistency-memo value, or ``None``."""
        raise NotImplementedError

    def store_consistency(self, key: bytes, value: int) -> None:
        """Write one consistency-memo value through to the store."""
        raise NotImplementedError

    def flush(self) -> None:
        """Make buffered writes visible to other processes."""

    def close(self) -> None:
        """Flush and release resources."""

    @property
    def persisted_bytes(self) -> int:
        """Approximate payload bytes currently held by the store."""
        return 0

    @property
    def entries(self) -> int:
        """Number of entries currently held by the store."""
        return 0


class InProcessBackend(CacheBackend):
    """Today's behavior: no second level, no digests, no I/O."""

    name = "memory"
    persistent = False

    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        return None

    def store_entry(self, kind, key, actions, env, examined, exact_budget_ok) -> None:
        pass

    def load_consistency(self, key: bytes) -> Optional[int]:
        return None

    def store_consistency(self, key: bytes, value: int) -> None:
        pass


class FileBackend(CacheBackend):
    """A byte-accounted persistent store over one SQLite file.

    One connection per process (see :func:`resolve_backend`), guarded by
    a lock so concurrent sessions and validation workers share it
    safely; WAL mode plus a busy timeout make one *file* safe to share
    between worker processes.  Writes are buffered and flushed every
    ``flush_every`` stores (and at interpreter exit), so other processes
    see entries with bounded staleness at a fraction of the commit cost.

    Eviction is byte-based: once the summed payload bytes exceed
    ``max_bytes``, the oldest-written rows are deleted down to 90% of
    the threshold (``INSERT OR REPLACE`` refreshes a row's age, so
    rewritten entries survive longest).  Every SQLite error degrades to
    a miss or a dropped write — the store is a cache, not a ledger.
    """

    name = "file"
    persistent = True

    def __init__(
        self,
        path: str | Path,
        max_bytes: Optional[int] = None,
        flush_every: int = 64,
    ) -> None:
        self.path = str(path)
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES))
        self.max_bytes = max_bytes
        self.flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._pending: list[tuple[bytes, int, bytes, int]] = []
        #: Telemetry: loads answered / attempted, writes, evicted rows,
        #: entries dropped because their values were not codec-encodable,
        #: and I/O errors degraded to misses.
        self.load_hits = 0
        self.loads = 0
        self.stores = 0
        self.evictions = 0
        self.encode_errors = 0
        self.io_errors = 0
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, timeout=30.0, isolation_level=None
        )
        with self._lock:
            try:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=OFF")
                self._conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " key BLOB PRIMARY KEY,"
                    " kind INTEGER NOT NULL,"
                    " payload BLOB NOT NULL,"
                    " nbytes INTEGER NOT NULL)"
                )
            except sqlite3.Error:
                self.io_errors += 1
        atexit.register(self.flush)

    # ------------------------------------------------------------------
    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        payload = self._load(key)
        if payload is None:
            return None
        try:
            return entry_from_payload(payload)
        except (KeyError, TypeError, ValueError, IndexError):
            return None  # corrupt or foreign payload: a miss

    def store_entry(
        self, kind, key, actions, env, examined, exact_budget_ok
    ) -> None:
        try:
            payload = entry_to_payload(actions, env, examined, exact_budget_ok)
        except (TypeError, AttributeError, ValueError):
            # values outside the codec vocabulary (unit-test stubs,
            # future extensions): the in-memory tables still hold them
            self.encode_errors += 1
            return
        self._store(kind, key, payload)

    def load_consistency(self, key: bytes) -> Optional[int]:
        payload = self._load(key)
        if payload is None or not isinstance(payload.get("v"), int):
            return None
        return payload["v"]

    def store_consistency(self, key: bytes, value: int) -> None:
        self._store(CONSISTENCY, key, {"v": value})

    # ------------------------------------------------------------------
    def _load(self, key: bytes) -> Optional[dict]:
        self.loads += 1
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error:
            self.io_errors += 1
            return None
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except (ValueError, TypeError):
            return None  # corrupt row: a miss, never an error
        if not isinstance(payload, dict):
            return None
        self.load_hits += 1
        return payload

    def _store(self, kind: int, key: bytes, payload: dict) -> None:
        try:
            blob = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError):
            self.encode_errors += 1
            return
        self.stores += 1
        with self._lock:
            self._pending.append((key, kind, blob, len(blob) + len(key)))
            if len(self._pending) < self.flush_every:
                return
        self.flush()

    def flush(self) -> None:
        with self._lock:
            pending, self._pending = self._pending, []
            if not pending:
                return
            try:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO entries (key, kind, payload, nbytes)"
                    " VALUES (?, ?, ?, ?)",
                    pending,
                )
                self._evict_locked()
            except sqlite3.Error:
                self.io_errors += 1

    def _evict_locked(self) -> None:
        """Drop oldest-written rows until under the byte threshold."""
        total = self._conn.execute(
            "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
        ).fetchone()[0]
        if total <= self.max_bytes:
            return
        target = int(self.max_bytes * 0.9)
        cutoff = None
        for rowid, nbytes in self._conn.execute(
            "SELECT rowid, nbytes FROM entries ORDER BY rowid"
        ):
            cutoff = rowid
            total -= nbytes
            if total <= target:
                break
        if cutoff is not None:
            dropped = self._conn.execute(
                "DELETE FROM entries WHERE rowid <= ?", (cutoff,)
            ).rowcount
            self.evictions += max(0, dropped)

    def close(self) -> None:
        self.flush()
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - defensive
            self.io_errors += 1

    # ------------------------------------------------------------------
    @property
    def persisted_bytes(self) -> int:
        try:
            with self._lock:
                total = self._conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM entries"
                ).fetchone()[0]
            return int(total) + sum(item[3] for item in self._pending)
        except sqlite3.Error:
            self.io_errors += 1
            return 0

    @property
    def entries(self) -> int:
        try:
            with self._lock:
                count = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            return int(count) + len(self._pending)
        except sqlite3.Error:
            self.io_errors += 1
            return 0


# ----------------------------------------------------------------------
# Resolution (one backend object per store per process)
# ----------------------------------------------------------------------
_MEMORY_BACKEND = InProcessBackend()
_FILE_BACKENDS: dict[str, FileBackend] = {}
_RESOLVE_LOCK = threading.Lock()


def default_store_path() -> str:
    """The store file ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) names."""
    directory = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not directory:
        directory = os.path.join(os.path.expanduser("~"), ".cache", "repro")
    return os.path.join(directory, "execution-cache.sqlite")


def resolve_backend(
    name: Optional[str] = None, path: Optional[str] = None
) -> CacheBackend:
    """The backend a name (default: ``REPRO_CACHE_BACKEND``) selects.

    ``file`` backends are cached per resolved path, so every session in
    one process shares a single connection — and worker processes
    resolving the same path share one store.
    """
    if name is None:
        name = os.environ.get("REPRO_CACHE_BACKEND", "").strip()
    if name in ("", "memory"):
        return _MEMORY_BACKEND
    if name == "file":
        resolved = os.path.abspath(path or default_store_path())
        with _RESOLVE_LOCK:
            backend = _FILE_BACKENDS.get(resolved)
            if backend is None:
                backend = _FILE_BACKENDS[resolved] = FileBackend(resolved)
            return backend
    raise ValueError(f"unknown cache backend {name!r} (expected 'memory' or 'file')")


def flush_backends() -> None:
    """Flush every resolved file backend's buffered writes to disk.

    Worker processes call this before exiting: ``os._exit`` (the
    multiprocessing child exit path) skips ``atexit`` hooks, and entries
    still in the write buffer would otherwise never reach the store.
    """
    with _RESOLVE_LOCK:
        for backend in _FILE_BACKENDS.values():
            backend.flush()


def reset_backends() -> None:
    """Close and forget every resolved file backend (test isolation)."""
    with _RESOLVE_LOCK:
        for backend in _FILE_BACKENDS.values():
            backend.close()
        _FILE_BACKENDS.clear()
