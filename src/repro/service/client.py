"""Typed client for the ``repro serve`` protocol API (stdlib ``http.client``).

Speaks the versioned ``/v1`` routes end to end in protocol messages
(:mod:`repro.protocol.messages`) encoded by the protocol codec — the
same typed surface the server decodes, so driving a served synthesizer
looks like driving a local
:class:`~repro.service.sessions.SessionManager`:

>>> client = ServiceClient("http://127.0.0.1:8738")
>>> sid = client.create_session(first_snapshot)
>>> proposed = client.record_action(sid, action, next_snapshot)
>>> proposed.predictions[0]
"ScrapeText(//div[@class='card'][3]/h3[1])"

:meth:`drive_recording` replays a stored demonstration action by
action; :meth:`export_session` / :meth:`import_session` /
:meth:`migrate_session` move a live session between workers.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Optional, Union
from urllib.parse import urlsplit

from repro.browser.recorder import Recording
from repro.fleet.pool import pool
from repro.obs import context as obs_context
from repro.protocol.codec import Codec, ProtocolError as CodecError, resolve_codec, sniff_codec
from repro.protocol.messages import (
    Accept,
    Accepted,
    ActionRecorded,
    CandidateList,
    CloseSession,
    CreateSession,
    ErrorEnvelope,
    MigrateSession,
    Migrated,
    ProgramProposed,
    ProtocolError,
    Reject,
    Rejected,
    SessionClosed,
    SessionCreated,
    SessionSnapshot,
    from_wire,
)
from repro.util.errors import ReproError


class ServiceClientError(ReproError):
    """A non-2xx response (or malformed payload) from the service.

    Carries the decoded :class:`~repro.protocol.messages.ErrorEnvelope`
    and HTTP status when the server sent one.
    """

    def __init__(
        self,
        message: str,
        envelope: Optional[ErrorEnvelope] = None,
        status: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.envelope = envelope
        self.status = status

    @property
    def code(self) -> Optional[str]:
        """The machine-readable error code, when the server sent one."""
        return self.envelope.code if self.envelope is not None else None


class ServiceClient:
    """One connection to one service worker.

    ``codec`` selects the wire codec — a name (``json`` | ``binary``), a
    :class:`~repro.protocol.codec.Codec`, or ``None`` for the
    ``REPRO_CODEC``/JSON default.  Requests carry the codec's media type
    in ``Content-Type`` and ``Accept``; the server replies in kind, and
    responses are decoded by sniffing, so a mixed deployment (old JSON
    worker, new binary client or vice versa) still round-trips.

    Connections come from the process-wide keep-alive pool
    (:mod:`repro.fleet.pool`) shared with the remote cache backend: a
    request borrows a parked connection to ``host:port`` when one is
    idle and parks it back after a keep-alive response, so consecutive
    calls — even across many short-lived clients — skip the TCP
    handshake.  The GET retry semantics are unchanged: an idempotent
    read replays once on a fresh connection, a dropped non-GET raises
    (the server may or may not have processed it).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        codec: Union[str, Codec, None] = None,
    ) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.hostname is None:
            raise ValueError(f"bad service URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self.codec = codec if isinstance(codec, Codec) else resolve_codec(codec)

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, message=None, raw: Optional[dict] = None):
        """One round trip; returns the decoded protocol message (or dict)."""
        body = None
        headers = {"Accept": self.codec.content_type}
        # propagate the ambient trace context so server-side spans
        # stitch under the caller's trace — including migration pushes,
        # where this client runs inside the source worker's request
        ctx = obs_context.current()
        if ctx is not None:
            headers[obs_context.HEADER] = ctx.wire_value()
        if message is not None:
            body = self.codec.encode(message)
            headers["Content-Type"] = self.codec.content_type
        elif raw is not None:
            body = json.dumps(raw).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = pool().acquire(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        except (ConnectionError, OSError) as exc:
            pool().discard(connection)
            if method != "GET":
                # a dropped connection does not say whether the server
                # processed the request — replaying a record-action
                # would append the action twice; only idempotent reads
                # are safe to retry
                raise ServiceClientError(
                    f"{method} {path} failed mid-request ({exc}); check the "
                    f"session state before retrying"
                ) from exc
            # one reconnect on a fresh socket: a parked keep-alive may
            # have been recycled by the server, so do not re-borrow
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except (ConnectionError, OSError):
                connection.close()
                raise
        if response.will_close:
            pool().discard(connection)
        else:
            pool().release(self.host, self.port, connection)
        return self._decode(method, path, response.status, payload)

    def _decode(self, method: str, path: str, status: int, payload: bytes):
        try:
            wire = sniff_codec(payload).decode_payload(payload)
        except CodecError as exc:
            raise ServiceClientError(
                f"malformed response from {path}: {payload[:200]!r}", status=status
            ) from exc
        decoded = wire
        if isinstance(wire, dict) and wire.get("type") is not None:
            try:
                decoded = from_wire(wire)
            except ProtocolError as exc:
                raise ServiceClientError(
                    f"undecodable protocol message from {path}: {exc}", status=status
                ) from exc
        if status >= 400:
            envelope = decoded if isinstance(decoded, ErrorEnvelope) else None
            detail = (
                f"{envelope.code}: {envelope.message}"
                if envelope is not None
                else str(wire)
            )
            raise ServiceClientError(
                f"{method} {path} -> {status}: {detail}",
                envelope=envelope,
                status=status,
            )
        return decoded

    def close(self) -> None:
        """No-op kept for API compatibility.

        Connections are pool-owned: a request that completed with
        keep-alive has already parked its connection for the next
        caller (any client, any thread), so there is nothing per-client
        to tear down.  ``repro.fleet.pool.reset_pool()`` drops every
        parked connection when a test needs a cold start.
        """

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def health(self) -> bool:
        """Whether the worker answers its health check."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceClientError, OSError):
            return False

    def protocol_version(self) -> Optional[int]:
        """The protocol version the worker speaks (None if unreachable)."""
        try:
            return self._request("GET", "/healthz").get("protocol")
        except (ServiceClientError, OSError):
            return None

    def create_session(
        self, snapshot, data=None, timeout: Optional[float] = None
    ) -> str:
        """Open a session on an initial DOM snapshot; returns its id."""
        message = CreateSession(
            snapshot=snapshot,
            data=data.value if hasattr(data, "value") else data,
            timeout=timeout,
        )
        created = self._request("POST", "/v1/sessions", message)
        self._expect(created, SessionCreated)
        return created.session

    def record_action(self, sid: str, action, snapshot) -> ProgramProposed:
        """One per-action round trip; returns the typed synthesis summary."""
        message = ActionRecorded(session=sid, action=action, snapshot=snapshot)
        proposed = self._request("POST", f"/v1/sessions/{sid}/actions", message)
        self._expect(proposed, ProgramProposed)
        return proposed

    def candidates(self, sid: str) -> CandidateList:
        """The ranked candidate programs of a session."""
        listed = self._request("GET", f"/v1/sessions/{sid}/candidates")
        self._expect(listed, CandidateList)
        return listed

    def accept(self, sid: str, index: int = 0) -> Accepted:
        """Accept one candidate; returns it rendered."""
        accepted = self._request(
            "POST", f"/v1/sessions/{sid}/accept", Accept(session=sid, index=index)
        )
        self._expect(accepted, Accepted)
        return accepted

    def reject(self, sid: str) -> Rejected:
        """Reject every current proposal; returns the running count."""
        rejected = self._request(
            "POST", f"/v1/sessions/{sid}/reject", Reject(session=sid)
        )
        self._expect(rejected, Rejected)
        return rejected

    def close_session(self, sid: str) -> SessionClosed:
        """Close a session; returns its final stats."""
        closed = self._request(
            "POST", f"/v1/sessions/{sid}/close", CloseSession(session=sid)
        )
        self._expect(closed, SessionClosed)
        return closed

    def stats(self) -> dict:
        """Manager-wide stats of the worker (gauges, not a typed message)."""
        return self._request("GET", "/v1/stats")

    def session_ids(self) -> list[str]:
        """Ids of the sessions this worker is currently serving."""
        return list(self._request("GET", "/v1/sessions").get("sessions", ()))

    @staticmethod
    def _expect(message, cls) -> None:
        if not isinstance(message, cls):
            raise ServiceClientError(
                f"expected a {cls.__name__}, got {type(message).__name__}"
            )

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def export_session(self, sid: str) -> SessionSnapshot:
        """Serialize a session off this worker (it stops serving here)."""
        snapshot = self._request(
            "POST", f"/v1/sessions/{sid}/migrate", MigrateSession(session=sid)
        )
        self._expect(snapshot, SessionSnapshot)
        return snapshot

    def import_session(self, snapshot: SessionSnapshot) -> str:
        """Resume an exported session on this worker; returns its new id."""
        created = self._request("POST", "/v1/sessions/import", snapshot)
        self._expect(created, SessionCreated)
        return created.session

    def migrate_session(
        self, sid: str, target: Union[str, "ServiceClient"]
    ) -> Migrated:
        """Move a session to another worker (server-to-server push)."""
        if isinstance(target, ServiceClient):
            target = f"http://{target.host}:{target.port}"
        migrated = self._request(
            "POST",
            f"/v1/sessions/{sid}/migrate",
            MigrateSession(session=sid, target=target),
        )
        self._expect(migrated, Migrated)
        return migrated

    # ------------------------------------------------------------------
    def drive_recording(
        self, recording: Recording, data=None, timeout: Optional[float] = None
    ) -> tuple[str, list[ProgramProposed]]:
        """Replay a stored demonstration through the service.

        Opens a session on the recording's first snapshot, streams every
        action with its following snapshot, and returns ``(sid,
        proposals)`` — one :class:`ProgramProposed` per call, the
        session left open for ``candidates``/``accept``.
        """
        sid = self.create_session(recording.snapshots[0], data=data, timeout=timeout)
        proposals = []
        for position, action in enumerate(recording.actions):
            proposals.append(
                self.record_action(sid, action, recording.snapshots[position + 1])
            )
        return sid, proposals
