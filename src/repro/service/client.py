"""Thin client for the ``repro serve`` JSON API (stdlib ``http.client``).

Speaks exactly the wire shapes of :mod:`repro.service.server` — DOM
snapshots and actions serialized as in recorded demonstrations
(:mod:`repro.io`) — so driving a served synthesizer looks like driving
a local :class:`~repro.service.sessions.SessionManager`:

>>> client = ServiceClient("http://127.0.0.1:8738")
>>> sid = client.create_session(first_snapshot)
>>> summary = client.record_action(sid, action, next_snapshot)
>>> summary["predictions"]
['ScrapeText(//div[@class='card'][3]/h3[1])']

:meth:`drive_recording` replays a stored demonstration action by
action — the shape the warm-start benchmark and the examples use.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Optional
from urllib.parse import urlsplit

from repro import io as repro_io
from repro.browser.recorder import Recording
from repro.util.errors import ReproError


class ServiceClientError(ReproError):
    """A non-2xx response (or malformed payload) from the service."""


class ServiceClient:
    """One connection to one service worker."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.hostname is None:
            raise ValueError(f"bad service URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, OSError) as exc:
            self.close()
            if method != "GET":
                # a dropped connection does not say whether the server
                # processed the request — replaying a record-action
                # would append the action twice; only idempotent reads
                # are safe to retry
                raise ServiceClientError(
                    f"{method} {path} failed mid-request ({exc}); check the "
                    f"session state before retrying"
                ) from exc
            # one reconnect: the server may have recycled the keep-alive
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServiceClientError(f"malformed response from {path}: {raw[:200]!r}") from exc
        if response.status >= 400:
            raise ServiceClientError(
                f"{method} {path} -> {response.status}: {decoded.get('error', decoded)}"
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def health(self) -> bool:
        """Whether the worker answers its health check."""
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceClientError, OSError):
            return False

    def create_session(
        self, snapshot, data=None, timeout: Optional[float] = None
    ) -> str:
        """Open a session on an initial DOM snapshot; returns its id."""
        payload: dict = {"snapshot": repro_io.dom_to_json(snapshot)}
        if data is not None:
            payload["data"] = data.value if hasattr(data, "value") else data
        if timeout is not None:
            payload["timeout"] = timeout
        return self._request("POST", "/api/sessions", payload)["session"]

    def record_action(self, sid: str, action, snapshot) -> dict:
        """One per-action round trip; returns the synthesis summary."""
        return self._request(
            "POST",
            f"/api/sessions/{sid}/actions",
            {
                "action": repro_io.action_to_json(action),
                "snapshot": repro_io.dom_to_json(snapshot),
            },
        )

    def candidates(self, sid: str) -> list[dict]:
        """The ranked candidate programs of a session."""
        return self._request("GET", f"/api/sessions/{sid}/candidates")["candidates"]

    def accept(self, sid: str, index: int = 0) -> str:
        """Accept one candidate; returns its rendered program."""
        return self._request(
            "POST", f"/api/sessions/{sid}/accept", {"index": index}
        )["program"]

    def close_session(self, sid: str) -> dict:
        """Close a session; returns its final stats."""
        return self._request("POST", f"/api/sessions/{sid}/close", {})

    def stats(self) -> dict:
        """Manager-wide stats of the worker."""
        return self._request("GET", "/api/stats")

    # ------------------------------------------------------------------
    def drive_recording(
        self, recording: Recording, data=None, timeout: Optional[float] = None
    ) -> tuple[str, list[dict]]:
        """Replay a stored demonstration through the service.

        Opens a session on the recording's first snapshot, streams every
        action with its following snapshot, and returns ``(sid,
        summaries)`` — one per-action summary per call, the session left
        open for ``candidates``/``accept``.
        """
        sid = self.create_session(recording.snapshots[0], data=data, timeout=timeout)
        summaries = []
        for position, action in enumerate(recording.actions):
            summaries.append(
                self.record_action(sid, action, recording.snapshots[position + 1])
            )
        return sid, summaries
