"""Declarative DOM construction.

Synthetic sites assemble pages with nested :func:`E` calls::

    page = E("html", E("body",
        E("div", {"class": "results"},
            E("h3", text="First Store"),
            E("div", {"class": "phone"}, text="555-0100"),
        ),
    )).freeze()

The helper accepts an optional attribute dict as the first positional
argument, followed by child nodes; element text is a keyword argument.
"""

from __future__ import annotations

from typing import Union

from repro.dom.node import DOMNode

Child = Union[DOMNode, dict]


def E(tag: str, *parts: Child, text: str = "", **attr_kwargs: str) -> DOMNode:
    """Build an (unfrozen) element.

    Parameters
    ----------
    tag:
        Element tag name.
    parts:
        An optional leading ``dict`` of attributes, then child nodes.
    text:
        Text owned directly by the element.
    attr_kwargs:
        Extra attributes given as keywords; ``cls`` is an alias for the
        reserved word ``class``.
    """
    attrs: dict[str, str] = {}
    children: list[DOMNode] = []
    for part in parts:
        if isinstance(part, dict):
            attrs.update(part)
        elif isinstance(part, DOMNode):
            children.append(part)
        else:
            raise TypeError(f"unexpected child of type {type(part).__name__}")
    for key, value in attr_kwargs.items():
        attrs["class" if key == "cls" else key] = value
    return DOMNode(tag, attrs, text, children)


def page(*body_parts: Child, title: str = "") -> DOMNode:
    """Build and freeze a full page: ``html > body > parts``.

    Returns the frozen ``html`` root, ready to serve as a DOM snapshot.
    """
    body = E("body", *body_parts)
    html = E("html", body)
    if title:
        html.attrs["data-title"] = title
    return html.freeze()
