"""DOM tree model.

A *DOM snapshot* is an immutable tree of :class:`DOMNode` objects.  The
virtual browser produces a fresh snapshot for every page transition, so a
recorded *DOM trace* is simply a list of root nodes.  Snapshots are frozen
after construction: the synthesizer may safely cache selector resolutions
keyed by root identity.

Identity conventions
--------------------
Within one snapshot, a node is identified by its Python object; across
snapshots, nodes are compared by their *raw path* (absolute child-axis
XPath with per-tag sibling indices), which is how the paper's front end
records actions.
"""

from __future__ import annotations

from typing import Iterator, Optional


class DOMNode:
    """One element of a DOM snapshot.

    Parameters
    ----------
    tag:
        Lower-case HTML tag name (``div``, ``span``, ...).
    attrs:
        Attribute mapping.  ``class``, ``id`` and ``name`` are the ones the
        selector search exploits, but any key is allowed.
    text:
        Text owned directly by this element (children contribute to
        :meth:`text_content` but not to :attr:`text`).
    children:
        Child elements in document order.
    """

    __slots__ = (
        "tag",
        "attrs",
        "text",
        "children",
        "parent",
        "_frozen",
        "_resolve_cache",
        "_snapshot_index",
    )

    def __init__(
        self,
        tag: str,
        attrs: Optional[dict[str, str]] = None,
        text: str = "",
        children: Optional[list["DOMNode"]] = None,
    ) -> None:
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}
        self.text = text
        self.children: list[DOMNode] = list(children) if children else []
        self.parent: Optional[DOMNode] = None
        self._frozen = False
        # Selector-resolution memo, populated lazily on root nodes only.
        # Snapshots are immutable once frozen, so caching is sound.
        self._resolve_cache: Optional[dict] = None
        # Per-snapshot DOM index (repro.engine.index), same discipline.
        self._snapshot_index = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: "DOMNode") -> "DOMNode":
        """Add ``child`` as the last child.  Only allowed before freezing."""
        if self._frozen:
            raise ValueError("cannot mutate a frozen DOM snapshot")
        self.children.append(child)
        return child

    def freeze(self) -> "DOMNode":
        """Set parent pointers recursively and mark the subtree immutable.

        Returns ``self`` so builders can freeze in one expression.
        """
        for child in self.children:
            child.parent = self
            child.freeze()
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has run on this subtree."""
        return self._frozen

    def clone(self) -> "DOMNode":
        """Deep-copy this subtree.  The copy is *not* frozen.

        The virtual browser clones the current snapshot, applies a mutation
        (e.g. filling an input field), then freezes the result as the next
        snapshot.
        """
        return DOMNode(
            self.tag,
            dict(self.attrs),
            self.text,
            [child.clone() for child in self.children],
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["DOMNode"]:
        """Yield this node and every descendant in document order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def iter_descendants(self) -> Iterator["DOMNode"]:
        """Yield every proper descendant in document order (self excluded)."""
        for child in self.children:
            yield from child.iter_subtree()

    def text_content(self) -> str:
        """All text in the subtree, concatenated in document order."""
        parts = [self.text] if self.text else []
        parts.extend(
            child.text_content() for child in self.children if child.text_content()
        )
        return " ".join(part for part in parts if part)

    def root(self) -> "DOMNode":
        """The root of the snapshot this node belongs to."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["DOMNode"]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "DOMNode") -> bool:
        """True when ``other`` is in this node's subtree (self excluded)."""
        return any(anc is self for anc in other.ancestors())

    def child_index_by_tag(self) -> int:
        """1-based index of this node among same-tag siblings.

        This is the index recorded in absolute raw XPaths, e.g. the ``2`` in
        ``/html[1]/body[1]/div[2]``.  The root has index 1.
        """
        if self.parent is None:
            return 1
        index = 0
        for sibling in self.parent.children:
            if sibling.tag == self.tag:
                index += 1
            if sibling is self:
                return index
        raise ValueError("node is not among its parent's children")

    def get(self, attr: str, default: str = "") -> str:
        """Attribute lookup with a default, mirroring ``dict.get``."""
        return self.attrs.get(attr, default)

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def structural_key(self) -> tuple:
        """A hashable key capturing the whole subtree's structure.

        Two snapshots with equal structural keys render identically; the
        recorder uses this to share snapshot objects across consecutive
        non-mutating actions.
        """
        return (
            self.tag,
            tuple(sorted(self.attrs.items())),
            self.text,
            tuple(child.structural_key() for child in self.children),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = "".join(f' {k}="{v}"' for k, v in sorted(self.attrs.items()))
        return f"<{self.tag}{attrs} children={len(self.children)}>"
