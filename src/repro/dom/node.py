"""DOM tree model.

A *DOM snapshot* is an immutable tree of :class:`DOMNode` objects.  The
virtual browser produces a fresh snapshot for every page transition, so a
recorded *DOM trace* is simply a list of root nodes.  Snapshots are frozen
after construction: the synthesizer may safely cache selector resolutions
keyed by root identity.

Identity conventions
--------------------
Within one snapshot, a node is identified by its Python object; across
snapshots, nodes are compared by their *raw path* (absolute child-axis
XPath with per-tag sibling indices), which is how the paper's front end
records actions.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional


class DOMNode:
    """One element of a DOM snapshot.

    Parameters
    ----------
    tag:
        Lower-case HTML tag name (``div``, ``span``, ...).
    attrs:
        Attribute mapping.  ``class``, ``id`` and ``name`` are the ones the
        selector search exploits, but any key is allowed.
    text:
        Text owned directly by this element (children contribute to
        :meth:`text_content` but not to :attr:`text`).
    children:
        Child elements in document order.
    """

    __slots__ = (
        "tag",
        "attrs",
        "text",
        "children",
        "parent",
        "_frozen",
        "_resolve_cache",
        "_snapshot_index",
        "_content_key",
    )

    def __init__(
        self,
        tag: str,
        attrs: Optional[dict[str, str]] = None,
        text: str = "",
        children: Optional[list["DOMNode"]] = None,
    ) -> None:
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}
        self.text = text
        self.children: list[DOMNode] = list(children) if children else []
        self.parent: Optional[DOMNode] = None
        self._frozen = False
        # Selector-resolution memo, populated lazily on root nodes only.
        # Snapshots are immutable once frozen, so caching is sound.
        self._resolve_cache: Optional[dict] = None
        # Per-snapshot DOM index (repro.engine.index), same discipline.
        self._snapshot_index = None
        # Memoized structural content digest (see content_key).
        self._content_key: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: "DOMNode") -> "DOMNode":
        """Add ``child`` as the last child.  Only allowed before freezing."""
        if self._frozen:
            raise ValueError("cannot mutate a frozen DOM snapshot")
        self.children.append(child)
        return child

    def freeze(self) -> "DOMNode":
        """Set parent pointers recursively and mark the subtree immutable.

        Returns ``self`` so builders can freeze in one expression.
        """
        for child in self.children:
            child.parent = self
            child.freeze()
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has run on this subtree."""
        return self._frozen

    def clone(self) -> "DOMNode":
        """Deep-copy this subtree.  The copy is *not* frozen.

        The virtual browser clones the current snapshot, applies a mutation
        (e.g. filling an input field), then freezes the result as the next
        snapshot.
        """
        return DOMNode(
            self.tag,
            dict(self.attrs),
            self.text,
            [child.clone() for child in self.children],
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["DOMNode"]:
        """Yield this node and every descendant in document order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def iter_descendants(self) -> Iterator["DOMNode"]:
        """Yield every proper descendant in document order (self excluded)."""
        for child in self.children:
            yield from child.iter_subtree()

    def text_content(self) -> str:
        """All text in the subtree, concatenated in document order."""
        parts = [self.text] if self.text else []
        parts.extend(
            child.text_content() for child in self.children if child.text_content()
        )
        return " ".join(part for part in parts if part)

    def root(self) -> "DOMNode":
        """The root of the snapshot this node belongs to."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["DOMNode"]:
        """Yield parent, grandparent, ... up to and including the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "DOMNode") -> bool:
        """True when ``other`` is in this node's subtree (self excluded)."""
        return any(anc is self for anc in other.ancestors())

    def child_index_by_tag(self) -> int:
        """1-based index of this node among same-tag siblings.

        This is the index recorded in absolute raw XPaths, e.g. the ``2`` in
        ``/html[1]/body[1]/div[2]``.  The root has index 1.
        """
        if self.parent is None:
            return 1
        index = 0
        for sibling in self.parent.children:
            if sibling.tag == self.tag:
                index += 1
            if sibling is self:
                return index
        raise ValueError("node is not among its parent's children")

    def get(self, attr: str, default: str = "") -> str:
        """Attribute lookup with a default, mirroring ``dict.get``."""
        return self.attrs.get(attr, default)

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def content_key(self) -> int:
        """A 128-bit structural content digest of the whole subtree.

        Two subtrees have equal content keys exactly when they render
        identically (collisions are cryptographically negligible), and —
        unlike Python ``hash`` values or :meth:`structural_key` tuples —
        the key is *stable across processes and restarts*: it depends
        only on tags, attributes, text, and child order, never on object
        ids or the interpreter's hash seed.  The execution cache keys
        DOM windows with these digests, which is what lets memoized
        executions survive process boundaries (see
        :mod:`repro.engine.keys`).

        Keys are memoized on frozen nodes (one post-order walk, ever);
        unfrozen subtrees are hashed afresh per call since they may
        still mutate.
        """
        cached = self._content_key
        if cached is not None:
            return cached
        digests: dict[int, int] = {}
        stack: list[tuple["DOMNode", bool]] = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if not ready:
                cached = node._content_key
                if cached is not None:
                    digests[id(node)] = cached
                    continue
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
                continue
            hasher = hashlib.blake2b(digest_size=16)
            parts = [node.tag, node.text]
            for name in sorted(node.attrs):
                parts.append(name)
                parts.append(node.attrs[name])
            for part in parts:
                raw = part.encode("utf-8", "surrogatepass")
                hasher.update(b"%d:" % len(raw))
                hasher.update(raw)
            hasher.update(b"|%d|" % len(node.children))
            for child in node.children:
                hasher.update(digests[id(child)].to_bytes(16, "big"))
            digest = int.from_bytes(hasher.digest(), "big")
            digests[id(node)] = digest
            if node._frozen:
                node._content_key = digest
        return digests[id(self)]

    def structural_key(self) -> tuple:
        """A hashable key capturing the whole subtree's structure.

        Two snapshots with equal structural keys render identically; the
        recorder uses this to share snapshot objects across consecutive
        non-mutating actions.
        """
        return (
            self.tag,
            tuple(sorted(self.attrs.items())),
            self.text,
            tuple(child.structural_key() for child in self.children),
        )

    # ------------------------------------------------------------------
    # Pickling (service API payloads, multi-process workers)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle only the tree itself, never the per-process caches.

        The resolve memo and snapshot index are keyed by object ids of
        *this* process — restoring them in another process would alias
        recycled ids.  Parent pointers are re-derived on restore, which
        also keeps the pickle free of reference cycles.
        """
        return (self.tag, self.attrs, self.text, self.children, self._frozen)

    def __setstate__(self, state) -> None:
        self.tag, self.attrs, self.text, self.children, frozen = state
        self.parent = None
        self._resolve_cache = None
        self._snapshot_index = None
        self._content_key = None
        self._frozen = False
        if frozen:
            # children restored their own subtrees already; re-link and
            # mark without re-walking (freeze() would recurse needlessly)
            for child in self.children:
                child.parent = self
            self._frozen = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = "".join(f' {k}="{v}"' for k, v in sorted(self.attrs.items()))
        return f"<{self.tag}{attrs} children={len(self.children)}>"
