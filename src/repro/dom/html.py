"""Parsing HTML text into DOM snapshots.

Lets virtual sites (and tests) be written as markup instead of nested
:func:`~repro.dom.builder.E` calls::

    from repro.dom.html import parse_html

    snapshot = parse_html(\"\"\"
        <html><body>
          <div class="card"><h3>Store One</h3></div>
          <div class="card"><h3>Store Two</h3></div>
        </body></html>
    \"\"\")

Built on :class:`html.parser.HTMLParser` from the standard library.
Void elements (``<br>``, ``<input>``, ...) need no closing tag; text is
attached to its enclosing element; comments, doctypes and processing
instructions are ignored.  The result is a single frozen root element.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import Optional

from repro.dom.node import DOMNode
from repro.util.errors import ParseError

#: Elements that never have children or closing tags (HTML5 void set).
VOID_ELEMENTS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)


class _TreeBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.roots: list[DOMNode] = []
        self._stack: list[DOMNode] = []

    # ------------------------------------------------------------------
    def _attach(self, node: DOMNode) -> None:
        if self._stack:
            self._stack[-1].append(node)
        else:
            self.roots.append(node)

    def handle_starttag(self, tag: str, attrs) -> None:
        attributes = {name: (value if value is not None else "") for name, value in attrs}
        node = DOMNode(tag.lower(), attributes)
        self._attach(node)
        if tag.lower() not in VOID_ELEMENTS:
            self._stack.append(node)

    def handle_startendtag(self, tag: str, attrs) -> None:
        attributes = {name: (value if value is not None else "") for name, value in attrs}
        self._attach(DOMNode(tag.lower(), attributes))

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_ELEMENTS:
            return
        if not self._stack:
            raise ParseError(f"closing </{tag}> with no open element")
        open_tags = [node.tag for node in self._stack]
        if tag not in open_tags:
            raise ParseError(f"closing </{tag}> but open elements are {open_tags}")
        # pop implicitly-closed elements (forgiving, browser-like)
        while self._stack:
            node = self._stack.pop()
            if node.tag == tag:
                return

    def handle_data(self, data: str) -> None:
        text = data.strip()
        if not text:
            return
        if not self._stack:
            raise ParseError(f"text {text!r} outside any element")
        owner = self._stack[-1]
        owner.text = f"{owner.text} {text}".strip() if owner.text else text


def parse_html(markup: str) -> DOMNode:
    """Parse markup into a single frozen root element.

    Raises :class:`ParseError` on text outside elements, stray closing
    tags, unclosed elements, or zero/multiple roots.
    """
    builder = _TreeBuilder()
    try:
        builder.feed(markup)
        builder.close()
    except ParseError:
        raise
    except Exception as exc:  # HTMLParser raises assorted errors
        raise ParseError(f"malformed HTML: {exc}") from exc
    if builder._stack:
        raise ParseError(
            f"unclosed elements: {[node.tag for node in builder._stack]}"
        )
    if len(builder.roots) != 1:
        raise ParseError(f"expected exactly one root element, got {len(builder.roots)}")
    return builder.roots[0].freeze()


def parse_fragment(markup: str) -> list[DOMNode]:
    """Parse markup that may have several top-level elements (unfrozen)."""
    builder = _TreeBuilder()
    try:
        builder.feed(markup)
        builder.close()
    except ParseError:
        raise
    except Exception as exc:
        raise ParseError(f"malformed HTML: {exc}") from exc
    if builder._stack:
        raise ParseError(
            f"unclosed elements: {[node.tag for node in builder._stack]}"
        )
    return builder.roots
