"""Concrete selectors: the XPath subset of the paper (ρ in §3.2).

A concrete selector is a sequence of *steps*.  Each step selects, from the
current context node, either the *i*-th matching child (``child`` axis,
rendered ``/φ[i]``) or the *i*-th matching descendant in document order
(``desc`` axis, rendered ``//φ[i]``).  A predicate φ is an HTML tag,
optionally refined by a single attribute equality (``t[@τ='s']``).

Selectors resolve from the *document*, a virtual parent of the snapshot
root, so the absolute path of the root itself is ``/html[1]`` (matching how
browsers record absolute XPaths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.dom.node import DOMNode
from repro.util.errors import ParseError

CHILD = "child"
DESC = "desc"

#: Sentinel distinguishing "cached None" from "not cached" in resolve().
_CACHE_MISS = object()

#: Attributes the selector machinery is willing to use in predicates.
SELECTOR_ATTRIBUTES = ("id", "class", "name")


@dataclass(frozen=True)
class Predicate:
    """A node test: tag name plus optional attribute equality.

    Predicates sit inside every :class:`Step` of every selector the
    synthesizer hashes (cache keys, dedup sets, index buckets), so the
    hash is computed once at construction rather than recursively per
    lookup — the same trick :class:`ConcreteSelector` uses.
    """

    tag: str
    attr: Optional[str] = None
    value: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((type(self).__name__, self.tag, self.attr, self.value))
        )

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return self._hash

    def matches(self, node: DOMNode) -> bool:
        """True when ``node`` satisfies this predicate."""
        if node.tag != self.tag:
            return False
        if self.attr is None:
            return True
        return node.attrs.get(self.attr) == self.value

    def __str__(self) -> str:
        if self.attr is None:
            return self.tag
        return f"{self.tag}[@{self.attr}='{self.value}']"


@dataclass(frozen=True)
class TokenPredicate(Predicate):
    """A whitespace-token node test: ``t[@τ~='s']``.

    Matches when ``s`` occurs among the whitespace-separated tokens of
    the attribute — CSS class semantics.  This is the paper's §7.1
    "disjunctive logics" extension: one token predicate covers both
    ``class="match"`` and ``class="match highlight"`` rows (the b6
    failure case) without a disjunction operator.  Generated only when
    :attr:`repro.synth.config.SynthesisConfig.use_token_predicates` is
    enabled.
    """

    def matches(self, node: DOMNode) -> bool:
        if node.tag != self.tag or self.attr is None:
            return False
        return self.value in node.attrs.get(self.attr, "").split()

    def __hash__(self) -> int:  # pragma: no cover - trivial
        # re-declared: @dataclass would otherwise regenerate __hash__
        # for the subclass, discarding the cached one
        return self._hash

    def __str__(self) -> str:
        return f"{self.tag}[@{self.attr}~='{self.value}']"


@dataclass(frozen=True)
class Step:
    """One selector step: axis, predicate, and a 1-based match index."""

    axis: str
    pred: Predicate
    index: int

    def __post_init__(self) -> None:
        if self.axis not in (CHILD, DESC):
            raise ValueError(f"unknown axis {self.axis!r}")
        if self.index < 1:
            raise ValueError("step indices are 1-based")
        # steps are shared across the selectors built from them; caching
        # the hash keeps selector hashing from recursing into predicates
        object.__setattr__(self, "_hash", hash((self.axis, self.pred, self.index)))

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return self._hash

    def __str__(self) -> str:
        sep = "/" if self.axis == CHILD else "//"
        return f"{sep}{self.pred}[{self.index}]"


@dataclass(frozen=True)
class ConcreteSelector:
    """A concrete selector ρ: a step sequence resolved from the document.

    Selectors are used as cache keys throughout the synthesizer, so the
    hash is computed once at construction instead of recursively on every
    lookup.
    """

    steps: tuple[Step, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.steps))

    def __hash__(self) -> int:  # pragma: no cover - trivial
        return self._hash

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps) if self.steps else "/"

    def __len__(self) -> int:
        return len(self.steps)

    def child(self, pred: Predicate, index: int) -> "ConcreteSelector":
        """Extend with a child-axis step."""
        return ConcreteSelector(self.steps + (Step(CHILD, pred, index),))

    def desc(self, pred: Predicate, index: int) -> "ConcreteSelector":
        """Extend with a descendant-axis step."""
        return ConcreteSelector(self.steps + (Step(DESC, pred, index),))

    def concat(self, suffix: Iterable[Step]) -> "ConcreteSelector":
        """Extend with an arbitrary step sequence."""
        return ConcreteSelector(self.steps + tuple(suffix))


#: The empty selector ε (denotes the document itself).
EPSILON = ConcreteSelector(())


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def _candidates(root: DOMNode, current: Optional[DOMNode], axis: str) -> Iterator[DOMNode]:
    """Nodes reachable from ``current`` along ``axis``.

    ``current is None`` encodes the virtual document: its only child is the
    snapshot root and its descendants are the entire tree.
    """
    if axis == CHILD:
        if current is None:
            yield root
        else:
            yield from current.children
    else:
        if current is None:
            yield from root.iter_subtree()
        else:
            yield from current.iter_descendants()


#: Lazily bound accessors for the per-snapshot index (avoids importing
#: :mod:`repro.engine.index` — which imports this module — at load time).
_index_for = None
_UNSUPPORTED = None


def _snapshot_index(root: DOMNode):
    global _index_for, _UNSUPPORTED
    if _index_for is None:
        from repro.engine.index import UNSUPPORTED, index_for

        _index_for = index_for
        _UNSUPPORTED = UNSUPPORTED
    return _index_for(root)


def _apply_step(root: DOMNode, current: Optional[DOMNode], step: Step) -> Optional[DOMNode]:
    if step.axis == DESC:
        index = _snapshot_index(root)
        if index is not None:
            found = index.nth(step.pred, step.index, current)
            if found is not _UNSUPPORTED:
                return found
    remaining = step.index
    for node in _candidates(root, current, step.axis):
        if step.pred.matches(node):
            remaining -= 1
            if remaining == 0:
                return node
    return None


def resolve(selector: ConcreteSelector, root: DOMNode) -> Optional[DOMNode]:
    """Resolve ``selector`` against the snapshot rooted at ``root``.

    Returns the selected node, or ``None`` if any step has no *i*-th match.
    Resolving the empty selector yields the root (the document's single
    element child), which keeps ``valid(ε, π)`` total.

    Results are memoised on frozen roots: snapshots are immutable, and the
    synthesizer resolves the same selectors against the same snapshots many
    times during validation.
    """
    if not selector.steps:
        return root
    cache = root._resolve_cache
    if cache is None and root.frozen:
        cache = root._resolve_cache = {}
    if cache is not None:
        hit = cache.get(selector, _CACHE_MISS)
        if hit is not _CACHE_MISS:
            return hit
    current: Optional[DOMNode] = None
    for step in selector.steps:
        current = _apply_step(root, current, step)
        if current is None:
            break
    if cache is not None:
        cache[selector] = current
    return current


def resolve_relative(steps: Iterable[Step], base: DOMNode) -> Optional[DOMNode]:
    """Resolve a step sequence starting from an existing node."""
    current: Optional[DOMNode] = base
    root = base.root()
    for step in steps:
        current = _apply_step(root, current, step)
        if current is None:
            return None
    return current


def valid(selector: ConcreteSelector, root: DOMNode) -> bool:
    """The paper's ``valid(ρ, π)``: does ρ denote a node in π?"""
    return resolve(selector, root) is not None


# ----------------------------------------------------------------------
# Raw paths and match indices
# ----------------------------------------------------------------------
def raw_path(node: DOMNode) -> ConcreteSelector:
    """The absolute child-axis XPath of ``node`` (what the recorder emits).

    Example: ``/html[1]/body[1]/div[2]/h3[1]``.  Indices count same-tag
    siblings only, matching browser DevTools conventions.
    """
    chain: list[DOMNode] = [node]
    chain.extend(node.ancestors())
    chain.reverse()
    steps = tuple(
        Step(CHILD, Predicate(item.tag), item.child_index_by_tag()) for item in chain
    )
    return ConcreteSelector(steps)


def predicate_family(node: DOMNode, token_predicates: bool = False) -> list[Predicate]:
    """The bucket-indexed predicates ``node`` satisfies, in search order.

    This is the single source of truth for which predicates the selector
    search generates for a node *and* which buckets the snapshot index
    files it under: attribute equalities over :data:`SELECTOR_ATTRIBUTES`
    (truthy values only, so every entry has a bucket), then optional
    whitespace-token ``class`` predicates, then the bare tag test.  Both
    :func:`repro.synth.alternatives.node_predicates` and
    :meth:`repro.engine.index.SnapshotIndex.predicates_of` delegate here,
    which is what keeps index-backed and ancestor-walk enumeration
    aligned predicate-for-predicate.
    """
    preds: list[Predicate] = [
        Predicate(node.tag, attr, node.attrs[attr])
        for attr in SELECTOR_ATTRIBUTES
        if node.attrs.get(attr)
    ]
    if token_predicates:
        preds.extend(
            TokenPredicate(node.tag, "class", token)
            for token in node.attrs.get("class", "").split()
        )
    preds.append(Predicate(node.tag))
    return preds


def index_among_children(node: DOMNode, pred: Predicate) -> Optional[int]:
    """1-based index of ``node`` among its parent's children matching ``pred``.

    For the snapshot root the "parent" is the virtual document, whose only
    child is the root itself.  Returns ``None`` when the predicate does not
    match ``node``.
    """
    if not pred.matches(node):
        return None
    siblings = node.parent.children if node.parent is not None else [node]
    index = 0
    for sibling in siblings:
        if pred.matches(sibling):
            index += 1
        if sibling is node:
            return index
    return None


def index_among_descendants(
    anchor: Optional[DOMNode], node: DOMNode, pred: Predicate, root: DOMNode
) -> Optional[int]:
    """1-based index of ``node`` among ``anchor``'s matching descendants.

    ``anchor is None`` means the virtual document (all nodes in the
    snapshot count as descendants).  Returns ``None`` if ``node`` is not a
    matching descendant of ``anchor``.
    """
    if not pred.matches(node):
        return None
    snapshot_index = _snapshot_index(root)
    if snapshot_index is not None:
        rank = snapshot_index.rank(pred, node, anchor)
        if rank is not _UNSUPPORTED:
            return rank
    pool = root.iter_subtree() if anchor is None else anchor.iter_descendants()
    index = 0
    for candidate in pool:
        if pred.matches(candidate):
            index += 1
        if candidate is node:
            return index
    return None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def parse_selector(text: str) -> ConcreteSelector:
    """Parse a selector string such as ``/html[1]//div[@class='a'][2]``.

    Indices are optional and default to 1; attribute values use single
    quotes and may not contain quotes themselves.
    """
    text = text.strip()
    if text in ("", "/"):
        return EPSILON
    steps: list[Step] = []
    pos = 0
    length = len(text)
    while pos < length:
        if text.startswith("//", pos):
            axis, pos = DESC, pos + 2
        elif text.startswith("/", pos):
            axis, pos = CHILD, pos + 1
        else:
            raise ParseError(f"expected '/' at position {pos} in {text!r}")
        end = pos
        while end < length and text[end] not in "/[":
            end += 1
        tag = text[pos:end]
        if not tag:
            raise ParseError(f"missing tag name at position {pos} in {text!r}")
        pos = end
        attr = value = None
        token = False
        index = 1
        while pos < length and text[pos] == "[":
            close = text.find("]", pos)
            if close == -1:
                raise ParseError(f"unclosed '[' in {text!r}")
            body = text[pos + 1 : close]
            if body.startswith("@"):
                if "=" not in body:
                    raise ParseError(f"malformed attribute predicate {body!r}")
                attr, raw_value = body[1:].split("=", 1)
                token = attr.endswith("~")
                attr = attr.rstrip("~")
                value = raw_value.strip().strip("'\"")
            else:
                try:
                    index = int(body)
                except ValueError as exc:
                    raise ParseError(f"bad index {body!r} in {text!r}") from exc
            pos = close + 1
        pred_type = TokenPredicate if (attr is not None and token) else Predicate
        steps.append(Step(axis, pred_type(tag, attr, value), index))
    return ConcreteSelector(tuple(steps))
