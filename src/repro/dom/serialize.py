"""Rendering DOM snapshots as indented HTML-like text (debugging aid)."""

from __future__ import annotations

from repro.dom.node import DOMNode


def to_html(node: DOMNode, indent: int = 0) -> str:
    """Pretty-print a subtree as indented pseudo-HTML."""
    pad = "  " * indent
    attrs = "".join(f' {key}="{value}"' for key, value in sorted(node.attrs.items()))
    if not node.children and not node.text:
        return f"{pad}<{node.tag}{attrs}/>"
    lines = [f"{pad}<{node.tag}{attrs}>"]
    if node.text:
        lines.append(f"{pad}  {node.text}")
    lines.extend(to_html(child, indent + 1) for child in node.children)
    lines.append(f"{pad}</{node.tag}>")
    return "\n".join(lines)


def snapshot_digest(node: DOMNode) -> int:
    """A stable hash of the snapshot structure (used in trace summaries)."""
    return hash(node.structural_key())
