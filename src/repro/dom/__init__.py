"""DOM substrate: snapshot trees and the concrete-selector XPath subset."""

from repro.dom.node import DOMNode
from repro.dom.builder import E, page
from repro.dom.html import parse_fragment, parse_html
from repro.dom.xpath import (
    CHILD,
    DESC,
    EPSILON,
    SELECTOR_ATTRIBUTES,
    ConcreteSelector,
    Predicate,
    Step,
    TokenPredicate,
    index_among_children,
    index_among_descendants,
    parse_selector,
    raw_path,
    resolve,
    resolve_relative,
    valid,
)
from repro.dom.serialize import snapshot_digest, to_html

__all__ = [
    "DOMNode",
    "E",
    "page",
    "parse_fragment",
    "parse_html",
    "TokenPredicate",
    "CHILD",
    "DESC",
    "EPSILON",
    "SELECTOR_ATTRIBUTES",
    "ConcreteSelector",
    "Predicate",
    "Step",
    "index_among_children",
    "index_among_descendants",
    "parse_selector",
    "raw_path",
    "resolve",
    "resolve_relative",
    "valid",
    "snapshot_digest",
    "to_html",
]
