"""Deterministic pseudo-randomness for synthetic site content.

Python's built-in ``hash`` is salted per process, so synthetic sites seed
a tiny LCG from CRC32 instead — page content is then stable across runs,
machines, and processes, which keeps recorded traces and experiment
numbers reproducible.
"""

from __future__ import annotations

import zlib
from typing import Sequence, TypeVar, Union

T = TypeVar("T")

_MULTIPLIER = 6364136223846793005
_INCREMENT = 1442695040888963407
_MASK = (1 << 64) - 1


class DetRng:
    """A 64-bit LCG with string-or-int seeding."""

    def __init__(self, seed: Union[str, int]) -> None:
        if isinstance(seed, str):
            seed = zlib.crc32(seed.encode("utf-8"))
        self._state = (seed * _MULTIPLIER + _INCREMENT) & _MASK

    def next_u32(self) -> int:
        """The next raw 32-bit value."""
        self._state = (self._state * _MULTIPLIER + _INCREMENT) & _MASK
        return self._state >> 32

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive)."""
        if high < low:
            raise ValueError("empty range")
        return low + self.next_u32() % (high - low + 1)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ValueError("empty sequence")
        return items[self.next_u32() % len(items)]

    def sample_words(self, words: Sequence[str], count: int) -> list[str]:
        """``count`` words drawn with replacement."""
        return [self.choice(words) for _ in range(count)]
