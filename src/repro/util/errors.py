"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses signal which
subsystem failed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SelectorError(ReproError):
    """A concrete selector failed to resolve against a DOM."""


class DataPathError(ReproError):
    """A value path failed to resolve against the input data source."""


class ParseError(ReproError):
    """A DSL program or selector string could not be parsed."""


class ReplayError(ReproError):
    """Real (side-effectful) execution of a program failed."""


class SynthesisError(ReproError):
    """The synthesizer was invoked with an ill-formed problem."""


class ExportError(ReproError):
    """A program could not be exported as an external script."""


class CheckError(ReproError):
    """A program failed static well-formedness checking."""
