"""Timing helpers used by the synthesizer and the experiment harnesses."""

from __future__ import annotations

import time


class Stopwatch:
    """Measures wall-clock time in seconds.

    >>> sw = Stopwatch()
    >>> sw.elapsed() >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        """Reset the start point to now."""
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds elapsed since construction or the last :meth:`restart`."""
        return time.perf_counter() - self._start


class Deadline:
    """A soft deadline: cheap ``expired()`` checks against a time budget.

    A budget of ``None`` means "never expires", which keeps call sites free
    of conditionals.
    """

    def __init__(self, budget_seconds: float | None) -> None:
        self._budget = budget_seconds
        self._start = time.perf_counter()

    @property
    def budget(self) -> float | None:
        """The configured budget in seconds (``None`` = unlimited)."""
        return self._budget

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` when unlimited)."""
        if self._budget is None:
            return float("inf")
        return self._budget - self.elapsed()

    def expired(self) -> bool:
        """True once the budget has been consumed."""
        return self.remaining() <= 0.0
