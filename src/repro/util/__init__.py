"""Shared utilities: error types, deterministic timers, small helpers."""

from repro.util.errors import (
    ReproError,
    SelectorError,
    DataPathError,
    ParseError,
    ReplayError,
    SynthesisError,
)
from repro.util.timer import Stopwatch, Deadline

__all__ = [
    "ReproError",
    "SelectorError",
    "DataPathError",
    "ParseError",
    "ReplayError",
    "SynthesisError",
    "Stopwatch",
    "Deadline",
]
