"""``repro loadtest``: concurrent protocol sessions against a live fleet.

The harness answers the deployment question the single-process
benchmarks cannot: with a cache tier between workers, what do
interactive per-action latencies look like under concurrency, and does
an execution demonstrated on one worker actually warm-start every
other?

Shape of a run (two waves, the fleet's end-to-end contract):

1. *seed wave* — N sessions replay suite demonstrations against the
   **first** worker, populating the cache tier through its remote
   backend as each session closes;
2. *warm wave* — N fresh sessions replay the same demonstrations
   against the **remaining** workers, whose only connection to the seed
   worker is the cache server.  Their warm-start rate is therefore the
   remote tier's hit rate, measured from each worker's own
   ``/v1/stats`` totals (Δ ``warm_start_hits`` / Δ lookups).

Every ``record_action`` round trip is timestamped into a latency
trajectory; the report carries p50/p95/p99, throughput, the warm rate,
pool reuse counts, and — unless verification is disabled — a
``verified`` flag asserting the fleet's candidate programs are
byte-identical to an in-process :class:`SessionManager` replaying the
same demonstrations.  ``write_report`` emits the ``BENCH_*.json``
trajectory consumed by CI's ``fleet-smoke`` job and the perf-smoke
benchmarks.

Without ``--fleet`` the CLI spawns its own: one ``repro cache-serve``
process and one ``repro serve --workers N --backend remote://...``
process group (:class:`FleetHarness`), torn down afterwards.
"""

from __future__ import annotations

import json
import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Demonstrations replayed by default (fast suite members).
DEFAULT_SUBJECTS = ("b1", "b4")

#: ``--quick`` preset: one subject, two sessions per wave.
QUICK_SUBJECTS = ("b1",)

#: Both the service and the cache server announce this on stdout.  The
#: pattern is matched per occurrence, not per line: forked workers share
#: one stdout pipe, so two banners can interleave onto a single line.
_BANNER = re.compile(r"listening on (http://[\w.\-]+:\d+)")

#: Trajectory points kept in the JSON report (the run keeps them all).
_TRAJECTORY_CAP = 5000


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by nearest-rank on a sorted copy."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


# ----------------------------------------------------------------------
# Spawning a fleet
# ----------------------------------------------------------------------
class FleetHarness:
    """Spawn (and tear down) a cache server plus an N-worker service.

    Context manager: on entry two ``python -m repro`` subprocesses come
    up — ``cache-serve`` first, then ``serve --workers N --backend
    remote://<cache>`` — and their stdout banners are parsed for the
    bound URLs (``port 0`` everywhere, so parallel harnesses never
    collide).  On exit both process groups get SIGINT (the service's
    graceful path: sessions close, caches flush) with a kill fallback.
    """

    def __init__(
        self,
        workers: int = 2,
        store_dir: Optional[str] = None,
        synth_timeout: float = 10.0,
        boot_timeout: float = 60.0,
    ) -> None:
        self.workers = max(1, workers)
        self.store_dir = store_dir
        self.synth_timeout = synth_timeout
        self.boot_timeout = boot_timeout
        self.cache_url: Optional[str] = None
        self.worker_urls: list[str] = []
        self._procs: list[subprocess.Popen] = []
        self._tmp = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "FleetHarness":
        import tempfile

        import repro

        if self.store_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            self.store_dir = self._tmp.name
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        try:
            cache = self._spawn(
                [
                    "cache-serve",
                    "--host", "127.0.0.1",
                    "--port", "0",
                    "--cache-dir", self.store_dir,
                ],
                env,
            )
            self.cache_url = self._await_banners(cache, 1)[0]
            service = self._spawn(
                [
                    "serve",
                    "--host", "127.0.0.1",
                    "--port", "0",
                    "--workers", str(self.workers),
                    "--backend", "remote://" + self.cache_url.split("//", 1)[1],
                    "--timeout", str(self.synth_timeout),
                ],
                env,
            )
            self.worker_urls = self._await_banners(service, self.workers)
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        for proc, _lines in self._procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGINT)
                except OSError:  # pragma: no cover - already gone
                    pass
        for proc, _lines in self._procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang path
                proc.kill()
                proc.wait(timeout=15)
        self._procs.clear()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    # ------------------------------------------------------------------
    def _spawn(self, args: list[str], env: dict):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
            bufsize=1,
        )
        lines: "queue.Queue[Optional[str]]" = queue.Queue()

        def drain() -> None:
            for line in proc.stdout:
                lines.put(line.rstrip("\n"))
            lines.put(None)

        threading.Thread(target=drain, daemon=True).start()
        handle = (proc, lines)
        self._procs.append(handle)
        return handle

    def _await_banners(self, handle, count: int) -> list[str]:
        proc, lines = handle
        urls: list[str] = []
        deadline = time.monotonic() + self.boot_timeout
        while len(urls) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RuntimeError(
                    f"fleet process announced {len(urls)}/{count} URLs "
                    f"within {self.boot_timeout}s"
                )
            try:
                line = lines.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise RuntimeError(
                    f"fleet process exited during boot (rc={proc.poll()})"
                )
            urls.extend(_BANNER.findall(line))
        return urls


# ----------------------------------------------------------------------
# Driving sessions
# ----------------------------------------------------------------------
@dataclass
class SessionOutcome:
    """One replayed demonstration: where it ran and what it produced."""

    subject: str
    worker: str
    programs: tuple[str, ...] = ()
    error: Optional[str] = None


@dataclass
class LoadReport:
    """Everything one load run measured."""

    workers: list[str]
    cache_url: Optional[str]
    subjects: list[str]
    sessions: int
    calls: int
    errors: list[str]
    elapsed_s: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    warm_rate: float
    verified: Optional[bool]
    pool: dict
    per_worker: list[dict]
    trajectory: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "bench": "fleet_load",
            "workers": self.workers,
            "cache_url": self.cache_url,
            "subjects": self.subjects,
            "sessions": self.sessions,
            "calls": self.calls,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "warm_rate": round(self.warm_rate, 4),
            "verified": self.verified,
            "pool": self.pool,
            "per_worker": self.per_worker,
            "trajectory": self.trajectory[:_TRAJECTORY_CAP],
        }


def _drive_session(
    url: str, subject: str, recording, t0: float, samples: list, lock
) -> SessionOutcome:
    """Replay one demonstration over HTTP; collect per-action latencies."""
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(url)
    try:
        sid = client.create_session(recording.snapshots[0])
        for position, action in enumerate(recording.actions):
            started = time.perf_counter()
            client.record_action(sid, action, recording.snapshots[position + 1])
            finished = time.perf_counter()
            with lock:
                samples.append((started - t0, finished - started))
        listed = client.candidates(sid)
        programs = tuple(candidate.program for candidate in listed.candidates)
        client.close_session(sid)
        return SessionOutcome(subject=subject, worker=url, programs=programs)
    except (ServiceClientError, OSError) as exc:
        return SessionOutcome(
            subject=subject,
            worker=url,
            error=f"{subject}@{url}: {type(exc).__name__}: {exc}",
        )


def _run_wave(
    specs: list[tuple[str, str]],
    recordings: dict,
    concurrency: int,
    t0: float,
    samples: list,
    lock,
) -> list[SessionOutcome]:
    """Drive ``(subject, worker_url)`` sessions, ``concurrency`` at a time."""
    tasks: "queue.Queue[tuple[str, str]]" = queue.Queue()
    for spec in specs:
        tasks.put(spec)
    outcomes: list[SessionOutcome] = []

    def worker() -> None:
        while True:
            try:
                subject, url = tasks.get_nowait()
            except queue.Empty:
                return
            outcome = _drive_session(
                url, subject, recordings[subject], t0, samples, lock
            )
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, min(concurrency, len(specs))))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def _worker_totals(urls: Sequence[str]) -> dict[str, int]:
    """Summed warm/miss counters across workers (from ``/v1/stats``)."""
    from repro.service.client import ServiceClient

    warm = miss = 0
    for url in urls:
        with ServiceClient(url) as client:
            totals = client.stats().get("totals", {})
        warm += int(totals.get("warm_start_hits", 0))
        miss += int(totals.get("cache_misses", 0))
    return {"warm": warm, "miss": miss}


def _reference_programs(recordings: dict, timeout: float) -> dict[str, tuple]:
    """Candidate programs from an in-process manager (the ground truth)."""
    from dataclasses import replace

    from repro.service.sessions import SessionManager
    from repro.synth.config import DEFAULT_CONFIG

    manager = SessionManager(
        replace(DEFAULT_CONFIG, cache_backend="memory"), timeout=timeout
    )
    reference: dict[str, tuple] = {}
    for subject, recording in recordings.items():
        sid = manager.create(recording.snapshots[0])
        for position, action in enumerate(recording.actions):
            manager.record_action(sid, action, recording.snapshots[position + 1])
        reference[subject] = tuple(
            candidate.program for candidate in manager.candidates(sid).candidates
        )
        manager.close(sid)
    return reference


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
def run_loadtest(
    worker_urls: Sequence[str],
    subjects: Sequence[str] = DEFAULT_SUBJECTS,
    sessions_per_wave: int = 4,
    concurrency: int = 4,
    timeout: float = 10.0,
    verify: bool = True,
    cache_url: Optional[str] = None,
) -> LoadReport:
    """Two waves of sessions against a running fleet; the measured report.

    ``worker_urls[0]`` seeds the cache tier; the warm wave goes to the
    remaining workers (or back to the only worker, degrading the warm
    metric to a same-process measurement with a one-worker fleet).
    """
    from repro.benchmarks.suite import benchmark_by_id
    from repro.fleet.pool import pool
    from repro.service.client import ServiceClient

    worker_urls = list(worker_urls)
    if not worker_urls:
        raise ValueError("need at least one worker URL")
    recordings = {bid: benchmark_by_id(bid).record() for bid in subjects}
    seed_url = worker_urls[0]
    warm_urls = worker_urls[1:] or worker_urls

    wave_seed = [
        (subjects[i % len(subjects)], seed_url) for i in range(sessions_per_wave)
    ]
    wave_warm = [
        (subjects[i % len(subjects)], warm_urls[i % len(warm_urls)])
        for i in range(sessions_per_wave)
    ]

    pool_before = pool().stats()
    samples: list[tuple[float, float]] = []
    lock = threading.Lock()
    t0 = time.perf_counter()
    outcomes = _run_wave(wave_seed, recordings, concurrency, t0, samples, lock)
    between = _worker_totals(worker_urls)
    outcomes += _run_wave(wave_warm, recordings, concurrency, t0, samples, lock)
    elapsed = time.perf_counter() - t0
    after = _worker_totals(worker_urls)

    warm = after["warm"] - between["warm"]
    miss = after["miss"] - between["miss"]
    warm_rate = warm / (warm + miss) if warm + miss else 0.0

    errors = [outcome.error for outcome in outcomes if outcome.error]
    verified: Optional[bool] = None
    if verify:
        reference = _reference_programs(recordings, timeout)
        verified = not errors and all(
            outcome.programs == reference[outcome.subject]
            for outcome in outcomes
            if outcome.error is None
        )

    per_worker = []
    for url in worker_urls:
        with ServiceClient(url) as client:
            stats = client.stats()
        totals = stats.get("totals", {})
        per_worker.append(
            {
                "url": url,
                "backend": stats.get("backend"),
                "closed_sessions": stats.get("closed_sessions"),
                "warm_start_hits": totals.get("warm_start_hits"),
                "cache_misses": totals.get("cache_misses"),
            }
        )

    pool_after = pool().stats()
    latencies = [latency for _, latency in samples]
    return LoadReport(
        workers=worker_urls,
        cache_url=cache_url,
        subjects=list(subjects),
        sessions=len(outcomes),
        calls=len(samples),
        errors=errors,
        elapsed_s=elapsed,
        throughput_rps=len(samples) / elapsed if elapsed > 0 else 0.0,
        p50_ms=percentile(latencies, 50) * 1000.0,
        p95_ms=percentile(latencies, 95) * 1000.0,
        p99_ms=percentile(latencies, 99) * 1000.0,
        warm_rate=warm_rate,
        verified=verified,
        pool={
            key: pool_after[key] - pool_before.get(key, 0)
            for key in ("created", "reused", "discarded")
        },
        per_worker=per_worker,
        trajectory=[
            {"t": round(moment, 4), "ms": round(latency * 1000.0, 3)}
            for moment, latency in samples[:_TRAJECTORY_CAP]
        ],
    )


def write_report(report: LoadReport, path: str) -> str:
    """Emit the ``BENCH_*.json`` trajectory artifact; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# CLI entry (``repro loadtest``)
# ----------------------------------------------------------------------
def run_cli_loadtest(
    fleet: Optional[str] = None,
    workers: int = 2,
    subjects_spec: Optional[str] = None,
    sessions: Optional[int] = None,
    concurrency: Optional[int] = None,
    timeout: Optional[float] = None,
    quick: bool = False,
    out: str = "BENCH_fleet_load.json",
    max_p99_ms: Optional[float] = None,
    min_warm_rate: Optional[float] = None,
    verify: bool = True,
) -> int:
    """Drive a loadtest (spawning a fleet unless ``--fleet`` names one)."""
    from repro.harness.report import fmt_ms, fmt_pct, render_table

    if subjects_spec:
        subjects = tuple(s.strip() for s in subjects_spec.split(",") if s.strip())
    else:
        subjects = QUICK_SUBJECTS if quick else DEFAULT_SUBJECTS
    sessions = sessions if sessions is not None else (2 if quick else 6)
    concurrency = concurrency if concurrency is not None else (2 if quick else 4)
    timeout = timeout if timeout is not None else 10.0

    if fleet:
        urls = [
            url if "//" in url else f"http://{url}"
            for url in (part.strip() for part in fleet.split(","))
            if url
        ]
        report = run_loadtest(
            urls,
            subjects=subjects,
            sessions_per_wave=sessions,
            concurrency=concurrency,
            timeout=timeout,
            verify=verify,
        )
    else:
        with FleetHarness(workers=workers, synth_timeout=timeout) as harness:
            report = run_loadtest(
                harness.worker_urls,
                subjects=subjects,
                sessions_per_wave=sessions,
                concurrency=concurrency,
                timeout=timeout,
                verify=verify,
                cache_url=harness.cache_url,
            )

    print(
        render_table(
            ("metric", "value"),
            [
                ("workers", len(report.workers)),
                ("sessions", report.sessions),
                ("calls", report.calls),
                ("p50", fmt_ms(report.p50_ms / 1000.0)),
                ("p95", fmt_ms(report.p95_ms / 1000.0)),
                ("p99", fmt_ms(report.p99_ms / 1000.0)),
                ("throughput", f"{report.throughput_rps:.1f} rps"),
                ("remote warm rate", fmt_pct(report.warm_rate)),
                ("pool reuse", report.pool.get("reused", 0)),
                (
                    "verified",
                    "skipped" if report.verified is None else report.verified,
                ),
                ("errors", len(report.errors)),
            ],
        )
    )
    written = write_report(report, out)
    print(f"wrote {written}")

    failures: list[str] = []
    for error in report.errors:
        failures.append(f"session failed: {error}")
    if report.verified is False:
        failures.append("fleet candidates differ from the in-process reference")
    if max_p99_ms is not None and report.p99_ms > max_p99_ms:
        failures.append(f"p99 {report.p99_ms:.1f}ms > bound {max_p99_ms:.1f}ms")
    if min_warm_rate is not None and report.warm_rate < min_warm_rate:
        failures.append(
            f"warm rate {report.warm_rate:.2f} < bound {min_warm_rate:.2f}"
        )
    for failure in failures:
        print(f"loadtest: {failure}", file=sys.stderr)
    return 1 if failures else 0
