"""``remote://host:port``: the execution cache over the fleet cache tier.

:class:`RemoteBackend` implements the
:class:`~repro.service.backends.CacheBackend` seam against a
``repro cache-serve`` process.  The engine's two-phase probe already
runs backend lookups *outside* the shard locks
(:meth:`repro.engine.cache.SharedExecutionCache.probe_backend`), so the
network round trip here never stalls other sessions' in-memory hits.

Resilience discipline — the cache tier is a cache, never a dependency:

* every request goes through the shared keep-alive
  :mod:`~repro.fleet.pool` with a per-request timeout
  (``REPRO_REMOTE_TIMEOUT``, default 1s);
* connection-level failures retry with exponential backoff + jitter,
  bounded by ``REPRO_REMOTE_RETRIES`` (default 1 — both the get and
  the batched put are idempotent: rows are value-addressed, a replayed
  put re-stores identical bytes);
* a circuit breaker trips open after
  ``REPRO_REMOTE_BREAKER_THRESHOLD`` consecutive failures: while open,
  probes return instantly as misses and writes drop, so a dead cache
  server costs nothing but warm starts.  After
  ``REPRO_REMOTE_BREAKER_RESET_S`` one half-open probe is allowed
  through; success re-closes the breaker and the worker re-attaches.

Every failure mode — refused connection, timeout, mid-body disconnect,
garbage bytes, non-200 — degrades to a miss or a dropped write.  The
backend never raises into the engine.

Writes buffer client-side (deduplicated by digest) and flush as one
batched ``POST /v1/cache/put`` every ``flush_every`` distinct keys and
on :meth:`RemoteBackend.flush` (the worker-exit and session-close
paths), so the per-entry wire cost amortizes.  Reads serve the
process's own pending writes directly.

Telemetry: ``repro_remote_requests_total{op,outcome}``,
``repro_remote_retries_total``, ``repro_remote_dropped_writes_total``,
and the ``repro_remote_breaker_state`` gauge (0 closed, 1 half-open,
2 open).
"""

from __future__ import annotations

import os
import random
import threading
import time
from http.client import HTTPException
from typing import Optional
from urllib.parse import urlsplit

from repro.fleet.pool import pool
from repro.obs import metrics as obs_metrics
from repro.protocol.codec import Codec, ProtocolError, resolve_codec, sniff_codec
from repro.service.backends import (
    CONSISTENCY,
    DEFAULT_TIER_COST,
    EXACT,
    CacheBackend,
    StepInterner,
    _tier_cost_from_env,
    entry_from_payload,
    entry_to_payload,
    register_backend_factory,
)

DEFAULT_TIMEOUT = 1.0
DEFAULT_RETRIES = 1
DEFAULT_FLUSH_EVERY = 32
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_RESET_S = 1.0

#: First-retry backoff; doubles per attempt, with 0–100% jitter on top.
BACKOFF_BASE_S = 0.05

#: Breaker states (also the gauge encoding).
CLOSED, HALF_OPEN, OPEN = 0, 1, 2


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class _RemoteMetrics:
    """Lazy handles on the remote backend's registry families."""

    _instance: Optional["_RemoteMetrics"] = None

    def __init__(self) -> None:
        registry = obs_metrics.registry()
        self.requests = registry.counter(
            "repro_remote_requests_total",
            "Cache-tier requests by operation and outcome (ok / error / "
            "skipped — skipped = breaker open).",
            ("op", "outcome"),
        )
        self.retries = registry.counter(
            "repro_remote_retries_total",
            "Cache-tier request retries after connection-level failures.",
        )
        self.dropped = registry.counter(
            "repro_remote_dropped_writes_total",
            "Buffered cache writes dropped because the tier was down.",
        )
        self.breaker = registry.gauge(
            "repro_remote_breaker_state",
            "Circuit-breaker state (0 closed, 1 half-open, 2 open).",
        )

    @classmethod
    def get(cls) -> "_RemoteMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures; open →
    half-open after ``reset_after`` seconds (exactly one probe request
    passes); the probe's outcome closes or re-opens.

    Thread-safe: concurrent sessions share one breaker per backend, so
    one dead cache server trips it once for everybody.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_BREAKER_THRESHOLD,
        reset_after: float = DEFAULT_BREAKER_RESET_S,
        clock=time.monotonic,
    ) -> None:
        self.threshold = max(1, threshold)
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CLOSED
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    def allow(self) -> bool:
        """Whether a request may go out right now."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if (
                self.state == OPEN
                and self._clock() - self._opened_at >= self.reset_after
            ):
                self.state = HALF_OPEN
                self._probing = False
                self._publish_locked()
            if self.state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.failures = 0
            self._probing = False
            self._publish_locked()

    def record_failure(self) -> None:
        with self._lock:
            if self.state == HALF_OPEN:
                self.state = OPEN
                self._opened_at = self._clock()
                self._probing = False
            else:
                self.failures += 1
                if self.state == CLOSED and self.failures >= self.threshold:
                    self.state = OPEN
                    self._opened_at = self._clock()
            self._publish_locked()

    def _publish_locked(self) -> None:
        _RemoteMetrics.get().breaker.set(self.state)


class RemoteBackend(CacheBackend):
    """The ``CacheBackend`` seam over a ``repro cache-serve`` tier."""

    name = "remote"
    persistent = True

    def __init__(
        self,
        url: str,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        flush_every: Optional[int] = None,
        codec: Optional[Codec] = None,
        breaker_threshold: Optional[int] = None,
        breaker_reset_s: Optional[float] = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"remote://{url}")
        if parts.hostname is None:
            raise ValueError(f"bad remote backend URL {url!r}")
        self.url = url
        self.host = parts.hostname
        self.port = parts.port or 8799  # DEFAULT_CACHE_PORT (import cycle)
        self.timeout = (
            _env_float("REPRO_REMOTE_TIMEOUT", DEFAULT_TIMEOUT)
            if timeout is None
            else timeout
        )
        self.retries = max(
            0,
            _env_int("REPRO_REMOTE_RETRIES", DEFAULT_RETRIES)
            if retries is None
            else retries,
        )
        self.flush_every = max(
            1, DEFAULT_FLUSH_EVERY if flush_every is None else flush_every
        )
        self.codec = codec if codec is not None else resolve_codec(default="binary")
        self.breaker = CircuitBreaker(
            threshold=(
                _env_int("REPRO_REMOTE_BREAKER_THRESHOLD", DEFAULT_BREAKER_THRESHOLD)
                if breaker_threshold is None
                else breaker_threshold
            ),
            reset_after=(
                _env_float("REPRO_REMOTE_BREAKER_RESET_S", DEFAULT_BREAKER_RESET_S)
                if breaker_reset_s is None
                else breaker_reset_s
            ),
        )
        # the same fixed tier policy as the file store (minus adaptation:
        # the observed-cost distribution lives with the cache server's
        # store; the client just avoids shipping trivially-recomputable
        # rows over the wire)
        pinned = _tier_cost_from_env()
        self.tier_cost = DEFAULT_TIER_COST if pinned is None else pinned
        self.interner = StepInterner()
        self._lock = threading.Lock()
        #: Write buffer, deduplicated by digest: kind + codec payload.
        self._pending: dict[bytes, tuple[int, dict]] = {}
        #: Last store totals the cache server reported on a put.
        self._remote_entries = 0
        self._remote_bytes = 0
        #: Telemetry (mirrors the FileBackend counter names so
        #: ``/v1/stats`` and ``--stats`` need no special cases).
        self.loads = 0
        self.load_hits = 0
        self.stores = 0
        self.io_errors = 0
        self.encode_errors = 0
        self.dropped_writes = 0
        self.tier_skips = 0

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _post(self, path: str, payload: dict, op: str) -> Optional[dict]:
        """One resilient round trip; ``None`` on any failure (a miss)."""
        metrics = _RemoteMetrics.get()
        if not self.breaker.allow():
            metrics.requests.labels(op=op, outcome="skipped").inc()
            return None
        try:
            body = self.codec.encode_payload(payload)
        except (ProtocolError, TypeError, ValueError):
            self.encode_errors += 1
            return None
        headers = {
            "Content-Type": self.codec.content_type,
            "Accept": self.codec.content_type,
        }
        attempts = self.retries + 1
        shared = pool()
        for attempt in range(attempts):
            connection = shared.acquire(self.host, self.port, timeout=self.timeout)
            try:
                connection.request("POST", path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            # HTTPException covers what a dying server leaves behind:
            # IncompleteRead on a mid-body disconnect, BadStatusLine on
            # garbage where a status line should be
            except (ConnectionError, OSError, HTTPException):
                shared.discard(connection)
                if attempt + 1 < attempts:
                    metrics.retries.inc()
                    time.sleep(
                        BACKOFF_BASE_S * (1 << attempt) * (1.0 + random.random())
                    )
                    continue
                return self._fail(op, "io")
            if response.will_close:
                shared.discard(connection)
            else:
                shared.release(self.host, self.port, connection)
            if response.status != 200:
                return self._fail(op, "status")
            try:
                decoded = sniff_codec(raw).decode_payload(raw)
            except ProtocolError:
                return self._fail(op, "decode")
            if not isinstance(decoded, dict):
                return self._fail(op, "decode")
            self.breaker.record_success()
            metrics.requests.labels(op=op, outcome="ok").inc()
            return decoded
        return None  # pragma: no cover - loop always returns

    def _fail(self, op: str, outcome: str) -> None:
        self.io_errors += 1
        self.breaker.record_failure()
        _RemoteMetrics.get().requests.labels(op=op, outcome=outcome).inc()
        return None

    # ------------------------------------------------------------------
    # The CacheBackend seam
    # ------------------------------------------------------------------
    def load_entry(self, kind: int, key: bytes) -> Optional[tuple]:
        return self.fetch_entry(kind, key)[0]

    def fetch_entry(self, kind: int, key: bytes) -> tuple[Optional[tuple], int]:
        payload = self._get_payload(kind, key)
        if payload is None:
            return None, 0
        try:
            entry = entry_from_payload(payload, self.interner)
        except (KeyError, TypeError, ValueError, IndexError):
            return None, 0  # foreign or corrupt payload: a miss
        self.load_hits += 1
        return entry, 0

    def _get_payload(self, kind: int, key: bytes) -> Optional[dict]:
        self.loads += 1
        with self._lock:
            pending = self._pending.get(key)
        if pending is not None:
            return pending[1]  # our own buffered write: serve locally
        result = self._post(
            "/v1/cache/get", {"k": [[kind, key.hex()]]}, op="get"
        )
        if result is None:
            return None
        entries = result.get("e")
        if not isinstance(entries, list) or not entries:
            return None
        payload = entries[0]
        return payload if isinstance(payload, dict) else None

    def should_persist(self, kind: int, cost: Optional[int]) -> bool:
        if kind != EXACT or self.tier_cost < 0 or cost is None:
            return True
        if cost > self.tier_cost:
            return True
        self.tier_skips += 1
        return False

    def store_entry(
        self, kind, key, actions, env, examined, exact_budget_ok
    ) -> None:
        try:
            payload = entry_to_payload(
                actions, env, examined, exact_budget_ok, self.interner
            )
        except (TypeError, AttributeError, ValueError):
            self.encode_errors += 1
            return
        self._buffer(kind, key, payload)

    def load_consistency(self, key: bytes) -> Optional[int]:
        payload = self._get_payload(CONSISTENCY, key)
        if payload is None or not isinstance(payload.get("v"), int):
            return None
        self.load_hits += 1
        return payload["v"]

    def store_consistency(self, key: bytes, value: int) -> None:
        self._buffer(CONSISTENCY, key, {"v": value})

    # ------------------------------------------------------------------
    def _buffer(self, kind: int, key: bytes, payload: dict) -> None:
        with self._lock:
            self._pending[key] = (kind, payload)
            if len(self._pending) < self.flush_every:
                return
        self.flush()

    def flush(self) -> None:
        """Push the write buffer as one batched put; drop it on failure."""
        with self._lock:
            pending, self._pending = self._pending, {}
        if not pending:
            return
        self.stores += len(pending)
        body = {
            "e": [
                [kind, key.hex(), payload]
                for key, (kind, payload) in pending.items()
            ]
        }
        result = self._post("/v1/cache/put", body, op="put")
        if result is None:
            self.dropped_writes += len(pending)
            _RemoteMetrics.get().dropped.inc(len(pending))
            return
        entries = result.get("entries")
        nbytes = result.get("bytes")
        if isinstance(entries, int):
            self._remote_entries = entries
        if isinstance(nbytes, int):
            self._remote_bytes = nbytes

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------------
    @property
    def persisted_bytes(self) -> int:
        """The cache tier's payload bytes as of the last acknowledged put."""
        return self._remote_bytes

    @property
    def entries(self) -> int:
        with self._lock:
            return self._remote_entries + len(self._pending)


register_backend_factory("remote", RemoteBackend)
