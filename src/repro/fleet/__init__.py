"""Fleet tier: many workers, one networked execution cache.

``repro serve --workers N`` is one machine sharing one SQLite file;
this package is what turns it into a fleet.  Value-addressed cache keys
(:mod:`repro.engine.keys`) make every entry location-independent, so
the pieces here are pure plumbing:

:mod:`repro.fleet.pool`
    A process-wide keep-alive HTTP connection pool, shared by
    :class:`~repro.service.client.ServiceClient` and the remote backend
    — one pooled socket per (host, port) instead of a fresh TCP
    handshake per request.

:mod:`repro.fleet.cache_server`
    ``repro cache-serve`` — the execution cache as a standalone
    ThreadingHTTPServer over the existing
    :class:`~repro.service.backends.FileBackend`, speaking codec-encoded
    payload batches (binary by default, JSON negotiable) on
    ``POST /v1/cache/get`` / ``POST /v1/cache/put``.

:mod:`repro.fleet.remote`
    :class:`~repro.fleet.remote.RemoteBackend` — the ``remote://host:port``
    cache backend: pooled keep-alive requests, per-request timeouts,
    bounded retries with exponential backoff + jitter, and a circuit
    breaker that degrades every failure to a cache miss, never an
    error, so workers stay correct through cache-tier restarts.

:mod:`repro.fleet.rebalance`
    ``repro rebalance`` — a controller that polls worker
    ``/v1/metrics``, computes session-count skew, and drains hot
    workers through the existing migrate-push flow.

:mod:`repro.fleet.metrics`
    Prometheus text-exposition helpers: scrape, parse, and merge many
    workers' dumps into one ``instance``-labeled stream
    (``repro metrics --fleet``).

:mod:`repro.fleet.loadtest`
    ``repro loadtest`` + ``benchmarks/bench_fleet_load.py`` — N
    concurrent protocol sessions replayed against a real fleet,
    reporting p50/p95/p99 latency, throughput, and the remote-warm hit
    rate as a ``BENCH_*.json`` trajectory, with byte-identity asserted
    against the in-process path.

This module stays import-light on purpose: :mod:`repro.service` imports
parts of the fleet lazily (and vice versa), so nothing here may import
the service layer at module import time.
"""
