"""``repro rebalance``: drain hot workers through the migrate-push flow.

Sessions are sticky to the worker that created them; migration
(``POST /v1/sessions/<sid>/migrate`` with a ``target``) already moves
one between real processes with byte-identical subsequent candidates —
but only on demand.  This controller closes the loop: poll every
worker, compute the session-count skew, and push sessions from the
hottest worker to the coldest until the spread is within tolerance.

Load signals come from the worker's own telemetry:

* ``GET /v1/stats`` — the live session count (the move policy keys on
  session counts, the one signal migration directly changes; the
  ``repro_sessions_live`` gauge exports the same number per worker
  process for dashboards);
* ``GET /v1/metrics`` — the per-route latency histogram's
  ``_sum``/``_count`` for ``/v1/sessions/:sid/actions``, reported for
  operators alongside the plan.

Session ids to move come from ``GET /v1/sessions``; the newest ids
drain first (oldest sessions keep their warm engine state in place).
Unreachable workers are skipped — never drained into, never planned
around.  Move failures (a session closed mid-plan, a racing client)
count and continue; the next round re-plans from fresh observations.

Policy: while ``max(sessions) - min(sessions) > skew`` (default 2),
move half the gap from the hottest to the coldest worker.  One-shot by
default; ``repro rebalance --interval S`` loops.

Telemetry: ``repro_rebalance_rounds_total``,
``repro_rebalance_moves_total``, ``repro_rebalance_failures_total``,
``repro_rebalance_skew`` (last observed spread).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.fleet.metrics import parse_samples, sample_value, scrape_text
from repro.obs import metrics as obs_metrics

#: Tolerated session-count spread before moves are planned.
DEFAULT_SKEW = 2

#: The per-route histogram the latency signal reads.
_ACTIONS_ROUTE = "/v1/sessions/:sid/actions"


class _RebalanceMetrics:
    """Lazy handles on the rebalancer's registry families."""

    _instance: Optional["_RebalanceMetrics"] = None

    def __init__(self) -> None:
        registry = obs_metrics.registry()
        self.rounds = registry.counter(
            "repro_rebalance_rounds_total", "Rebalance polling rounds completed."
        )
        self.moves = registry.counter(
            "repro_rebalance_moves_total", "Sessions migrated by the rebalancer."
        )
        self.failures = registry.counter(
            "repro_rebalance_failures_total",
            "Session moves that failed (re-planned next round).",
        )
        self.skew = registry.gauge(
            "repro_rebalance_skew",
            "Last observed session-count spread across reachable workers.",
        )

    @classmethod
    def get(cls) -> "_RebalanceMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


@dataclass(frozen=True)
class WorkerLoad:
    """One worker's observed load."""

    url: str
    sessions: int
    session_ids: tuple[str, ...]
    #: Mean /actions latency in seconds (None before the first request
    #: or when the registry is disabled).
    action_latency_s: Optional[float] = None


@dataclass(frozen=True)
class Move:
    """Drain ``sessions`` from ``source`` to ``target``."""

    source: str
    target: str
    sessions: tuple[str, ...]


@dataclass
class RebalanceRound:
    """What one polling round saw and did."""

    loads: list[WorkerLoad] = field(default_factory=list)
    unreachable: list[str] = field(default_factory=list)
    moves: list[Move] = field(default_factory=list)
    moved: int = 0
    failed: int = 0

    @property
    def skew(self) -> int:
        if len(self.loads) < 2:
            return 0
        counts = [load.sessions for load in self.loads]
        return max(counts) - min(counts)


def scrape_load(url: str, timeout: float = 10.0) -> WorkerLoad:
    """Poll one worker's session gauge, latency, and session ids."""
    from repro.service.client import ServiceClient

    with ServiceClient(url, timeout=timeout) as client:
        session_ids = tuple(client.session_ids())
        sessions = int(client.stats().get("sessions", len(session_ids)))
        latency: Optional[float] = None
        try:
            samples = parse_samples(scrape_text(url, timeout=timeout))
        except (OSError, ValueError):
            samples = []
        total = sample_value(
            samples,
            "repro_http_request_seconds_sum",
            {"route": _ACTIONS_ROUTE},
        )
        count = sample_value(
            samples,
            "repro_http_request_seconds_count",
            {"route": _ACTIONS_ROUTE},
        )
        if total is not None and count:
            latency = total / count
    return WorkerLoad(
        url=url,
        sessions=sessions,
        session_ids=session_ids,
        action_latency_s=latency,
    )


def plan_moves(
    loads: Sequence[WorkerLoad], skew: int = DEFAULT_SKEW
) -> list[Move]:
    """Hot-to-cold moves that bring the spread within ``skew``.

    Pure planning over the observed counts — no I/O — so the policy is
    unit-testable.  Repeatedly halves the hottest/coldest gap; newest
    session ids drain first.
    """
    if len(loads) < 2:
        return []
    counts = {load.url: load.sessions for load in loads}
    drainable = {load.url: list(load.session_ids) for load in loads}
    moves: list[Move] = []
    while True:
        hot = max(counts, key=lambda url: counts[url])
        cold = min(counts, key=lambda url: counts[url])
        gap = counts[hot] - counts[cold]
        # a spread of 1 is unavoidable for odd totals; tolerating it
        # also keeps skew=0 from ping-ponging one session forever
        if gap <= max(1, skew):
            break
        batch = drainable[hot][-max(1, gap // 2) :]
        if not batch:
            break  # the gauge says hot, but no drainable ids remain
        del drainable[hot][-len(batch) :]
        moves.append(Move(source=hot, target=cold, sessions=tuple(reversed(batch))))
        counts[hot] -= len(batch)
        counts[cold] += len(batch)
        drainable[cold].extend(batch)
    return moves


def rebalance_once(
    urls: Sequence[str],
    skew: int = DEFAULT_SKEW,
    dry_run: bool = False,
    timeout: float = 10.0,
) -> RebalanceRound:
    """One poll-plan-drain round across the fleet."""
    from repro.service.client import ServiceClient, ServiceClientError

    metrics = _RebalanceMetrics.get()
    outcome = RebalanceRound()
    for url in urls:
        try:
            outcome.loads.append(scrape_load(url, timeout=timeout))
        except (ServiceClientError, OSError, ValueError):
            outcome.unreachable.append(url)
    outcome.moves = plan_moves(outcome.loads, skew=skew)
    if not dry_run:
        for move in outcome.moves:
            with ServiceClient(move.source, timeout=timeout) as source:
                for sid in move.sessions:
                    try:
                        source.migrate_session(sid, move.target)
                        outcome.moved += 1
                    except (ServiceClientError, OSError) as exc:
                        outcome.failed += 1
                        print(
                            f"rebalance: {sid} {move.source} -> "
                            f"{move.target} failed: {exc}",
                            file=sys.stderr,
                        )
    metrics.rounds.inc()
    if outcome.moved:
        metrics.moves.inc(outcome.moved)
    if outcome.failed:
        metrics.failures.inc(outcome.failed)
    metrics.skew.set(outcome.skew)
    return outcome


def run_rebalancer(
    urls: Sequence[str],
    interval: Optional[float] = None,
    skew: int = DEFAULT_SKEW,
    dry_run: bool = False,
    timeout: float = 10.0,
) -> int:
    """One-shot (``interval=None``) or looped rebalancing; exit code."""
    while True:
        outcome = rebalance_once(urls, skew=skew, dry_run=dry_run, timeout=timeout)
        counts = " ".join(
            f"{load.url}={load.sessions}" for load in outcome.loads
        )
        planned = sum(len(move.sessions) for move in outcome.moves)
        verb = "planned" if dry_run else "moved"
        print(
            f"rebalance: skew={outcome.skew} {verb}="
            f"{planned if dry_run else outcome.moved}"
            + (f" failed={outcome.failed}" if outcome.failed else "")
            + (f" unreachable={len(outcome.unreachable)}" if outcome.unreachable else "")
            + (f" [{counts}]" if counts else ""),
            flush=True,
        )
        if interval is None:
            return 0 if not outcome.failed else 1
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - signal path
            return 0
