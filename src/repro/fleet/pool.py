"""A process-wide keep-alive HTTP connection pool.

Every HTTP hop in the fleet — :class:`~repro.service.client.ServiceClient`
driving workers, :class:`~repro.fleet.remote.RemoteBackend` probing the
cache tier, the rebalancer scraping metrics — goes through one shared
pool: idle connections are parked per ``(host, port)`` and handed back
out instead of paying a fresh TCP handshake per request.

The discipline is acquire / release / discard:

* :meth:`ConnectionPool.acquire` pops an idle connection for the host
  (or opens a new one), with the caller's per-request timeout applied
  to the live socket;
* :meth:`ConnectionPool.release` parks it again once the response body
  has been fully read — callers must never release a connection with
  unread bytes, the next borrower would read them as its response;
* :meth:`ConnectionPool.discard` closes it instead (send failures,
  ``Connection: close`` responses, protocol errors).

Lifecycle counts publish as ``repro_pool_connections_total{event}`` so
the keep-alive win is measurable (see ``repro loadtest``).
"""

from __future__ import annotations

import threading
from http.client import HTTPConnection
from typing import Optional

from repro.obs import metrics as obs_metrics

#: Idle connections parked per (host, port) before overflow closes.
DEFAULT_MAX_IDLE_PER_HOST = 8


class _PoolMetrics:
    """Lazy handle on the pool's registry family."""

    _instance: Optional["_PoolMetrics"] = None

    def __init__(self) -> None:
        self.events = obs_metrics.registry().counter(
            "repro_pool_connections_total",
            "Pooled HTTP connection lifecycle events "
            "(created / reused / discarded).",
            ("event",),
        )

    @classmethod
    def get(cls) -> "_PoolMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


class ConnectionPool:
    """Idle :class:`http.client.HTTPConnection` objects per (host, port)."""

    def __init__(self, max_idle_per_host: int = DEFAULT_MAX_IDLE_PER_HOST) -> None:
        self.max_idle_per_host = max_idle_per_host
        self._lock = threading.Lock()
        self._idle: dict[tuple[str, int], list[HTTPConnection]] = {}
        self.created = 0
        self.reused = 0
        self.discarded = 0

    # ------------------------------------------------------------------
    def acquire(
        self, host: str, port: int, timeout: Optional[float] = None
    ) -> HTTPConnection:
        """An open-or-openable connection to ``host:port``.

        A reused connection gets the caller's ``timeout`` applied to its
        live socket — pool neighbors with different budgets never
        inherit each other's.
        """
        with self._lock:
            stack = self._idle.get((host, port))
            connection = stack.pop() if stack else None
            if connection is not None:
                self.reused += 1
        if connection is None:
            with self._lock:
                self.created += 1
            _PoolMetrics.get().events.labels(event="created").inc()
            return HTTPConnection(host, port, timeout=timeout)
        _PoolMetrics.get().events.labels(event="reused").inc()
        connection.timeout = timeout
        if connection.sock is not None:
            connection.sock.settimeout(timeout)
        return connection

    def release(self, host: str, port: int, connection: HTTPConnection) -> None:
        """Park a connection whose response body was fully read."""
        with self._lock:
            stack = self._idle.setdefault((host, port), [])
            if len(stack) < self.max_idle_per_host:
                stack.append(connection)
                return
        self.discard(connection)

    def discard(self, connection: HTTPConnection) -> None:
        """Close a connection instead of parking it."""
        with self._lock:
            self.discarded += 1
        _PoolMetrics.get().events.labels(event="discarded").inc()
        try:
            connection.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------
    def idle_count(self, host: str, port: int) -> int:
        with self._lock:
            return len(self._idle.get((host, port), ()))

    def stats(self) -> dict:
        """Lifetime counters plus the current idle census."""
        with self._lock:
            idle = sum(len(stack) for stack in self._idle.values())
        return {
            "created": self.created,
            "reused": self.reused,
            "discarded": self.discarded,
            "idle": idle,
        }

    def clear(self) -> None:
        """Close and forget every idle connection (test isolation,
        process teardown)."""
        with self._lock:
            idle, self._idle = self._idle, {}
        for stack in idle.values():
            for connection in stack:
                try:
                    connection.close()
                except OSError:  # pragma: no cover - defensive
                    pass


#: The process-wide pool every fleet client shares.
_POOL = ConnectionPool()


def pool() -> ConnectionPool:
    """The shared process-wide connection pool."""
    return _POOL


def reset_pool() -> None:
    """Drop idle connections and zero the counters (test isolation)."""
    _POOL.clear()
    _POOL.created = 0
    _POOL.reused = 0
    _POOL.discarded = 0
