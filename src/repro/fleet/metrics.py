"""Fleet-wide Prometheus plumbing: scrape, parse, merge.

Three consumers:

* ``repro metrics --fleet URL,URL,...`` scrapes every worker's (and the
  cache server's) ``/v1/metrics`` and merges the dumps into one stream,
  each sample tagged ``instance="host:port"`` — fleet health as one
  command;
* the rebalancer (:mod:`repro.fleet.rebalance`) parses per-worker dumps
  for the session gauge and per-route latency sums;
* tests assert on specific samples without regex-matching raw text.

The parser covers exactly what :meth:`repro.obs.metrics.Registry.render`
emits (``# HELP`` / ``# TYPE`` comments, ``name{label="v"} value``
samples, histogram ``_bucket``/``_sum``/``_count`` series) — it is not
a general exposition-format validator.
"""

from __future__ import annotations

import re
from http.client import HTTPConnection
from typing import Iterable, Optional
from urllib.parse import urlsplit

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: Histogram/summary series suffixes that roll up to their family name.
_FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def split_host_port(url: str) -> tuple[str, int]:
    """``host, port`` from a base URL (scheme optional)."""
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.hostname is None:
        raise ValueError(f"bad URL {url!r}")
    return parts.hostname, parts.port or 80


def scrape_text(url: str, path: str = "/v1/metrics", timeout: float = 10.0) -> str:
    """One worker's metrics dump as text (raises ``OSError`` on failure)."""
    host, port = split_host_port(url)
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
    finally:
        connection.close()
    if response.status != 200:
        raise OSError(f"GET {url}{path} -> {response.status}")
    return body.decode("utf-8")


def parse_samples(text: str) -> list[tuple[str, dict[str, str], float]]:
    """``(name, labels, value)`` triples from an exposition dump."""
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        name, raw_labels, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            continue
        labels = (
            {key: val for key, val in _LABEL.findall(raw_labels)}
            if raw_labels
            else {}
        )
        samples.append((name, labels, value))
    return samples


def sample_value(
    samples: Iterable[tuple[str, dict[str, str], float]],
    name: str,
    labels: Optional[dict[str, str]] = None,
) -> Optional[float]:
    """The first sample matching ``name`` and the given label subset."""
    wanted = labels or {}
    for sample_name, sample_labels, value in samples:
        if sample_name != name:
            continue
        if all(sample_labels.get(key) == val for key, val in wanted.items()):
            return value
    return None


def _family_of(name: str, families: set[str]) -> str:
    """The family a sample series belongs to (histogram suffixes fold)."""
    if name in families:
        return name
    for suffix in _FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return name


def _inject_instance(line: str, instance: str) -> str:
    """Tag one sample line with ``instance="..."`` (first label)."""
    brace = line.find("{")
    if brace >= 0:
        return f'{line[: brace + 1]}instance="{instance}",{line[brace + 1 :]}'
    space = line.find(" ")
    if space < 0:
        return line
    return f'{line[:space]}{{instance="{instance}"}}{line[space:]}'


def merge_exposition(scrapes: list[tuple[str, str]]) -> str:
    """Merge ``(instance, dump)`` pairs into one labeled exposition.

    ``# HELP`` / ``# TYPE`` headers are emitted once per family (first
    instance wins — they are identical by construction), samples are
    grouped under their family and each carries the ``instance`` label
    in first position.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    order: list[str] = []
    grouped: dict[str, list[str]] = {}
    families: set[str] = set()
    for instance, text in scrapes:
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("# HELP ") or stripped.startswith("# TYPE "):
                parts = stripped.split(" ", 3)
                if len(parts) < 3:
                    continue
                family = parts[2]
                families.add(family)
                store = helps if parts[1] == "HELP" else types
                if family not in store:
                    store[family] = stripped
                if family not in grouped:
                    grouped[family] = []
                    order.append(family)
                continue
            if stripped.startswith("#"):
                continue
            match = _SAMPLE.match(stripped)
            if match is None:
                continue
            family = _family_of(match.group(1), families)
            if family not in grouped:
                grouped[family] = []
                order.append(family)
            grouped[family].append(_inject_instance(stripped, instance))
    lines: list[str] = []
    for family in order:
        if family in helps:
            lines.append(helps[family])
        if family in types:
            lines.append(types[family])
        lines.extend(grouped[family])
    return "\n".join(lines) + ("\n" if lines else "")
