"""``repro cache-serve``: the execution cache as a standalone server.

One process, one :class:`~repro.service.backends.FileBackend`, a
:class:`ThreadingHTTPServer` in front.  Workers point their sessions at
it with ``--backend remote://host:port`` and share executions across
machines the way ``--backend file`` shares them across processes on one
machine.

The wire protocol is two POST routes carrying *codec payloads* — the
same codec-ready dicts :func:`~repro.service.backends.entry_to_payload`
produces, with digests hex-encoded — so the server relays rows without
ever decoding entries into actions and environments:

==============================  ========================================
``POST /v1/cache/get``          ``{"k": [[kind, key_hex], ...]}`` →
                                ``{"e": [payload | null, ...]}``
                                (same order; a batch of one is a get)
``POST /v1/cache/put``          ``{"e": [[kind, key_hex, payload], ...]}``
                                → ``{"stored": n, "entries": total,
                                "bytes": total}``
``GET  /healthz``               → ``{ok, role: "cache", codec, codecs}``
``GET  /v1/stats``              → store gauges (JSON)
``GET  /v1/metrics``            → Prometheus text exposition
==============================  ========================================

Bodies and responses speak the protocol codec seam — binary by default,
negotiated per request via ``Content-Type`` / ``Accept`` with per-row
sniffing, exactly like the session service.  Reads consult the store's
write buffer first, so an entry put by one worker is visible to the
next get even before the SQLite flush.

Storage policy is entirely the ``FileBackend``'s: byte-accounted
tier-aware eviction, codec-sniffed rows, I/O failures degraded to
misses.  The server adds only batching, counters
(``repro_cache_server_requests_total{op,outcome}``) and a per-op
latency histogram (``repro_cache_server_seconds{op}``).
"""

from __future__ import annotations

import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs import metrics as obs_metrics
from repro.protocol.codec import (
    CODECS,
    Codec,
    ProtocolError,
    codec_for_content_type,
    resolve_codec,
    sniff_codec,
)
from repro.service.backends import FileBackend, default_store_path

#: Default cache-tier port — well clear of the workers' consecutive
#: block starting at the service's 8738.
DEFAULT_CACHE_PORT = 8799

#: Entry kinds a put may carry (EXACT / TERMINAL / CONSISTENCY).
_VALID_KINDS = (0, 1, 2)

#: Hard per-request row cap: a runaway batch degrades to 400, not OOM.
MAX_BATCH = 4096


class _CacheServerMetrics:
    """Lazy handles on the cache server's registry families."""

    _instance: Optional["_CacheServerMetrics"] = None

    def __init__(self) -> None:
        registry = obs_metrics.registry()
        self.requests = registry.counter(
            "repro_cache_server_requests_total",
            "Cache-server operations by outcome (get: hit/miss, put: "
            "stored, both: bad_request).",
            ("op", "outcome"),
        )
        self.latency = registry.histogram(
            "repro_cache_server_seconds",
            "Cache-server request latency by operation.",
            ("op",),
        )

    @classmethod
    def get(cls) -> "_CacheServerMetrics":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


class CacheServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying one FileBackend store."""

    daemon_threads = True

    def __init__(self, address, store: FileBackend, quiet: bool = True):
        self.store = store
        self.quiet = quiet
        super().__init__(address, _CacheHandler)


class _CacheHandler(BaseHTTPRequestHandler):
    server_version = "repro-cache/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debug aid
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def _response_codec(self) -> Codec:
        return (
            codec_for_content_type(self.headers.get("Accept"))
            or getattr(self, "_request_codec", None)
            or self.server.store.codec
        )

    def _reply(self, payload: dict, status: int = 200) -> None:
        codec = self._response_codec()
        body = codec.encode_payload(payload)
        self.send_response(status)
        self.send_header("Content-Type", codec.content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_bytes(self, body: bytes, status: int, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, op: str, message: str, status: int = 400) -> None:
        _CacheServerMetrics.get().requests.labels(
            op=op, outcome="bad_request"
        ).inc()
        self._reply({"error": "bad_request", "message": message}, status)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length > 0 else b""
        codec = codec_for_content_type(self.headers.get("Content-Type"))
        if codec is None:
            codec = sniff_codec(raw)
        self._request_codec = codec
        payload = codec.decode_payload(raw)
        if not isinstance(payload, dict):
            raise ProtocolError("expected an object body")
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._request_codec = None
        store = self.server.store
        if self.path == "/healthz":
            self._reply(
                {
                    "ok": True,
                    "role": "cache",
                    "codec": store.codec.name,
                    "codecs": sorted(CODECS),
                }
            )
        elif self.path == "/v1/stats":
            self._reply(
                {
                    "role": "cache",
                    "path": store.path,
                    "entries": store.entries,
                    "persisted_bytes": store.persisted_bytes,
                    "codec": store.codec.name,
                    "loads": store.loads,
                    "load_hits": store.load_hits,
                    "stores": store.stores,
                    "evictions": store.evictions,
                    "io_errors": store.io_errors,
                    "tier_cost": store.tier_cost,
                }
            )
        elif self.path == "/v1/metrics":
            self._reply_bytes(
                obs_metrics.registry().render().encode("utf-8"),
                200,
                obs_metrics.CONTENT_TYPE,
            )
        else:
            self._error("get", f"no route {self.path}", 404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._request_codec = None
        started = time.perf_counter()
        op = "get" if self.path == "/v1/cache/get" else "put"
        try:
            if self.path == "/v1/cache/get":
                self._get(self._body())
            elif self.path == "/v1/cache/put":
                self._put(self._body())
            else:
                self._error("post", f"no route {self.path}", 404)
                return
        except (ProtocolError, ValueError, TypeError, KeyError) as exc:
            self._error(op, str(exc))
            return
        finally:
            _CacheServerMetrics.get().latency.labels(op=op).observe(
                time.perf_counter() - started
            )

    # ------------------------------------------------------------------
    def _get(self, payload: dict) -> None:
        keys = payload.get("k")
        if not isinstance(keys, list) or len(keys) > MAX_BATCH:
            raise ProtocolError("'k' must be a list of [kind, key_hex] rows")
        store = self.server.store
        metrics = _CacheServerMetrics.get()
        entries = []
        for row in keys:
            kind, key = self._parse_key(row)
            found = store.load_payload(key)
            metrics.requests.labels(
                op="get", outcome="hit" if found is not None else "miss"
            ).inc()
            entries.append(found)
        self._reply({"e": entries})

    def _put(self, payload: dict) -> None:
        rows = payload.get("e")
        if not isinstance(rows, list) or len(rows) > MAX_BATCH:
            raise ProtocolError(
                "'e' must be a list of [kind, key_hex, payload] rows"
            )
        store = self.server.store
        stored = 0
        for row in rows:
            if not isinstance(row, list) or len(row) != 3:
                raise ProtocolError("each put row is [kind, key_hex, payload]")
            kind, key = self._parse_key(row[:2])
            if not isinstance(row[2], dict):
                raise ProtocolError("row payload must be an object")
            store.store_payload(kind, key, row[2])
            stored += 1
        _CacheServerMetrics.get().requests.labels(op="put", outcome="stored").inc(
            stored
        )
        self._reply(
            {
                "stored": stored,
                "entries": store.entries,
                "bytes": store.persisted_bytes,
            }
        )

    @staticmethod
    def _parse_key(row) -> tuple[int, bytes]:
        if not isinstance(row, list) or len(row) < 2:
            raise ProtocolError("each key row is [kind, key_hex]")
        kind, key_hex = row[0], row[1]
        if kind not in _VALID_KINDS:
            raise ProtocolError(f"unknown entry kind {kind!r}")
        if not isinstance(key_hex, str):
            raise ProtocolError("key must be a hex string")
        try:
            key = bytes.fromhex(key_hex)
        except ValueError as exc:
            raise ProtocolError(f"malformed key {key_hex[:64]!r}") from exc
        if not key:
            raise ProtocolError("empty key")
        return kind, key


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def make_cache_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_CACHE_PORT,
    path: Optional[str] = None,
    max_bytes: Optional[int] = None,
    codec: Optional[str] = None,
    quiet: bool = True,
) -> CacheServer:
    """Bind one cache server (tests drive this in a thread).

    The store is owned, not resolved through the per-process backend
    registry: the cache server is the process whose *job* is this file.
    """
    store = FileBackend(
        path or default_store_path(),
        max_bytes=max_bytes,
        codec=resolve_codec(codec, default="binary"),
    )
    return CacheServer((host, port), store, quiet=quiet)


def serve_cache(
    host: str = "127.0.0.1",
    port: int = DEFAULT_CACHE_PORT,
    path: Optional[str] = None,
    max_bytes: Optional[int] = None,
    codec: Optional[str] = None,
    quiet: bool = True,
) -> int:
    """Run the cache tier until interrupted; returns the exit code."""
    server = make_cache_server(host, port, path, max_bytes, codec, quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro-cache listening on http://{bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - signal path
        pass
    finally:
        server.server_close()
        server.store.close()
    return 0
