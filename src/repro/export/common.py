"""Shared machinery for the script exporters.

The interesting translation problem is selectors.  Our DSL's descendant
step ``//φ[i]`` means "the *i*-th matching descendant in document
order", but real XPath's ``prefix//t[i]`` filters by position *within
each parent*.  The faithful encoding parenthesizes:
``(prefix//t)[i]`` selects the i-th node of the whole descendant node
set, which is exactly our semantics.  Child steps need no wrapping —
``/t[i]`` and ``/t[@a='v'][i]`` already index among matching children.

:class:`CodeWriter` is a small indentation-aware emitter;
:class:`VarNames` assigns Python identifiers to loop variables.
"""

from __future__ import annotations

from typing import Optional

from repro.dom.xpath import CHILD, Predicate, Step, TokenPredicate
from repro.lang.ast import SEL_VAR, Selector, ValuePath, Var
from repro.util.errors import ExportError


# ----------------------------------------------------------------------
# XPath rendering
# ----------------------------------------------------------------------
def xpath_string_literal(value: str) -> str:
    """Quote ``value`` as an XPath 1.0 string literal.

    XPath 1.0 has no escape sequences, so a value containing both quote
    kinds must be assembled with ``concat``.
    """
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    parts = []
    for piece in value.split("'"):
        if parts:
            parts.append('"\'"')
        if piece:
            parts.append(f"'{piece}'")
    return f"concat({', '.join(parts)})"


def predicate_to_xpath(pred: Predicate) -> str:
    """Render a node test as real XPath (token predicates via contains)."""
    if isinstance(pred, TokenPredicate):
        padded = xpath_string_literal(f" {pred.value} ")
        return (
            f"{pred.tag}[contains(concat(' ', normalize-space(@{pred.attr}), ' '), "
            f"{padded})]"
        )
    if pred.attr is None:
        return pred.tag
    return f"{pred.tag}[@{pred.attr}={xpath_string_literal(pred.value)}]"


def steps_to_xpath(steps: tuple[Step, ...], origin: str) -> str:
    """Render a step sequence as real XPath rooted at ``origin``.

    ``origin`` is ``""`` for document-absolute selectors and ``"."`` for
    selectors relative to a loop element.  Descendant steps are wrapped
    so their index counts the full document-order node set.
    """
    expr = origin
    for step in steps:
        pred = predicate_to_xpath(step.pred)
        if step.axis == CHILD:
            expr = f"{expr}/{pred}[{step.index}]"
        else:
            expr = f"({expr}//{pred})[{step.index}]"
    return expr or "/*"


def collection_to_xpath(steps: tuple[Step, ...], origin: str, pred: Predicate, axis: str) -> str:
    """XPath for a whole collection (``Children``/``Dscts``) — no index."""
    base = steps_to_xpath(steps, origin) if steps else origin
    separator = "/" if axis == CHILD else "//"
    return f"{base}{separator}{predicate_to_xpath(pred)}"


def template_to_xpath(template, origin: str = "", marker: str = "{k}") -> str:
    """Real XPath for a :class:`CounterTemplate` with ``marker`` in the hole.

    The generated scripts substitute the page counter for ``marker`` at
    runtime (plain string replace), so the marker must survive XPath
    quoting — it contains no quote characters.
    """
    value = f"{template.value_prefix}{marker}{template.value_suffix}"
    hole = Step(template.axis, Predicate(template.tag, template.attr, value), template.index)
    steps = template.prefix_steps + (hole,) + template.suffix_steps
    return steps_to_xpath(steps, origin)


# ----------------------------------------------------------------------
# Identifier allocation
# ----------------------------------------------------------------------
class VarNames:
    """Python identifiers for loop variables, stable in binding order."""

    def __init__(self) -> None:
        self._names: dict[Var, str] = {}
        self._counts = {"element": 0, "value": 0, "page": 0}

    def bind(self, var: Var) -> str:
        """Allocate a name for a newly-bound loop variable."""
        kind = "element" if var.kind == SEL_VAR else "value"
        self._counts[kind] += 1
        name = f"{kind}_{self._counts[kind]}"
        self._names[var] = name
        return name

    def fresh(self, stem: str) -> str:
        """Allocate a helper identifier (loop counters and the like)."""
        self._counts[stem] = self._counts.get(stem, 0) + 1
        return f"{stem}_{self._counts[stem]}"

    def name(self, var: Var) -> str:
        """Look up the identifier a variable was bound to."""
        try:
            return self._names[var]
        except KeyError:
            raise ExportError(f"unbound loop variable {var} in exported program") from None


def value_path_expr(path: ValuePath, names: VarNames) -> str:
    """A Python expression evaluating the value a path denotes.

    Value-path variables hold the *resolved* value of their binding (the
    exporters iterate arrays directly), so accessors become ordinary
    subscripts; the DSL's 1-based array indices shift to 0-based.
    """
    expr = "data" if path.base is None else names.name(path.base)
    for accessor in path.accessors:
        if isinstance(accessor, int):
            expr += f"[{accessor - 1}]"
        else:
            expr += f"[{accessor!r}]"
    return expr


def selector_parts(
    selector: Selector, names: VarNames
) -> tuple[Optional[str], str]:
    """Split a symbolic selector into (context identifier, xpath string).

    Returns ``(None, absolute_xpath)`` for concrete selectors and
    ``(element_identifier, relative_xpath)`` for variable-based ones.
    """
    if selector.base is None:
        return None, steps_to_xpath(selector.steps, "")
    return names.name(selector.base), steps_to_xpath(selector.steps, ".")


# ----------------------------------------------------------------------
# Code emission
# ----------------------------------------------------------------------
class CodeWriter:
    """Indentation-aware line emitter for generated scripts."""

    INDENT = "    "

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str = "") -> None:
        """Emit one line at the current indentation (blank stays blank)."""
        if text:
            self._lines.append(self.INDENT * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        """Emit several lines at the current indentation."""
        for text in texts:
            self.line(text)

    def indent(self) -> "CodeWriter":
        """Increase indentation (use as ``with``-free pairing to dedent)."""
        self._depth += 1
        return self

    def dedent(self) -> "CodeWriter":
        """Decrease indentation."""
        if self._depth == 0:
            raise ExportError("unbalanced dedent in code generation")
        self._depth -= 1
        return self

    def block(self, header: str) -> "_Block":
        """Emit ``header`` and return a context manager indenting its body."""
        self.line(header)
        return _Block(self)

    def render(self) -> str:
        """The generated source, newline-terminated."""
        return "\n".join(self._lines) + "\n"


class _Block:
    """Context manager produced by :meth:`CodeWriter.block`."""

    def __init__(self, writer: CodeWriter) -> None:
        self._writer = writer

    def __enter__(self) -> CodeWriter:
        return self._writer.indent()

    def __exit__(self, *exc_info: object) -> None:
        self._writer.dedent()


def comment_block(writer: CodeWriter, text: str, prefix: str = "# ") -> None:
    """Emit a multi-line string as a comment block."""
    for line in text.splitlines():
        writer.line((prefix + line).rstrip())
