"""Code generation: turn synthesized programs into standalone scripts.

The paper's ground truths are hand-written Selenium WebDriver programs
(§7, "it took us 30 minutes to a few hours to implement a working
Selenium program").  This package closes the loop in the other
direction: a program *synthesized from a demonstration* is exported as a
runnable automation script, so a downstream user can take the robot out
of this library and run it against the live site.

Three targets are provided:

* :func:`to_selenium` — a Selenium WebDriver script (the framework the
  paper's ground truths use);
* :func:`to_playwright` — a Playwright sync-API script;
* :func:`to_imacros` — an iMacros scripting-interface JavaScript file
  (the tool whose forum the paper's benchmarks come from — and whose
  missing loop support the exporter supplies).

Both generators emit the same runtime structure: a ``run(driver, data)``
function mirroring the program statement-for-statement, plus a CLI
``main`` that loads the input data source from JSON.  Collections are
re-queried on every iteration, which reproduces the lazy S-Cont
semantics of §3.2 (sites that load more rows as you interact) and
sidesteps stale-element references after in-loop navigation.

>>> from repro.lang.parser import parse_program
>>> from repro.export import export_program
>>> program = parse_program("ScrapeText(//h3[1])")
>>> print(export_program(program, target="selenium").splitlines()[0])
#!/usr/bin/env python3
"""

from __future__ import annotations

from repro.export.imacros import to_imacros
from repro.export.playwright import to_playwright
from repro.export.selenium import to_selenium
from repro.lang.ast import Program

#: Registered export targets.
TARGETS = {
    "selenium": to_selenium,
    "playwright": to_playwright,
    "imacros": to_imacros,
}


def export_program(program: Program, target: str = "selenium", start_url: str = "") -> str:
    """Export ``program`` as a standalone script for ``target``.

    Parameters
    ----------
    program:
        The web RPA program (typically a :class:`Synthesizer` result).
    target:
        One of :data:`TARGETS` (``"selenium"`` or ``"playwright"``).
    start_url:
        Optional URL baked into the generated ``main`` as the page the
        robot opens first (demonstrations know it; synthesis does not).
    """
    try:
        generator = TARGETS[target]
    except KeyError:
        known = ", ".join(sorted(TARGETS))
        raise ValueError(f"unknown export target {target!r} (known: {known})") from None
    return generator(program, start_url=start_url)


__all__ = ["export_program", "to_selenium", "to_playwright", "to_imacros", "TARGETS"]
