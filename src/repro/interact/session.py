"""The human-in-the-loop interaction model (§6, Figure 3).

A session moves through three phases:

* **demo** — the user performs actions manually; each is recorded and
  sent to the synthesizer;
* **auth** — the synthesizer's predicted next actions are shown; the user
  accepts one (it is then executed) or rejects them all (back to demo);
* **auto** — after enough consecutive accepts, the robot takes over and
  executes predictions without asking, until the program stops producing
  actions (back to demo — e.g. P1 finishing page one) or the user spots a
  deviation and interrupts.

The session drives a live :class:`~repro.browser.virtual.Browser`; the
*user* is any object with the :class:`~repro.interact.user.OracleUser`
interface.  The synthesis loop itself is not a parallel implementation:
the simulator is a *driver* over the unified protocol session core
(:class:`repro.protocol.session.Session`) — the same object the service
serves over HTTP — fed through :meth:`Session.synthesize_over` with the
browser-recorded trace, so its reports, its telemetry, and even its
migratability (``session.export_snapshot()``) are the service's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.browser.virtual import Browser
from repro.interact.user import OracleUser
from repro.lang.actions import Action
from repro.protocol.session import Session
from repro.synth.synthesizer import Synthesizer
from repro.util.errors import ReplayError


class Phase(enum.Enum):
    """The three phases of Figure 3 (plus the terminal state)."""

    DEMO = "demo"
    AUTH = "auth"
    AUTO = "auto"
    DONE = "done"


@dataclass
class SessionReport:
    """What happened during one session — the Q3 measurements.

    ``demonstrated`` counts manual actions, ``authorized`` accepted
    predictions, ``automated`` robot-executed actions; ``ambiguity_picks``
    counts the times the user chose a prediction other than the first
    (the navigation-arrows feature); ``interruptions`` counts aborts of
    the auto phase.
    """

    completed: bool = False
    total_actions: int = 0
    demonstrated: int = 0
    authorized: int = 0
    rejected: int = 0
    automated: int = 0
    ambiguity_picks: int = 0
    interruptions: int = 0
    phase_log: list[str] = field(default_factory=list)

    @property
    def automation_fraction(self) -> float:
        """Share of the task the robot performed."""
        if self.total_actions == 0:
            return 0.0
        return self.automated / self.total_actions


class InteractiveSession:
    """Runs one task end-to-end under the demo-auth-auto workflow."""

    def __init__(
        self,
        browser: Browser,
        synthesizer: Synthesizer,
        user: OracleUser,
        auth_accepts_to_automate: int = 2,
        max_steps: int = 2000,
        synth_timeout: Optional[float] = None,
    ) -> None:
        self.browser = browser
        self.synthesizer = synthesizer
        self.user = user
        self.auth_accepts_to_automate = auth_accepts_to_automate
        self.max_steps = max_steps
        self.synth_timeout = synth_timeout
        self.phase = Phase.DEMO
        self.report = SessionReport()
        #: The unified protocol session this simulator drives — the
        #: same core the service serves (one surface, two transports).
        self.session = Session(
            "interactive",
            synthesizer.data,
            synthesizer.config,
            timeout=synth_timeout,
            synthesizer=synthesizer,
        )

    # ------------------------------------------------------------------
    def run(self) -> SessionReport:
        """Drive the session until the task completes or budgets run out."""
        consecutive_accepts = 0
        steps = 0
        while not self.user.done and steps < self.max_steps:
            steps += 1
            predictions = self._synthesize()
            if self.phase is Phase.DEMO:
                if predictions:
                    self.phase = Phase.AUTH
                    self.report.phase_log.append("auth")
                    continue
                self._demonstrate()
                continue
            if self.phase is Phase.AUTH:
                choice = self.user.judge(predictions) if predictions else None
                if choice is None:
                    self.report.rejected += 1
                    self.session.reject()  # the protocol Reject event
                    consecutive_accepts = 0
                    self.phase = Phase.DEMO
                    self.report.phase_log.append("demo")
                    self._demonstrate()
                    continue
                if choice > 0:
                    self.report.ambiguity_picks += 1
                self._execute(predictions[choice], authorized=True)
                consecutive_accepts += 1
                if consecutive_accepts >= self.auth_accepts_to_automate:
                    self.phase = Phase.AUTO
                    self.report.phase_log.append("auto")
                continue
            # Phase.AUTO
            if not predictions:
                # the program finished its loop (e.g. P1 at the end of
                # page one): hand control back to the user
                self.phase = Phase.DEMO
                self.report.phase_log.append("demo")
                consecutive_accepts = 0
                continue
            prediction = predictions[0]
            if not self._execute(prediction, authorized=False):
                self.report.interruptions += 1
                self.phase = Phase.DEMO
                self.report.phase_log.append("demo")
                consecutive_accepts = 0
        self.report.completed = self.user.done
        self.report.total_actions = (
            self.report.demonstrated + self.report.authorized + self.report.automated
        )
        return self.report

    # ------------------------------------------------------------------
    def _synthesize(self) -> list[Action]:
        actions, snapshots = self.browser.trace()
        if not actions:
            return []
        result = self.session.synthesize_over(actions, snapshots)
        return result.predictions

    def _demonstrate(self) -> None:
        action = self.user.demonstrate()
        self.browser.perform(action)
        if not self.user.observe(self.browser.recorded_actions[-1]):
            raise ReplayError("oracle user failed to observe own demonstration")
        self.report.demonstrated += 1

    def _execute(self, action: Action, authorized: bool) -> bool:
        """Execute a prediction; returns False on user interrupt.

        The user inspects the visualised action *before* it runs (the
        approve step), so wrong predictions never corrupt the browser
        state or the recorded trace.
        """
        if not self.user.approves(action):
            return False
        try:
            self.browser.perform(action)
        except ReplayError:
            return False
        if not self.user.observe(self.browser.recorded_actions[-1]):
            return False
        self.report.authorized += authorized
        self.report.automated += not authorized
        return True
