"""Simulated users for the human-in-the-loop experiments (Q3).

The paper's study participants demonstrate a task, inspect predicted
actions, accept/reject them, and interrupt the automation when it goes
wrong.  :class:`OracleUser` models a careful user who knows the intended
action sequence (the ground-truth recording); :class:`NoisyUser` adds the
novices' mis-click behaviour observed in §7.3 ("novice users make
mistakes"), which forces session restarts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.browser.recorder import Recording
from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.semantics.consistency import actions_consistent
from repro.util.rng import DetRng


class OracleUser:
    """A simulated user following the intended action sequence exactly.

    The user's "intent" is the ground-truth recording: at every point
    they demonstrate the next intended action, accept exactly the
    predictions consistent with it, and interrupt automation on any
    deviation.
    """

    def __init__(self, recording: Recording) -> None:
        self.recording = recording
        self.position = 0

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once every intended action has happened."""
        return self.position >= self.recording.length

    def intended_action(self) -> Optional[Action]:
        """The action the user wants to happen next."""
        if self.done:
            return None
        return self.recording.actions[self.position]

    def intended_dom(self) -> Optional[DOMNode]:
        """The snapshot the next intended action executes on."""
        if self.done:
            return None
        return self.recording.snapshots[self.position]

    # ------------------------------------------------------------------
    def demonstrate(self) -> Action:
        """Perform the next intended action manually."""
        action = self.intended_action()
        if action is None:
            raise RuntimeError("demonstrating past the end of the task")
        return action

    def judge(self, predictions: Sequence[Action]) -> Optional[int]:
        """Pick the prediction matching the intent (the paper's
        navigation-arrows disambiguation), or None to reject all."""
        intended = self.intended_action()
        dom = self.intended_dom()
        if intended is None or dom is None:
            return None
        for index, prediction in enumerate(predictions):
            if actions_consistent(prediction, intended, dom):
                return index
        return None

    def approves(self, action: Action) -> bool:
        """Inspect an action *about to be executed*; True = as intended.

        The front end visualises each predicted action before it runs, so
        a watchful user stops the robot right before a deviation (§2: "if
        at any point the user spots anything abnormal, they can still
        interrupt").
        """
        intended = self.intended_action()
        dom = self.intended_dom()
        if intended is None or dom is None:
            return False
        return actions_consistent(action, intended, dom)

    def observe(self, action: Action) -> bool:
        """Watch one executed action; True = as intended, advance."""
        if self.approves(action):
            self.position += 1
            return True
        return False


class NoisyUser(OracleUser):
    """An oracle user who occasionally mis-judges a prediction.

    With probability ``mistake_rate`` a correct prediction is rejected
    (novice hesitation) — a conservative mistake that costs demonstrations
    but never corrupts the trace, mirroring how §7.3's mis-clicking
    participants were restarted rather than left on a wrong path.
    """

    def __init__(self, recording: Recording, mistake_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(recording)
        self.mistake_rate = mistake_rate
        self._rng = DetRng(seed)

    def judge(self, predictions: Sequence[Action]) -> Optional[int]:
        choice = super().judge(predictions)
        if choice is not None and self._rng.next_u32() % 1000 < self.mistake_rate * 1000:
            return None
        return choice
