"""Human-in-the-loop interaction: the demo-auth-auto session model."""

from repro.interact.session import InteractiveSession, Phase, SessionReport
from repro.interact.user import NoisyUser, OracleUser

__all__ = [
    "InteractiveSession",
    "Phase",
    "SessionReport",
    "NoisyUser",
    "OracleUser",
]
