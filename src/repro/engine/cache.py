"""Memoization of simulated execution results.

The speculate-and-validate loop executes the *same* statements over the
*same* DOM windows many times: every popped worklist tuple re-validates
candidates its siblings already produced, every pushed tuple re-runs its
trailing loop for the generalization check, and each incremental
``synthesize`` call re-executes stored tuples over windows that extend
the previous call's.  :class:`ExecutionCache` makes each distinct
execution happen once, through two tables:

Exact table
    Keyed on ``(statements, env, data, window snapshots, action
    budget)``.  Hits replay the recorded outcome verbatim.

Terminal table
    An execution that ends with snapshots *and* budget to spare
    terminated on its own terms — every loop-continuation and validity
    decision was made on a snapshot it actually examined, namely the
    first ``len(actions) + 1`` of its window.  Its outcome is therefore
    identical on **any** window extending that examined prefix, which is
    exactly what the next incremental call presents.  The terminal table
    keys such results by ``(statements, env, data, first snapshot)`` and
    matches by examined-prefix comparison.

Every key component is a **value** (see :mod:`repro.engine.keys`):
statements by alpha-canonical form, environments by fingerprint, data
sources and snapshots by structural content digest.  Entries therefore
need no pinning — a key can never alias recycled object ids — and a key
computed in one process addresses the same outcome in any other, which
is what the persistent backends below and the multi-process service
(:mod:`repro.service`) are built on.  Both tables are bounded LRUs with
byte-accounted footprints and optional byte-based eviction thresholds;
hit/miss/eviction counters feed
:class:`repro.synth.synthesizer.SynthesisStats`.

Backends
--------
An optional :class:`~repro.service.backends.CacheBackend` adds a second
level behind the in-memory tables: lookups that miss in memory consult
the backend (a hit *warm-starts* the entry back into memory and counts
as ``warm_hits``), and every recorded outcome is written through,
addressed by the :func:`~repro.engine.keys.stable_digest` of its full
value key.  The default in-process backend is a no-op — byte-for-byte
legacy behavior; the file backend persists executions across process
boundaries and restarts, and several worker processes pointing at one
store share each other's work.

Process-level sharing
---------------------
:class:`SharedExecutionCache` promotes the per-engine cache to a
process-level one: the three tables are *lock-striped* across shards
(keyed by the same value-addressed keys, so a key always lands on the
same shard), and a *snapshot-interning* table maps structurally equal
snapshots from different sessions onto one canonical root — sessions
over the same site then share the per-snapshot :class:`~repro.engine.
index.SnapshotIndex` (with its ``enum_memo``) as well as every memoized
execution.  Engines join through :meth:`SharedExecutionCache.session`,
which hands out a :class:`SharedCacheSession` view with per-session
counters (so interleaved sessions never steal each other's telemetry)
and a cross-session hit count.  :func:`process_cache` holds the
process-wide instance behind ``SynthesisConfig.shared_cache`` /
``REPRO_SHARED_CACHE=1``.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.engine.keys import stable_digest
from repro.obs import metrics as obs_metrics
from repro.semantics.env import Env

_promotions = None


def _promotion_counter():
    """Lazy family handle: entries promoted from the persistent backend
    into the in-memory tables (the store's half of a warm hit)."""
    global _promotions
    if _promotions is None:
        _promotions = obs_metrics.registry().counter(
            "repro_store_promotions_total",
            "Backend payloads promoted into the in-memory cache tables.",
            ("kind",),
        )
    return _promotions

#: Backend entry kinds (mirrors :mod:`repro.service.backends`).
_EXACT, _TERMINAL, _CONSISTENCY = 0, 1, 2


@dataclass
class CacheCounters:
    """Hit/miss/eviction telemetry.

    ``hits = exact_hits + prefix_hits + consistency_hits`` — the first
    two are execution lookups, the third is the consistency-check memo
    that rides the same cache.  ``cross_session_hits`` counts hits whose
    entry was recorded by a *different* session of a shared cache (it is
    always 0 for a private cache); ``warm_hits`` counts hits served from
    a persistent backend — entries recorded by a prior process (they
    are included in the exact/prefix/consistency breakdown, never in
    ``cross_session_hits``).  Counter objects are merged, not shared:
    each validation worker records into its own instance and the
    scheduler folds them together at join (:meth:`merge`), so the totals
    stay exact under concurrent validation.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    exact_hits: int = 0
    prefix_hits: int = 0
    consistency_hits: int = 0
    cross_session_hits: int = 0
    warm_hits: int = 0
    #: Lookups answered by *resuming* a stored loop continuation instead
    #: of re-executing from the window start.  Not part of ``hits`` (the
    #: evaluator still runs, over the suffix) and not part of the
    #: hit/miss reconciliation — a resumed lookup was already counted as
    #: a miss by the preceding full-result probe.
    resume_hits: int = 0
    #: Backend probes served by the backend's decoded-entry cache — the
    #: store read *and* the payload decode were skipped — and the
    #: encoded payload bytes those hits never re-read.  A subset of
    #: ``warm_hits``-eligible traffic, not part of the hit/miss
    #: reconciliation.
    decode_hits: int = 0
    decode_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheCounters") -> None:
        """Fold another counter set into this one (per-worker join)."""
        for field in fields(CacheCounters):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


class _Entry:
    """One memoized outcome.

    ``exact_budget_ok`` marks terminal entries whose recorded run made
    no environment binding after its last emitted action, so the
    outcome also stands in for a run whose budget *equals* the action
    count (such a run halts right after that action and can never bind
    again).  ``owner`` is the session token that recorded the entry
    (0 for private caches and for entries restored from a persistent
    backend) — hits from other sessions count as cross-session reuse.

    ``continuation`` distinguishes the terminal table's second entry
    kind: a run that *absorbed* its window mid-loop (nothing to spare,
    so no terminated-prefix reuse is possible) instead records the
    evaluator's resume state (:attr:`repro.semantics.evaluator.
    EvalResult.continuation`).  For such entries ``actions`` is the
    prefix emitted before the last started iteration, ``examined`` its
    consumed window keys, and ``env`` the iteration-top environment.
    Continuation entries are in-memory only — their env/state hold live
    objects, so they are never written through to a backend.
    """

    __slots__ = ("actions", "env", "examined", "exact_budget_ok", "owner", "continuation")

    def __init__(
        self,
        actions: tuple,
        env: Env,
        examined: Optional[tuple[int, ...]],
        exact_budget_ok: bool = False,
        owner: int = 0,
        continuation: Optional[tuple] = None,
    ) -> None:
        self.actions = actions
        self.env = env
        self.examined = examined
        self.exact_budget_ok = exact_budget_ok
        self.owner = owner
        self.continuation = continuation


class _BackendProbe:
    """A phase-1 miss's pending backend follow-up.

    Carries everything phase 2 needs so the backend read can run with
    no lock held: the lookup coordinates for the in-memory re-check and
    the store digests (computed under the lock — the base-digest memo
    is shard state).  ``terminal_digest`` is ``None`` when an
    inapplicable in-memory terminal entry already rules the store's
    terminal copy out.
    """

    __slots__ = (
        "window_keys",
        "budget",
        "exact_key",
        "terminal_key",
        "exact_digest",
        "terminal_digest",
    )

    def __init__(
        self,
        window_keys: tuple[int, ...],
        budget: int,
        exact_key: tuple,
        terminal_key: tuple,
        exact_digest: bytes,
        terminal_digest: Optional[bytes],
    ) -> None:
        self.window_keys = window_keys
        self.budget = budget
        self.exact_key = exact_key
        self.terminal_key = terminal_key
        self.exact_digest = exact_digest
        self.terminal_digest = terminal_digest


#: Fixed per-entry overhead estimate: the ``_Entry`` object, its dict
#: slot, and the key tuple's skeleton.
_ENTRY_OVERHEAD = 200
#: Approximate bytes per element of the variable-length parts (an action
#: object share, a statement-key share).
_PER_ITEM = 56
#: Approximate bytes per content-digest int (the 128-bit snapshot keys
#: making up window tuples and examined prefixes).
_KEY_INT = 44


def _entry_bytes(key: tuple, entry: _Entry) -> int:
    """Deterministic size estimate of one execution entry (bytes).

    Window and examined components scale with the *window length*, so
    long-window terminal entries weigh proportionally more — the
    byte-based threshold therefore pressures exactly the entries the
    old count-based policy undercounted.
    """
    size = _ENTRY_OVERHEAD + _PER_ITEM * len(entry.actions)
    if entry.examined is not None:
        size += _KEY_INT * len(entry.examined)
    for part in key:
        if type(part) is tuple:
            size += _KEY_INT * len(part)
    return size


def _consistency_bytes(key: tuple, value: tuple) -> int:
    """Deterministic size estimate of one consistency-memo entry."""
    size = _ENTRY_OVERHEAD
    for part in key:
        if type(part) is tuple:
            size += _KEY_INT * len(part)
    return size


class ExecutionCache:
    """Bounded LRU over execution outcomes (see the module docstring).

    ``base`` below is the window-independent part of the key:
    ``(statements key, env key, data key)``.  ``window_keys`` is the
    window's snapshots by content digest; ``budget`` the effective
    action budget (already clamped to the window length by the engine).

    ``max_entries`` bounds each table by count; ``max_bytes`` (optional)
    bounds the *summed* approximate footprint of all three tables —
    when exceeded, oldest entries are evicted table by table until back
    under, so many small entries and few huge ones meet the same
    ceiling.  ``backend`` is an optional persistent second level
    (:mod:`repro.service.backends`), consulted on in-memory misses and
    written through on every insert.

    Lookups and inserts accept an optional per-caller ``counters`` —
    validation workers and session views pass their own — and a
    ``session`` token identifying the caller of a shared cache.  The
    cache's own :attr:`counters` *always* record (they are the
    shard-level aggregate); a passed recorder records additionally, so
    per-session and global telemetry stay reconciled.  A *plain*
    ``ExecutionCache`` is single-threaded by design — concurrent access
    must go through :class:`SharedExecutionCache`, whose shards wrap
    each instance in a lock.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        backend=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("cache size must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("byte threshold must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # a non-persistent backend is a no-op by contract: drop it so the
        # hot path never computes store digests for nothing
        self._backend = backend if backend is not None and backend.persistent else None
        self.backend_name = backend.name if backend is not None else "memory"
        # optional backend seams, resolved once: duck-typed backends
        # (test stubs, third parties) may predate fetch_entry (a
        # load_entry that also reports decoded-cache telemetry) and
        # should_persist (the store tier policy)
        if self._backend is not None:
            resolved = self._backend
            self._fetch_entry = getattr(
                resolved,
                "fetch_entry",
                lambda kind, key: (resolved.load_entry(kind, key), 0),
            )
            self._should_persist = getattr(
                resolved, "should_persist", lambda kind, cost: True
            )
        # recency reordering only pays off once a table could actually
        # evict something hot; below half capacity a hit is left in place
        self._touch_floor = max(1, max_entries // 2)
        self.counters = CacheCounters()
        #: Approximate bytes held by all three tables.
        self.approx_bytes = 0
        # memo of stable_digest(base): the same base (statements, env,
        # data) is probed against hundreds of windows, and re-hashing
        # canonical statement forms per probe would dominate backend
        # lookups.  Value-keyed, so it is correct by construction.
        self._base_digests: dict[tuple, bytes] = {}
        # dicts preserve insertion order: pop + reinsert makes them LRUs
        self._exact: dict[tuple, _Entry] = {}
        self._terminal: dict[tuple, _Entry] = {}
        self._consistency: dict[tuple, tuple[int, int]] = {}
        self._tables = {
            "exact": self._exact,
            "terminal": self._terminal,
            "consistency": self._consistency,
        }

    def __len__(self) -> int:
        return len(self._exact) + len(self._terminal) + len(self._consistency)

    @property
    def backend(self):
        """The persistent backend behind this cache, if any."""
        return self._backend

    @property
    def persisted_bytes(self) -> int:
        """Approximate bytes held by the persistent backend (0 without one)."""
        return self._backend.persisted_bytes if self._backend is not None else 0

    # ------------------------------------------------------------------
    def get(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[tuple[tuple, Env]]:
        """The memoized ``(actions, final env)``, or ``None`` on a miss.

        Single-threaded composition of the two-phase lookup below —
        callers that hold a lock around the whole cache
        (:class:`SharedCacheSession`) instead call the phases directly
        and drop the lock for the backend I/O in between.
        """
        result, probe = self.lookup_memory(base, window_keys, budget, counters, session)
        if result is not None or probe is None:
            return result
        exact_payload, terminal_payload, served_bytes = self.probe_backend(probe)
        return self.promote_backend(
            probe, exact_payload, terminal_payload, counters, session, served_bytes
        )

    def lookup_memory(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> tuple[Optional[tuple[tuple, Env]], Optional["_BackendProbe"]]:
        """Phase 1 (under the shard lock): the in-memory probe.

        Returns ``(result, probe)``: a non-``None`` result is a counted
        hit; a non-``None`` probe means the persistent backend must
        still be consulted — the miss is *not* counted yet, that is
        :meth:`promote_backend`'s job, so each lookup counts exactly one
        hit or one miss whichever phase settles it.  Both ``None`` is a
        counted miss (no backend).
        """
        recorders = self._recorders(counters)
        exact_key = (base, window_keys, budget)
        entry = self._exact.get(exact_key)
        if entry is not None:
            if len(self._exact) >= self._touch_floor:
                self._touch(self._exact, exact_key)
            self._record_hit(recorders, "exact_hits", entry.owner, session)
            return (entry.actions, entry.env), None
        terminal_key = (base, window_keys[0])
        entry = self._terminal.get(terminal_key)
        if entry is not None and self._terminal_applies(entry, window_keys, budget):
            if len(self._terminal) >= self._touch_floor:
                self._touch(self._terminal, terminal_key)
            self._record_hit(recorders, "prefix_hits", entry.owner, session)
            return (entry.actions, entry.env), None
        if self._backend is None:
            for recorder in recorders:
                recorder.misses += 1
            return None, None
        # full in-memory miss: the backend may hold either kind from a
        # prior process.  An *inapplicable* in-memory terminal entry
        # only rules out the store's terminal copy (write-through keeps
        # them equal) — a persisted exact entry for this very window may
        # still exist, so only the terminal probe is skipped in that
        # case.  Digests are computed here, under the lock, because the
        # base-digest memo is shard state.
        probe = _BackendProbe(
            window_keys,
            budget,
            exact_key,
            terminal_key,
            self._store_digest("exact", base, window_keys, budget),
            None if entry is not None else self._store_digest("terminal", base, window_keys[0]),
        )
        return None, probe

    def probe_backend(self, probe: "_BackendProbe") -> tuple:
        """Phase 2a (no lock): read the store for a phase-1 miss.

        Touches only the backend (which synchronizes itself), never the
        tables — safe to run while other threads hold the shard lock.
        Returns ``(exact_payload, terminal_payload, served_bytes)``;
        ``served_bytes`` is nonzero when the returned payload came from
        the backend's decoded-entry cache (see
        :meth:`~repro.service.backends.CacheBackend.fetch_entry`).
        """
        exact_payload, served_bytes = self._fetch_entry(_EXACT, probe.exact_digest)
        if exact_payload is not None:
            return exact_payload, None, served_bytes
        if probe.terminal_digest is None:
            return None, None, 0
        terminal_payload, served_bytes = self._fetch_entry(
            _TERMINAL, probe.terminal_digest
        )
        return None, terminal_payload, served_bytes

    def promote_backend(
        self,
        probe: "_BackendProbe",
        exact_payload: Optional[tuple],
        terminal_payload: Optional[tuple],
        counters: Optional[CacheCounters] = None,
        session: int = 0,
        served_bytes: int = 0,
    ) -> Optional[tuple[tuple, Env]]:
        """Phase 2b (under the shard lock): promote and settle counting.

        Re-checks the in-memory tables first — while the lock was
        released another thread may have promoted (or recorded) the very
        entry, and a hit served from memory counts as a plain hit, not a
        warm one.  Otherwise the probed payload is promoted exactly as a
        locked warm start would have, or the miss is finally counted.
        ``served_bytes`` is the decoded-cache telemetry the probe
        reported; it counts here, where the recorders are known.
        """
        recorders = self._recorders(counters)
        if served_bytes:
            for recorder in recorders:
                recorder.decode_hits += 1
                recorder.decode_bytes += served_bytes
        entry = self._exact.get(probe.exact_key)
        if entry is not None:
            if len(self._exact) >= self._touch_floor:
                self._touch(self._exact, probe.exact_key)
            self._record_hit(recorders, "exact_hits", entry.owner, session)
            return entry.actions, entry.env
        entry = self._terminal.get(probe.terminal_key)
        if entry is not None and self._terminal_applies(
            entry, probe.window_keys, probe.budget
        ):
            if len(self._terminal) >= self._touch_floor:
                self._touch(self._terminal, probe.terminal_key)
            self._record_hit(recorders, "prefix_hits", entry.owner, session)
            return entry.actions, entry.env
        if exact_payload is not None:
            actions, env, _, _ = exact_payload
            self._insert(self._exact, probe.exact_key, _Entry(actions, env, None), ())
            self._record_hit(recorders, "exact_hits", 0, session, warm=True)
            _promotion_counter().labels(kind="exact").inc()
            return actions, env
        if terminal_payload is not None:
            actions, env, examined, exact_budget_ok = terminal_payload
            if examined is not None:  # corrupt/foreign payload: ignore
                promoted = _Entry(actions, env, examined, exact_budget_ok)
                # promote even when unusable for *this* lookup: the entry
                # is exactly what a local put would have recorded
                self._insert(self._terminal, probe.terminal_key, promoted, ())
                _promotion_counter().labels(kind="terminal").inc()
                if self._terminal_applies(promoted, probe.window_keys, probe.budget):
                    self._record_hit(recorders, "prefix_hits", 0, session, warm=True)
                    return actions, env
        for recorder in recorders:
            recorder.misses += 1
        return None

    @staticmethod
    def _terminal_applies(
        entry: _Entry, window_keys: tuple[int, ...], budget: int
    ) -> bool:
        # a budget exactly equal to the action count also replays
        # identically — but only when the recorded run bound nothing
        # after its last action (exact_budget_ok), since a capped run
        # halts there and its final env is the last-action env.
        # Continuation entries are not terminated runs — their recorded
        # prefix is mid-loop, so they never answer a full-result lookup.
        return (
            entry.continuation is None
            and len(entry.examined) <= len(window_keys)
            and (
                budget > len(entry.actions)
                or (budget == len(entry.actions) and entry.exact_budget_ok)
            )
            and window_keys[: len(entry.examined)] == entry.examined
        )

    def _store_digest(self, tag: str, base: tuple, *rest) -> bytes:
        """The backend address of a key, with the base digest memoized."""
        base_digest = self._base_digests.get(base)
        if base_digest is None:
            if len(self._base_digests) >= 4 * self.max_entries:
                self._base_digests.clear()
            base_digest = self._base_digests[base] = stable_digest(base)
        return stable_digest((tag, base_digest) + rest)

    @staticmethod
    def _record_hit(
        recorders: tuple,
        kind: str,
        owner: int,
        session: int,
        warm: bool = False,
    ) -> None:
        cross = owner and owner != session
        for recorder in recorders:
            recorder.hits += 1
            setattr(recorder, kind, getattr(recorder, kind) + 1)
            if cross:
                recorder.cross_session_hits += 1
            if warm:
                recorder.warm_hits += 1

    def put(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        actions: tuple,
        env: Env,
        exact_budget_ok: bool = False,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
        continuation: Optional[tuple] = None,
        cost: Optional[int] = None,
    ) -> None:
        """Record one execution outcome in both applicable tables.

        ``exact_budget_ok`` asserts the final env equals the env as of
        the last emitted action (see :class:`_Entry`); only the engine,
        which sees the evaluator's ``env_at_last_action``, can vouch for
        it, so it defaults to the conservative ``False``.

        ``continuation`` — ``(consumed, env, state)`` from the evaluator
        — marks a run that absorbed its window mid-loop.  It lands in
        the terminal slot (the run cannot also qualify as terminated)
        so later lookups over extended windows can resume instead of
        re-executing; see :meth:`get_continuation`.

        ``cost`` is an upper bound on the simulated actions needed to
        recompute this outcome (``None`` = unbounded/unknown).  It only
        feeds the backend's tier policy
        (:meth:`~repro.service.backends.CacheBackend.should_persist`) —
        the in-memory tables always record.
        """
        recorders = self._recorders(counters)
        self._insert(
            self._exact,
            (base, window_keys, budget),
            _Entry(actions, env, None, owner=session),
            recorders,
        )
        if self._backend is not None and self._should_persist(_EXACT, cost):
            self._backend.store_entry(
                _EXACT,
                self._store_digest("exact", base, window_keys, budget),
                actions,
                env,
                None,
                False,
            )
        count = len(actions)
        if count < len(window_keys) and count < budget:
            # terminated on its own terms: reusable on any extension of
            # the examined prefix (consumed snapshots + the final head)
            examined = window_keys[: count + 1]
            self._insert(
                self._terminal,
                (base, window_keys[0]),
                _Entry(actions, env, examined, exact_budget_ok, owner=session),
                recorders,
            )
            if self._backend is not None and self._should_persist(_TERMINAL, None):
                self._backend.store_entry(
                    _TERMINAL,
                    self._store_digest("terminal", base, window_keys[0]),
                    actions,
                    env,
                    examined,
                    exact_budget_ok,
                )
        elif continuation is not None and continuation[0] > 0:
            # absorbed mid-loop: record the resume point.  In-memory
            # only — the state tuple holds live Env/selector objects
            # that value-addressed backends cannot round-trip.
            consumed, cont_env, state = continuation
            self._insert(
                self._terminal,
                (base, window_keys[0]),
                _Entry(
                    actions[:consumed],
                    cont_env,
                    window_keys[:consumed],
                    owner=session,
                    continuation=state,
                ),
                recorders,
            )

    # ------------------------------------------------------------------
    def get_continuation(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[tuple[tuple, Env, tuple]]:
        """The stored resume point for this base/window, if usable.

        Returns ``(prefix actions, iteration-top env, state)`` when the
        terminal slot holds a continuation entry whose consumed prefix
        is a prefix of ``window_keys`` and whose prefix length leaves
        budget to spare — i.e. the caller can re-enter the loop over
        ``window[len(prefix):]`` instead of executing from scratch.
        Probed only *after* a full-result lookup missed (the miss is
        counted there; a resume adds to ``resume_hits`` alone).
        """
        entry = self._terminal.get((base, window_keys[0]))
        if entry is None or entry.continuation is None:
            return None
        consumed = len(entry.actions)
        if (
            consumed >= budget
            or len(window_keys) < consumed
            or window_keys[:consumed] != entry.examined
        ):
            return None
        if len(self._terminal) >= self._touch_floor:
            self._touch(self._terminal, (base, window_keys[0]))
        for recorder in self._recorders(counters):
            recorder.resume_hits += 1
        return entry.actions, entry.env, entry.continuation

    # ------------------------------------------------------------------
    def get_consistency(
        self,
        key: tuple,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[int]:
        """Memoized ``consistent_prefix_length`` result, or ``None``."""
        value, digest = self.lookup_consistency_memory(key, counters, session)
        if value is not None or digest is None:
            return value
        return self.promote_consistency(
            key, self._backend.load_consistency(digest), counters, session
        )

    def lookup_consistency_memory(
        self,
        key: tuple,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> tuple[Optional[int], Optional[bytes]]:
        """Phase 1 of the consistency lookup (same contract as
        :meth:`lookup_memory`): ``(value, pending store digest)``."""
        recorders = self._recorders(counters)
        hit = self._consistency.get(key)
        if hit is None:
            if self._backend is not None:
                return None, stable_digest(("consistency", key))
            for recorder in recorders:
                recorder.misses += 1
            return None, None
        if len(self._consistency) >= self._touch_floor:
            self._touch(self._consistency, key)
        self._record_hit(recorders, "consistency_hits", hit[1], session)
        return hit[0], None

    def promote_consistency(
        self,
        key: tuple,
        value: Optional[int],
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[int]:
        """Phase 2 (under the shard lock): promote and settle counting."""
        recorders = self._recorders(counters)
        hit = self._consistency.get(key)
        if hit is not None:  # promoted by a racing thread meanwhile
            if len(self._consistency) >= self._touch_floor:
                self._touch(self._consistency, key)
            self._record_hit(recorders, "consistency_hits", hit[1], session)
            return hit[0]
        if value is not None:
            self._insert_value("consistency", key, (value, 0), ())
            self._record_hit(recorders, "consistency_hits", 0, session, warm=True)
            return value
        for recorder in recorders:
            recorder.misses += 1
        return None

    def put_consistency(
        self,
        key: tuple,
        value: int,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> None:
        """Record one consistency-check outcome."""
        self._insert_value(
            "consistency", key, (value, session), self._recorders(counters)
        )
        if self._backend is not None:
            self._backend.store_consistency(
                stable_digest(("consistency", key)), value
            )

    # ------------------------------------------------------------------
    def _recorders(self, counters: Optional[CacheCounters]) -> tuple:
        """The cache's own counters, plus the caller's when distinct."""
        if counters is None or counters is self.counters:
            return (self.counters,)
        return (self.counters, counters)

    @staticmethod
    def _touch(table: dict, key: tuple) -> None:
        table[key] = table.pop(key)

    def _insert(
        self, table: dict, key: tuple, entry: _Entry, recorders: tuple
    ) -> None:
        name = "exact" if table is self._exact else "terminal"
        self._insert_value(name, key, entry, recorders)

    def _insert_value(
        self, name: str, key: tuple, value, recorders: Optional[tuple] = None
    ) -> None:
        # an explicitly empty recorder tuple (backend promotions) counts
        # nothing: the entry was not this process's traffic
        if recorders is None:
            recorders = (self.counters,)
        table = self._tables[name]
        if key in table:
            self.approx_bytes -= self._value_bytes(key, table.pop(key))
        elif len(table) >= self.max_entries:
            old_key = next(iter(table))
            self.approx_bytes -= self._value_bytes(old_key, table.pop(old_key))
            for recorder in recorders:
                recorder.evictions += 1
        table[key] = value
        self.approx_bytes += self._value_bytes(key, value)
        if self.max_bytes is not None and self.approx_bytes > self.max_bytes:
            self._enforce_bytes(name, key, recorders)

    def _enforce_bytes(self, fresh_name: str, fresh_key: tuple, recorders) -> None:
        """Evict until the byte threshold is respected.

        Deliberately per-table priority order, oldest within each: the
        exact table drains first (its entries are the most redundant —
        terminal entries cover their extensions), then terminal, then
        the cheap-to-recompute consistency memos.  Cross-table age is
        not tracked, so this is not a global LRU; under a byte budget
        dominated by one table, the earlier tables bear the eviction
        pressure first by design.

        The just-inserted entry is never the victim: an entry larger
        than the whole budget parks the cache one entry over threshold
        until the next insert ages it out, instead of turning the cache
        into a sieve that drops everything it is handed.
        """
        while self.approx_bytes > self.max_bytes:
            victim = None
            for name, table in self._tables.items():
                for key in table:  # first = oldest inserted
                    if name == fresh_name and key == fresh_key:
                        continue  # spare the entry being inserted
                    victim = (name, key)
                    break
                if victim is not None:
                    break
            if victim is None:
                return  # only the fresh entry remains
            name, key = victim
            table = self._tables[name]
            self.approx_bytes -= self._value_bytes(key, table.pop(key))
            for recorder in recorders:
                recorder.evictions += 1

    @staticmethod
    def _value_bytes(key: tuple, value) -> int:
        if isinstance(value, _Entry):
            return _entry_bytes(key, value)
        return _consistency_bytes(key, value)


# ----------------------------------------------------------------------
# Process-level shared cache
# ----------------------------------------------------------------------

#: Approximate bytes per interned DOM node: the node object, its attrs
#: dict, text, child list slot, and its share of the snapshot's index
#: buckets (interned snapshots and their indexes dominate the shared
#: cache's resident footprint, so this coarse figure is what the
#: eviction telemetry reports on).
_NODE_BYTES = 320


def _freeze_json(value) -> tuple:
    """A hashable, exact canonical form of a JSON-like value."""
    if isinstance(value, dict):
        return ("d", tuple((key, _freeze_json(item)) for key, item in sorted(value.items())))
    if isinstance(value, list):
        return ("l", tuple(_freeze_json(item) for item in value))
    return ("v", value)

_session_tokens = itertools.count(1)


class _Shard:
    """One lock-striped slice of a shared cache."""

    __slots__ = ("lock", "cache")

    def __init__(
        self, max_entries: int, max_bytes: Optional[int], backend
    ) -> None:
        self.lock = threading.Lock()
        self.cache = ExecutionCache(max_entries, max_bytes=max_bytes, backend=backend)


class SharedExecutionCache:
    """A process-level execution cache shared by concurrent sessions.

    The three memo tables are striped over ``shards`` independent
    :class:`ExecutionCache` instances, each behind its own lock; a key
    always hashes to the same shard, so the per-table LRU discipline and
    byte accounting carry over per shard (``max_bytes``, when given, is
    split evenly across shards).  Value-addressed keys (alpha-canonical
    statements, env fingerprints, snapshot content digests) make entries
    session-agnostic — the only per-session piece is telemetry, which
    lives on the :class:`SharedCacheSession` views handed out by
    :meth:`session`.  An optional persistent ``backend`` is shared by
    all shards, extending the same sharing across worker processes.

    Snapshot interning
        :meth:`intern_snapshots` maps structurally equal snapshot roots
        onto one canonical root per structure, so sessions recording the
        same site share ``SnapshotIndex`` instances (with their
        ``enum_memo``).  The interning table is keyed by
        :meth:`repro.dom.node.DOMNode.content_key` — the same
        value-addressed digest the execution keys use (collisions are
        cryptographically negligible) — and a bounded LRU: evicting a
        canonical root only forfeits future index sharing, since
        execution entries reference snapshots by digest, never by
        object.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        shards: int = 8,
        max_snapshots: int = 512,
        max_bytes: Optional[int] = None,
        backend=None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        per_shard = max(1, max_entries // shards)
        per_shard_bytes = None if max_bytes is None else max(1, max_bytes // shards)
        self._shards = tuple(
            _Shard(per_shard, per_shard_bytes, backend) for _ in range(shards)
        )
        self._backend = backend
        self.backend_name = backend.name if backend is not None else "memory"
        self.max_snapshots = max_snapshots
        self._intern_lock = threading.Lock()
        # content key -> canonical root (insertion-ordered: an LRU)
        self._canonical: dict[int, DOMNode] = {}
        # id(root) -> (root pinned so its id stays valid, canonical);
        # bounded separately — a fast path around re-keying structures
        self._known: dict[int, tuple[DOMNode, DOMNode]] = {}
        self._known_limit = max(64, 8 * max_snapshots)
        self._node_counts: dict[int, int] = {}
        # data-source interning (same discipline as snapshots): frozen
        # JSON value -> canonical DataSource, plus an id fast path
        self._data_canonical: dict[tuple, object] = {}
        self._data_known: dict[int, tuple] = {}
        #: Approximate bytes held by the interned (canonical) snapshots.
        self.interned_bytes = 0
        #: Interning calls answered with an *already canonical* root
        #: recorded by some other snapshot object — cross-session reuse.
        self.intern_hits = 0
        #: Canonical snapshots dropped by the interning LRU.
        self.snapshot_evictions = 0

    # ------------------------------------------------------------------
    def session(self) -> "SharedCacheSession":
        """A per-session view with its own counters and session token."""
        return SharedCacheSession(self, next(_session_tokens))

    def _shard_for(self, key: tuple) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    # ------------------------------------------------------------------
    # Aggregate telemetry
    # ------------------------------------------------------------------
    def counters(self) -> CacheCounters:
        """Global shard-level counters merged into one snapshot."""
        merged = CacheCounters()
        for shard in self._shards:
            with shard.lock:
                merged.merge(shard.cache.counters)
        return merged

    @property
    def approx_bytes(self) -> int:
        """Approximate bytes held by all shards' tables, plus the
        enumeration memos pinned on the interned snapshots' indexes
        (they are cache state with the same lifetime concerns, so they
        count toward the same footprint)."""
        return (
            sum(shard.cache.approx_bytes for shard in self._shards)
            + self.enum_bytes
        )

    @property
    def enum_bytes(self) -> int:
        """Approximate bytes of the interned snapshots' enumeration memos."""
        total = 0
        with self._intern_lock:
            roots = list(self._canonical.values())
        for root in roots:
            index = root._snapshot_index
            if index is not None:
                total += index.enum_memo.approx_bytes
        return total

    @property
    def backend(self):
        """The persistent backend shared by the shards, if any."""
        return self._backend

    @property
    def persisted_bytes(self) -> int:
        """Approximate bytes held by the persistent backend (0 without one)."""
        backend = self._backend
        if backend is None or not backend.persistent:
            return 0
        return backend.persisted_bytes

    @property
    def interned_snapshots(self) -> int:
        """Number of canonical snapshots currently interned."""
        return len(self._canonical)

    def __len__(self) -> int:
        return sum(len(shard.cache) for shard in self._shards)

    def clear(self) -> None:
        """Drop every entry and interned snapshot (telemetry included)."""
        for shard in self._shards:
            with shard.lock:
                fresh = ExecutionCache(
                    shard.cache.max_entries,
                    max_bytes=shard.cache.max_bytes,
                    backend=self._backend,
                )
                shard.cache = fresh
        with self._intern_lock:
            self._canonical.clear()
            self._known.clear()
            self._node_counts.clear()
            self._data_canonical.clear()
            self._data_known.clear()
            self.interned_bytes = 0
            self.intern_hits = 0
            self.snapshot_evictions = 0

    # ------------------------------------------------------------------
    # Snapshot interning
    # ------------------------------------------------------------------
    def intern_snapshot(self, root: DOMNode) -> DOMNode:
        """The canonical root structurally equal to ``root``.

        The first caller's root becomes canonical; later structurally
        equal roots — typically other sessions recording the same site —
        are mapped onto it.  Unfrozen snapshots are returned unchanged
        (they may still mutate, so sharing would be unsound).
        """
        if not root.frozen:
            return root
        known = self._known.get(id(root))
        if known is not None and known[0] is root:
            return known[1]
        key = root.content_key()  # pure; computed outside the lock
        with self._intern_lock:
            canonical = self._canonical.get(key)
            if canonical is None:
                if len(self._canonical) >= self.max_snapshots:
                    old_key = next(iter(self._canonical))
                    del self._canonical[old_key]
                    self.interned_bytes -= _NODE_BYTES * self._node_counts.pop(old_key, 0)
                    self.snapshot_evictions += 1
                canonical = root
                self._canonical[key] = canonical
                nodes = sum(1 for _ in root.iter_subtree())
                self._node_counts[key] = nodes
                self.interned_bytes += _NODE_BYTES * nodes
            else:
                self._canonical[key] = self._canonical.pop(key)  # LRU touch
                if canonical is not root:
                    self.intern_hits += 1
            if len(self._known) >= self._known_limit:
                del self._known[next(iter(self._known))]
            self._known[id(root)] = (root, canonical)
        return canonical

    def intern_snapshots(self, snapshots: Sequence[DOMNode]) -> list[DOMNode]:
        """Intern a whole recorded DOM trace (one canonical root each)."""
        return [self.intern_snapshot(root) for root in snapshots]

    # ------------------------------------------------------------------
    # Data-source interning
    # ------------------------------------------------------------------
    def intern_data(self, source):
        """The canonical :class:`~repro.lang.data.DataSource` equal to ``source``.

        Execution keys already address the source by content digest
        (:func:`repro.engine.keys.data_key`), so interning is purely a
        memory optimization: sessions that each loaded the same JSON
        share one wrapper object (and its memoized digest) instead of
        keeping duplicates alive.
        """
        known = self._data_known.get(id(source))
        if known is not None and known[0] is source:
            return known[1]
        key = _freeze_json(source.value)  # pure; computed outside the lock
        with self._intern_lock:
            canonical = self._data_canonical.get(key)
            if canonical is None:
                if len(self._data_canonical) >= self.max_snapshots:
                    del self._data_canonical[next(iter(self._data_canonical))]
                canonical = source
                self._data_canonical[key] = canonical
            if len(self._data_known) >= self._known_limit:
                del self._data_known[next(iter(self._data_known))]
            self._data_known[id(source)] = (source, canonical)
        return canonical


class SharedCacheSession:
    """One session's view of a :class:`SharedExecutionCache`.

    Implements the same lookup surface as :class:`ExecutionCache` (the
    engine cannot tell them apart) but routes every call through the
    owning shard's lock and records telemetry into this session's
    :attr:`counters` — or into an explicitly passed per-worker counter
    set, which the validation scheduler merges back at join.
    """

    __slots__ = ("_shared", "_token", "counters")

    def __init__(self, shared: SharedExecutionCache, token: int) -> None:
        self._shared = shared
        self._token = token
        self.counters = CacheCounters()

    @property
    def shared(self) -> SharedExecutionCache:
        """The process-level cache behind this view."""
        return self._shared

    def __len__(self) -> int:
        return len(self._shared)

    @property
    def approx_bytes(self) -> int:
        """Approximate bytes of the shared tables (all sessions)."""
        return self._shared.approx_bytes

    @property
    def backend_name(self) -> str:
        """Name of the backend behind the shared cache."""
        return self._shared.backend_name

    @property
    def persisted_bytes(self) -> int:
        """Approximate bytes held by the shared cache's backend."""
        return self._shared.persisted_bytes

    # ------------------------------------------------------------------
    def get(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
    ) -> Optional[tuple[tuple, Env]]:
        shard = self._shared._shard_for(base)
        recorder = self.counters if counters is None else counters
        with shard.lock:
            result, probe = shard.cache.lookup_memory(
                base, window_keys, budget, counters=recorder, session=self._token
            )
        if result is not None or probe is None:
            return result
        # two-phase backend lookup: the SQLite read + JSON decode runs
        # with *no* shard lock held, so cold-phase same-shard lookups
        # overlap their I/O instead of serializing behind it; the
        # promote step re-takes the lock, re-checks memory (a racing
        # thread may have promoted first), and settles hit/miss counting
        # exactly once per lookup.
        exact_payload, terminal_payload, served_bytes = shard.cache.probe_backend(probe)
        with shard.lock:
            return shard.cache.promote_backend(
                probe,
                exact_payload,
                terminal_payload,
                counters=recorder,
                session=self._token,
                served_bytes=served_bytes,
            )

    def put(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        actions: tuple,
        env: Env,
        exact_budget_ok: bool = False,
        counters: Optional[CacheCounters] = None,
        continuation: Optional[tuple] = None,
        cost: Optional[int] = None,
    ) -> None:
        shard = self._shared._shard_for(base)
        with shard.lock:
            shard.cache.put(
                base,
                window_keys,
                budget,
                actions,
                env,
                exact_budget_ok,
                counters=self.counters if counters is None else counters,
                session=self._token,
                continuation=continuation,
                cost=cost,
            )

    def get_continuation(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
    ) -> Optional[tuple[tuple, Env, tuple]]:
        shard = self._shared._shard_for(base)
        with shard.lock:
            return shard.cache.get_continuation(
                base,
                window_keys,
                budget,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )

    def get_consistency(
        self, key: tuple, counters: Optional[CacheCounters] = None
    ) -> Optional[int]:
        shard = self._shared._shard_for(key)
        recorder = self.counters if counters is None else counters
        with shard.lock:
            value, digest = shard.cache.lookup_consistency_memory(
                key, counters=recorder, session=self._token
            )
        if value is not None or digest is None:
            return value
        # same two-phase discipline as `get`: store I/O outside the lock
        loaded = shard.cache.backend.load_consistency(digest)
        with shard.lock:
            return shard.cache.promote_consistency(
                key, loaded, counters=recorder, session=self._token
            )

    def put_consistency(
        self,
        key: tuple,
        value: int,
        counters: Optional[CacheCounters] = None,
    ) -> None:
        shard = self._shared._shard_for(key)
        with shard.lock:
            shard.cache.put_consistency(
                key,
                value,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )


# ----------------------------------------------------------------------
# The process-wide instance
# ----------------------------------------------------------------------
_PROCESS_CACHE: Optional[SharedExecutionCache] = None
_PROCESS_LOCK = threading.Lock()


def process_cache(backend_name: Optional[str] = None) -> SharedExecutionCache:
    """The lazily created process-wide :class:`SharedExecutionCache`.

    Sized by ``REPRO_SHARED_CACHE_ENTRIES`` (default 65536 across all
    shards), ``REPRO_CACHE_SHARDS`` (default 8),
    ``REPRO_SHARED_CACHE_SNAPSHOTS`` (default 512 interned snapshots),
    and ``REPRO_SHARED_CACHE_BYTES`` (optional byte threshold across all
    shards; unset = count-bounded only).  The persistent backend is
    resolved at *first creation* — from ``backend_name`` when the first
    caller passes one (the engine passes its config's resolved backend),
    else from ``REPRO_CACHE_BACKEND`` (see
    :func:`repro.service.backends.resolve_backend`).  Later callers
    share the instance as-is: one process, one backend.
    """
    global _PROCESS_CACHE
    with _PROCESS_LOCK:
        if _PROCESS_CACHE is None:
            from repro.service.backends import resolve_backend

            raw_bytes = os.environ.get("REPRO_SHARED_CACHE_BYTES", "").strip()
            _PROCESS_CACHE = SharedExecutionCache(
                max_entries=int(os.environ.get("REPRO_SHARED_CACHE_ENTRIES", "65536")),
                shards=int(os.environ.get("REPRO_CACHE_SHARDS", "8")),
                max_snapshots=int(os.environ.get("REPRO_SHARED_CACHE_SNAPSHOTS", "512")),
                max_bytes=int(raw_bytes) if raw_bytes else None,
                backend=resolve_backend(backend_name),
            )
        return _PROCESS_CACHE


def reset_process_cache() -> None:
    """Drop the process-wide cache (benchmark/test isolation)."""
    global _PROCESS_CACHE
    with _PROCESS_LOCK:
        _PROCESS_CACHE = None
