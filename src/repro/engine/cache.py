"""Memoization of simulated execution results.

The speculate-and-validate loop executes the *same* statements over the
*same* DOM windows many times: every popped worklist tuple re-validates
candidates its siblings already produced, every pushed tuple re-runs its
trailing loop for the generalization check, and each incremental
``synthesize`` call re-executes stored tuples over windows that extend
the previous call's.  :class:`ExecutionCache` makes each distinct
execution happen once, through two tables:

Exact table
    Keyed on ``(statements, env, data, window snapshots, action
    budget)``.  Hits replay the recorded outcome verbatim.

Terminal table
    An execution that ends with snapshots *and* budget to spare
    terminated on its own terms — every loop-continuation and validity
    decision was made on a snapshot it actually examined, namely the
    first ``len(actions) + 1`` of its window.  Its outcome is therefore
    identical on **any** window extending that examined prefix, which is
    exactly what the next incremental call presents.  The terminal table
    keys such results by ``(statements, env, data, first snapshot)`` and
    matches by examined-prefix comparison.

Keys use value identity for statements (alpha-canonical form) and
environments, and object identity for snapshots and the data source —
snapshots are immutable and shared across calls, and each entry pins its
identity-keyed referents so ids cannot be recycled.  Both tables are
bounded LRUs; hit/miss/eviction counters feed
:class:`repro.synth.synthesizer.SynthesisStats`.

Process-level sharing
---------------------
:class:`SharedExecutionCache` promotes the per-engine cache to a
process-level one: the three tables are *lock-striped* across shards
(keyed by the same content-addressed keys, so a key always lands on the
same shard), and a *snapshot-interning* table maps structurally equal
snapshots from different sessions onto one canonical root — making the
id-keyed window keys, the per-snapshot :class:`~repro.engine.index.
SnapshotIndex` (with its ``enum_memo``), and therefore every memoized
execution shareable across concurrent sessions over the same site.
Engines join through :meth:`SharedExecutionCache.session`, which hands
out a :class:`SharedCacheSession` view with per-session counters (so
interleaved sessions never steal each other's telemetry) and a
cross-session hit count.  :func:`process_cache` holds the process-wide
instance behind ``SynthesisConfig.shared_cache`` /
``REPRO_SHARED_CACHE=1``.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.semantics.env import Env


@dataclass
class CacheCounters:
    """Hit/miss/eviction telemetry.

    ``hits = exact_hits + prefix_hits + consistency_hits`` — the first
    two are execution lookups, the third is the consistency-check memo
    that rides the same cache.  ``cross_session_hits`` counts hits whose
    entry was recorded by a *different* session of a shared cache (it is
    always 0 for a private cache).  Counter objects are merged, not
    shared: each validation worker records into its own instance and the
    scheduler folds them together at join (:meth:`merge`), so the totals
    stay exact under concurrent validation.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    exact_hits: int = 0
    prefix_hits: int = 0
    consistency_hits: int = 0
    cross_session_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheCounters") -> None:
        """Fold another counter set into this one (per-worker join)."""
        for field in fields(CacheCounters):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))


class _Entry:
    """One memoized outcome.  ``pins`` keeps id-keyed referents alive.

    ``exact_budget_ok`` marks terminal entries whose recorded run made
    no environment binding after its last emitted action, so the
    outcome also stands in for a run whose budget *equals* the action
    count (such a run halts right after that action and can never bind
    again).  ``owner`` is the session token that recorded the entry
    (0 for private caches) — hits from other sessions count as
    cross-session reuse.
    """

    __slots__ = ("actions", "env", "examined", "pins", "exact_budget_ok", "owner")

    def __init__(
        self,
        actions: tuple,
        env: Env,
        examined: Optional[tuple[int, ...]],
        pins: tuple,
        exact_budget_ok: bool = False,
        owner: int = 0,
    ) -> None:
        self.actions = actions
        self.env = env
        self.examined = examined
        self.pins = pins
        self.exact_budget_ok = exact_budget_ok
        self.owner = owner


#: Fixed per-entry overhead estimate: the ``_Entry`` object, its dict
#: slot, and the key tuple's skeleton.
_ENTRY_OVERHEAD = 200
#: Approximate bytes per element of the variable-length parts (an action
#: object share, a pinned reference, a key id).
_PER_ITEM = 56


def _entry_bytes(key: tuple, entry: _Entry) -> int:
    """Deterministic size estimate of one execution entry (bytes)."""
    size = _ENTRY_OVERHEAD + _PER_ITEM * len(entry.actions) + 8 * len(entry.pins)
    if entry.examined is not None:
        size += 8 * len(entry.examined)
    for part in key:
        if type(part) is tuple:
            size += 8 * len(part)
    return size


def _consistency_bytes(key: tuple, value: tuple) -> int:
    """Deterministic size estimate of one consistency-memo entry."""
    size = _ENTRY_OVERHEAD
    for part in key:
        if type(part) is tuple:
            size += 8 * len(part)
    for pin in value[1]:
        if type(pin) is tuple:
            size += 8 * len(pin)
    return size


class ExecutionCache:
    """Bounded LRU over execution outcomes (see the module docstring).

    ``base`` below is the window-independent part of the key:
    ``(statements key, env key, data key)``.  ``window_ids`` is the
    window's snapshots by ``id``; ``budget`` the effective action budget
    (already clamped to the window length by the engine).

    Lookups and inserts accept an optional per-caller ``counters`` —
    validation workers and session views pass their own — and a
    ``session`` token identifying the caller of a shared cache.  The
    cache's own :attr:`counters` *always* record (they are the
    shard-level aggregate); a passed recorder records additionally, so
    per-session and global telemetry stay reconciled.  A *plain*
    ``ExecutionCache`` is single-threaded by design — concurrent access
    must go through :class:`SharedExecutionCache`, whose shards wrap
    each instance in a lock.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("cache size must be positive")
        self.max_entries = max_entries
        # recency reordering only pays off once a table could actually
        # evict something hot; below half capacity a hit is left in place
        self._touch_floor = max(1, max_entries // 2)
        self.counters = CacheCounters()
        #: Approximate bytes held by all three tables (entries + pins
        #: they uniquely carry; interned snapshots are accounted by the
        #: shared cache, which owns them).
        self.approx_bytes = 0
        # dicts preserve insertion order: pop + reinsert makes them LRUs
        self._exact: dict[tuple, _Entry] = {}
        self._terminal: dict[tuple, _Entry] = {}
        self._consistency: dict[tuple, tuple[int, tuple]] = {}

    def __len__(self) -> int:
        return len(self._exact) + len(self._terminal) + len(self._consistency)

    # ------------------------------------------------------------------
    def get(
        self,
        base: tuple,
        window_ids: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[tuple[tuple, Env]]:
        """The memoized ``(actions, final env)``, or ``None`` on a miss."""
        recorders = self._recorders(counters)
        exact_key = (base, window_ids, budget)
        entry = self._exact.get(exact_key)
        if entry is not None:
            if len(self._exact) >= self._touch_floor:
                self._touch(self._exact, exact_key)
            cross = entry.owner and entry.owner != session
            for recorder in recorders:
                recorder.hits += 1
                recorder.exact_hits += 1
                if cross:
                    recorder.cross_session_hits += 1
            return entry.actions, entry.env
        terminal_key = (base, window_ids[0])
        entry = self._terminal.get(terminal_key)
        if (
            entry is not None
            and len(entry.examined) <= len(window_ids)
            # a budget exactly equal to the action count also replays
            # identically — but only when the recorded run bound nothing
            # after its last action (exact_budget_ok), since a capped
            # run halts there and its final env is the last-action env
            and (
                budget > len(entry.actions)
                or (budget == len(entry.actions) and entry.exact_budget_ok)
            )
            and window_ids[: len(entry.examined)] == entry.examined
        ):
            if len(self._terminal) >= self._touch_floor:
                self._touch(self._terminal, terminal_key)
            cross = entry.owner and entry.owner != session
            for recorder in recorders:
                recorder.hits += 1
                recorder.prefix_hits += 1
                if cross:
                    recorder.cross_session_hits += 1
            return entry.actions, entry.env
        for recorder in recorders:
            recorder.misses += 1
        return None

    def put(
        self,
        base: tuple,
        window_ids: tuple[int, ...],
        budget: int,
        actions: tuple,
        env: Env,
        pins: tuple,
        exact_budget_ok: bool = False,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> None:
        """Record one execution outcome in both applicable tables.

        ``exact_budget_ok`` asserts the final env equals the env as of
        the last emitted action (see :class:`_Entry`); only the engine,
        which sees the evaluator's ``env_at_last_action``, can vouch for
        it, so it defaults to the conservative ``False``.
        """
        recorders = self._recorders(counters)
        self._insert(
            self._exact,
            (base, window_ids, budget),
            _Entry(actions, env, None, pins, owner=session),
            recorders,
        )
        count = len(actions)
        if count < len(window_ids) and count < budget:
            # terminated on its own terms: reusable on any extension of
            # the examined prefix (consumed snapshots + the final head)
            examined = window_ids[: count + 1]
            self._insert(
                self._terminal,
                (base, window_ids[0]),
                _Entry(actions, env, examined, pins, exact_budget_ok, owner=session),
                recorders,
            )

    # ------------------------------------------------------------------
    def get_consistency(
        self,
        key: tuple,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> Optional[int]:
        """Memoized ``consistent_prefix_length`` result, or ``None``."""
        recorders = self._recorders(counters)
        hit = self._consistency.get(key)
        if hit is None:
            for recorder in recorders:
                recorder.misses += 1
            return None
        if len(self._consistency) >= self._touch_floor:
            self._touch(self._consistency, key)
        owner = hit[2]
        cross = owner and owner != session
        for recorder in recorders:
            recorder.hits += 1
            recorder.consistency_hits += 1
            if cross:
                recorder.cross_session_hits += 1
        return hit[0]

    def put_consistency(
        self,
        key: tuple,
        value: int,
        pins: tuple,
        counters: Optional[CacheCounters] = None,
        session: int = 0,
    ) -> None:
        """Record one consistency-check outcome."""
        self._insert_value(
            self._consistency, key, (value, pins, session), self._recorders(counters)
        )

    # ------------------------------------------------------------------
    def _recorders(self, counters: Optional[CacheCounters]) -> tuple:
        """The cache's own counters, plus the caller's when distinct."""
        if counters is None or counters is self.counters:
            return (self.counters,)
        return (self.counters, counters)

    @staticmethod
    def _touch(table: dict, key: tuple) -> None:
        table[key] = table.pop(key)

    def _insert(
        self, table: dict, key: tuple, entry: _Entry, recorders: tuple
    ) -> None:
        self._insert_value(table, key, entry, recorders)

    def _insert_value(
        self, table: dict, key: tuple, value, recorders: Optional[tuple] = None
    ) -> None:
        if recorders is None:
            recorders = (self.counters,)
        if key in table:
            self.approx_bytes -= self._value_bytes(key, table.pop(key))
        elif len(table) >= self.max_entries:
            old_key = next(iter(table))
            self.approx_bytes -= self._value_bytes(old_key, table.pop(old_key))
            for recorder in recorders:
                recorder.evictions += 1
        table[key] = value
        self.approx_bytes += self._value_bytes(key, value)

    @staticmethod
    def _value_bytes(key: tuple, value) -> int:
        if isinstance(value, _Entry):
            return _entry_bytes(key, value)
        return _consistency_bytes(key, value)


# ----------------------------------------------------------------------
# Process-level shared cache
# ----------------------------------------------------------------------

#: Approximate bytes per interned DOM node: the node object, its attrs
#: dict, text, child list slot, and its share of the snapshot's index
#: buckets (snapshots pinned by entries dominate the cache's footprint,
#: so this coarse figure is what the eviction telemetry reports on).
_NODE_BYTES = 320


def _freeze_json(value) -> tuple:
    """A hashable, exact canonical form of a JSON-like value."""
    if isinstance(value, dict):
        return ("d", tuple((key, _freeze_json(item)) for key, item in sorted(value.items())))
    if isinstance(value, list):
        return ("l", tuple(_freeze_json(item) for item in value))
    return ("v", value)

_session_tokens = itertools.count(1)


class _Shard:
    """One lock-striped slice of a shared cache."""

    __slots__ = ("lock", "cache")

    def __init__(self, max_entries: int) -> None:
        self.lock = threading.Lock()
        self.cache = ExecutionCache(max_entries)


class SharedExecutionCache:
    """A process-level execution cache shared by concurrent sessions.

    The three memo tables are striped over ``shards`` independent
    :class:`ExecutionCache` instances, each behind its own lock; a key
    always hashes to the same shard, so the per-table LRU discipline and
    byte accounting carry over per shard.  Content-addressed keys
    (alpha-canonical statements, env fingerprints, snapshot ids) make
    entries session-agnostic — the only per-session piece is telemetry,
    which lives on the :class:`SharedCacheSession` views handed out by
    :meth:`session`.

    Snapshot interning
        :meth:`intern_snapshots` maps structurally equal snapshot roots
        onto one canonical root per structure, so sessions recording the
        same site share ``SnapshotIndex`` instances (with their
        ``enum_memo``) and, through the now-identical window id-keys,
        each other's execution entries.  The interning table is an exact
        map keyed by :meth:`repro.dom.node.DOMNode.structural_key` (no
        fingerprint collisions possible) and a bounded LRU: evicting a
        canonical root only forfeits future sharing — entries that pinned
        it keep replaying correctly.
    """

    def __init__(
        self,
        max_entries: int = 65536,
        shards: int = 8,
        max_snapshots: int = 512,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        per_shard = max(1, max_entries // shards)
        self._shards = tuple(_Shard(per_shard) for _ in range(shards))
        self.max_snapshots = max_snapshots
        self._intern_lock = threading.Lock()
        # structural key -> canonical root (insertion-ordered: an LRU)
        self._canonical: dict[tuple, DOMNode] = {}
        # id(root) -> (root pinned so its id stays valid, canonical);
        # bounded separately — a fast path around re-keying structures
        self._known: dict[int, tuple[DOMNode, DOMNode]] = {}
        self._known_limit = max(64, 8 * max_snapshots)
        self._node_counts: dict[tuple, int] = {}
        # data-source interning (same discipline as snapshots): frozen
        # JSON value -> canonical DataSource, plus an id fast path
        self._data_canonical: dict[tuple, object] = {}
        self._data_known: dict[int, tuple] = {}
        #: Approximate bytes held by the interned (canonical) snapshots.
        self.interned_bytes = 0
        #: Interning calls answered with an *already canonical* root
        #: recorded by some other snapshot object — cross-session reuse.
        self.intern_hits = 0
        #: Canonical snapshots dropped by the interning LRU.
        self.snapshot_evictions = 0

    # ------------------------------------------------------------------
    def session(self) -> "SharedCacheSession":
        """A per-session view with its own counters and session token."""
        return SharedCacheSession(self, next(_session_tokens))

    def _shard_for(self, key: tuple) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    # ------------------------------------------------------------------
    # Aggregate telemetry
    # ------------------------------------------------------------------
    def counters(self) -> CacheCounters:
        """Global shard-level counters merged into one snapshot."""
        merged = CacheCounters()
        for shard in self._shards:
            with shard.lock:
                merged.merge(shard.cache.counters)
        return merged

    @property
    def approx_bytes(self) -> int:
        """Approximate bytes held by all shards' tables."""
        return sum(shard.cache.approx_bytes for shard in self._shards)

    @property
    def interned_snapshots(self) -> int:
        """Number of canonical snapshots currently interned."""
        return len(self._canonical)

    def __len__(self) -> int:
        return sum(len(shard.cache) for shard in self._shards)

    def clear(self) -> None:
        """Drop every entry and interned snapshot (telemetry included)."""
        for shard in self._shards:
            with shard.lock:
                fresh = ExecutionCache(shard.cache.max_entries)
                shard.cache = fresh
        with self._intern_lock:
            self._canonical.clear()
            self._known.clear()
            self._node_counts.clear()
            self._data_canonical.clear()
            self._data_known.clear()
            self.interned_bytes = 0
            self.intern_hits = 0
            self.snapshot_evictions = 0

    # ------------------------------------------------------------------
    # Snapshot interning
    # ------------------------------------------------------------------
    def intern_snapshot(self, root: DOMNode) -> DOMNode:
        """The canonical root structurally equal to ``root``.

        The first caller's root becomes canonical; later structurally
        equal roots — typically other sessions recording the same site —
        are mapped onto it.  Unfrozen snapshots are returned unchanged
        (they may still mutate, so sharing would be unsound).
        """
        if not root.frozen:
            return root
        known = self._known.get(id(root))
        if known is not None and known[0] is root:
            return known[1]
        key = root.structural_key()  # pure; computed outside the lock
        with self._intern_lock:
            canonical = self._canonical.get(key)
            if canonical is None:
                if len(self._canonical) >= self.max_snapshots:
                    old_key = next(iter(self._canonical))
                    del self._canonical[old_key]
                    self.interned_bytes -= _NODE_BYTES * self._node_counts.pop(old_key, 0)
                    self.snapshot_evictions += 1
                canonical = root
                self._canonical[key] = canonical
                nodes = sum(1 for _ in root.iter_subtree())
                self._node_counts[key] = nodes
                self.interned_bytes += _NODE_BYTES * nodes
            else:
                self._canonical[key] = self._canonical.pop(key)  # LRU touch
                if canonical is not root:
                    self.intern_hits += 1
            if len(self._known) >= self._known_limit:
                del self._known[next(iter(self._known))]
            self._known[id(root)] = (root, canonical)
        return canonical

    def intern_snapshots(self, snapshots: Sequence[DOMNode]) -> list[DOMNode]:
        """Intern a whole recorded DOM trace (one canonical root each)."""
        return [self.intern_snapshot(root) for root in snapshots]

    # ------------------------------------------------------------------
    # Data-source interning
    # ------------------------------------------------------------------
    def intern_data(self, source):
        """The canonical :class:`~repro.lang.data.DataSource` equal to ``source``.

        Execution keys address the data source by ``id``, so two
        sessions that each loaded the same JSON would never share
        entries; interning by the frozen value restores content
        addressing.  (The consistency memo stays id-keyed on *actions*
        and only shares between sessions that share recording objects —
        execution sharing, the expensive part, does not depend on it.)
        """
        known = self._data_known.get(id(source))
        if known is not None and known[0] is source:
            return known[1]
        key = _freeze_json(source.value)  # pure; computed outside the lock
        with self._intern_lock:
            canonical = self._data_canonical.get(key)
            if canonical is None:
                if len(self._data_canonical) >= self.max_snapshots:
                    del self._data_canonical[next(iter(self._data_canonical))]
                canonical = source
                self._data_canonical[key] = canonical
            if len(self._data_known) >= self._known_limit:
                del self._data_known[next(iter(self._data_known))]
            self._data_known[id(source)] = (source, canonical)
        return canonical


class SharedCacheSession:
    """One session's view of a :class:`SharedExecutionCache`.

    Implements the same lookup surface as :class:`ExecutionCache` (the
    engine cannot tell them apart) but routes every call through the
    owning shard's lock and records telemetry into this session's
    :attr:`counters` — or into an explicitly passed per-worker counter
    set, which the validation scheduler merges back at join.
    """

    __slots__ = ("_shared", "_token", "counters")

    def __init__(self, shared: SharedExecutionCache, token: int) -> None:
        self._shared = shared
        self._token = token
        self.counters = CacheCounters()

    @property
    def shared(self) -> SharedExecutionCache:
        """The process-level cache behind this view."""
        return self._shared

    def __len__(self) -> int:
        return len(self._shared)

    @property
    def approx_bytes(self) -> int:
        """Approximate bytes of the shared tables (all sessions)."""
        return self._shared.approx_bytes

    # ------------------------------------------------------------------
    def get(
        self,
        base: tuple,
        window_ids: tuple[int, ...],
        budget: int,
        counters: Optional[CacheCounters] = None,
    ) -> Optional[tuple[tuple, Env]]:
        shard = self._shared._shard_for(base)
        with shard.lock:
            return shard.cache.get(
                base,
                window_ids,
                budget,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )

    def put(
        self,
        base: tuple,
        window_ids: tuple[int, ...],
        budget: int,
        actions: tuple,
        env: Env,
        pins: tuple,
        exact_budget_ok: bool = False,
        counters: Optional[CacheCounters] = None,
    ) -> None:
        shard = self._shared._shard_for(base)
        with shard.lock:
            shard.cache.put(
                base,
                window_ids,
                budget,
                actions,
                env,
                pins,
                exact_budget_ok,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )

    def get_consistency(
        self, key: tuple, counters: Optional[CacheCounters] = None
    ) -> Optional[int]:
        shard = self._shared._shard_for(key)
        with shard.lock:
            return shard.cache.get_consistency(
                key,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )

    def put_consistency(
        self,
        key: tuple,
        value: int,
        pins: tuple,
        counters: Optional[CacheCounters] = None,
    ) -> None:
        shard = self._shared._shard_for(key)
        with shard.lock:
            shard.cache.put_consistency(
                key,
                value,
                pins,
                counters=self.counters if counters is None else counters,
                session=self._token,
            )


# ----------------------------------------------------------------------
# The process-wide instance
# ----------------------------------------------------------------------
_PROCESS_CACHE: Optional[SharedExecutionCache] = None
_PROCESS_LOCK = threading.Lock()


def process_cache() -> SharedExecutionCache:
    """The lazily created process-wide :class:`SharedExecutionCache`.

    Sized by ``REPRO_SHARED_CACHE_ENTRIES`` (default 65536 across all
    shards), ``REPRO_CACHE_SHARDS`` (default 8), and
    ``REPRO_SHARED_CACHE_SNAPSHOTS`` (default 512 interned snapshots).
    """
    global _PROCESS_CACHE
    with _PROCESS_LOCK:
        if _PROCESS_CACHE is None:
            _PROCESS_CACHE = SharedExecutionCache(
                max_entries=int(os.environ.get("REPRO_SHARED_CACHE_ENTRIES", "65536")),
                shards=int(os.environ.get("REPRO_CACHE_SHARDS", "8")),
                max_snapshots=int(os.environ.get("REPRO_SHARED_CACHE_SNAPSHOTS", "512")),
            )
        return _PROCESS_CACHE


def reset_process_cache() -> None:
    """Drop the process-wide cache (benchmark/test isolation)."""
    global _PROCESS_CACHE
    with _PROCESS_LOCK:
        _PROCESS_CACHE = None
