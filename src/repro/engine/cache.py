"""Memoization of simulated execution results.

The speculate-and-validate loop executes the *same* statements over the
*same* DOM windows many times: every popped worklist tuple re-validates
candidates its siblings already produced, every pushed tuple re-runs its
trailing loop for the generalization check, and each incremental
``synthesize`` call re-executes stored tuples over windows that extend
the previous call's.  :class:`ExecutionCache` makes each distinct
execution happen once, through two tables:

Exact table
    Keyed on ``(statements, env, data, window snapshots, action
    budget)``.  Hits replay the recorded outcome verbatim.

Terminal table
    An execution that ends with snapshots *and* budget to spare
    terminated on its own terms — every loop-continuation and validity
    decision was made on a snapshot it actually examined, namely the
    first ``len(actions) + 1`` of its window.  Its outcome is therefore
    identical on **any** window extending that examined prefix, which is
    exactly what the next incremental call presents.  The terminal table
    keys such results by ``(statements, env, data, first snapshot)`` and
    matches by examined-prefix comparison.

Keys use value identity for statements (alpha-canonical form) and
environments, and object identity for snapshots and the data source —
snapshots are immutable and shared across calls, and each entry pins its
identity-keyed referents so ids cannot be recycled.  Both tables are
bounded LRUs; hit/miss/eviction counters feed
:class:`repro.synth.synthesizer.SynthesisStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.semantics.env import Env


@dataclass
class CacheCounters:
    """Hit/miss/eviction telemetry.

    ``hits = exact_hits + prefix_hits + consistency_hits`` — the first
    two are execution lookups, the third is the consistency-check memo
    that rides the same cache.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    exact_hits: int = 0
    prefix_hits: int = 0
    consistency_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Entry:
    """One memoized outcome.  ``pins`` keeps id-keyed referents alive.

    ``exact_budget_ok`` marks terminal entries whose recorded run made
    no environment binding after its last emitted action, so the
    outcome also stands in for a run whose budget *equals* the action
    count (such a run halts right after that action and can never bind
    again).
    """

    __slots__ = ("actions", "env", "examined", "pins", "exact_budget_ok")

    def __init__(
        self,
        actions: tuple,
        env: Env,
        examined: Optional[tuple[int, ...]],
        pins: tuple,
        exact_budget_ok: bool = False,
    ) -> None:
        self.actions = actions
        self.env = env
        self.examined = examined
        self.pins = pins
        self.exact_budget_ok = exact_budget_ok


class ExecutionCache:
    """Bounded LRU over execution outcomes (see the module docstring).

    ``base`` below is the window-independent part of the key:
    ``(statements key, env key, data key)``.  ``window_ids`` is the
    window's snapshots by ``id``; ``budget`` the effective action budget
    (already clamped to the window length by the engine).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("cache size must be positive")
        self.max_entries = max_entries
        # recency reordering only pays off once a table could actually
        # evict something hot; below half capacity a hit is left in place
        self._touch_floor = max(1, max_entries // 2)
        self.counters = CacheCounters()
        # dicts preserve insertion order: pop + reinsert makes them LRUs
        self._exact: dict[tuple, _Entry] = {}
        self._terminal: dict[tuple, _Entry] = {}
        self._consistency: dict[tuple, tuple[int, tuple]] = {}

    def __len__(self) -> int:
        return len(self._exact) + len(self._terminal) + len(self._consistency)

    # ------------------------------------------------------------------
    def get(
        self, base: tuple, window_ids: tuple[int, ...], budget: int
    ) -> Optional[tuple[tuple, Env]]:
        """The memoized ``(actions, final env)``, or ``None`` on a miss."""
        exact_key = (base, window_ids, budget)
        entry = self._exact.get(exact_key)
        if entry is not None:
            if len(self._exact) >= self._touch_floor:
                self._touch(self._exact, exact_key)
            self.counters.hits += 1
            self.counters.exact_hits += 1
            return entry.actions, entry.env
        terminal_key = (base, window_ids[0])
        entry = self._terminal.get(terminal_key)
        if (
            entry is not None
            and len(entry.examined) <= len(window_ids)
            # a budget exactly equal to the action count also replays
            # identically — but only when the recorded run bound nothing
            # after its last action (exact_budget_ok), since a capped
            # run halts there and its final env is the last-action env
            and (
                budget > len(entry.actions)
                or (budget == len(entry.actions) and entry.exact_budget_ok)
            )
            and window_ids[: len(entry.examined)] == entry.examined
        ):
            if len(self._terminal) >= self._touch_floor:
                self._touch(self._terminal, terminal_key)
            self.counters.hits += 1
            self.counters.prefix_hits += 1
            return entry.actions, entry.env
        self.counters.misses += 1
        return None

    def put(
        self,
        base: tuple,
        window_ids: tuple[int, ...],
        budget: int,
        actions: tuple,
        env: Env,
        pins: tuple,
        exact_budget_ok: bool = False,
    ) -> None:
        """Record one execution outcome in both applicable tables.

        ``exact_budget_ok`` asserts the final env equals the env as of
        the last emitted action (see :class:`_Entry`); only the engine,
        which sees the evaluator's ``env_at_last_action``, can vouch for
        it, so it defaults to the conservative ``False``.
        """
        self._insert(self._exact, (base, window_ids, budget), _Entry(actions, env, None, pins))
        count = len(actions)
        if count < len(window_ids) and count < budget:
            # terminated on its own terms: reusable on any extension of
            # the examined prefix (consumed snapshots + the final head)
            examined = window_ids[: count + 1]
            self._insert(
                self._terminal,
                (base, window_ids[0]),
                _Entry(actions, env, examined, pins, exact_budget_ok),
            )

    # ------------------------------------------------------------------
    def get_consistency(self, key: tuple) -> Optional[int]:
        """Memoized ``consistent_prefix_length`` result, or ``None``."""
        hit = self._consistency.get(key)
        if hit is None:
            self.counters.misses += 1
            return None
        if len(self._consistency) >= self._touch_floor:
            self._touch(self._consistency, key)
        self.counters.hits += 1
        self.counters.consistency_hits += 1
        return hit[0]

    def put_consistency(self, key: tuple, value: int, pins: tuple) -> None:
        """Record one consistency-check outcome."""
        self._insert_value(self._consistency, key, (value, pins))

    # ------------------------------------------------------------------
    @staticmethod
    def _touch(table: dict, key: tuple) -> None:
        table[key] = table.pop(key)

    def _insert(self, table: dict, key: tuple, entry: _Entry) -> None:
        self._insert_value(table, key, entry)

    def _insert_value(self, table: dict, key: tuple, value) -> None:
        if key in table:
            del table[key]
        elif len(table) >= self.max_entries:
            table.pop(next(iter(table)))
            self.counters.evictions += 1
        table[key] = value
