"""Value-addressed cache keys: stable content digests for everything.

PR 3's process-level cache made execution entries shareable *within* a
process by interning structurally equal snapshots onto one canonical
object, so the id-keyed window keys coincided.  Serving synthesis from
multiple worker processes (or warm-starting a cold process from a
persistent store) needs the stronger property this module provides:
every component of an execution-cache key is a **value**, reproducible
in any process from the content alone —

* snapshots are addressed by :meth:`repro.dom.node.DOMNode.content_key`
  (a 128-bit structural digest, memoized on frozen roots),
* DOM windows by tuples of those digests
  (:meth:`repro.semantics.trace.DOMTrace.value_key`),
* data sources by :func:`data_key` (a digest of the frozen JSON value),
* statements and environments by their alpha-canonical forms and
  fingerprints, which are already values, and
* complete composite keys by :func:`stable_digest`, a canonical
  byte-encoding hashed with BLAKE2 — independent of ``PYTHONHASHSEED``,
  object ids, and interpreter version, which is what lets the
  persistent backends of :mod:`repro.service.backends` address one
  store from many processes and across restarts.

``stable_digest`` understands the exact value vocabulary cache keys are
built from: ``None``, booleans, ints, floats, strings, bytes, tuples,
lists, (sorted) dicts, and the repo's frozen dataclasses (predicates,
steps, selectors, variables, value paths, counter templates, actions).
Anything else is a bug in the caller, and raises.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass

from repro.dom.node import DOMNode

#: Digest width (bytes).  128 bits: collisions are negligible while the
#: keys stay cheap to store, compare, and ship over process boundaries.
DIGEST_SIZE = 16


def _encode(hasher, value) -> None:
    """Feed one canonical, prefix-free encoding of ``value`` to ``hasher``."""
    if value is None:
        hasher.update(b"N")
    elif value is True:
        hasher.update(b"T")
    elif value is False:
        hasher.update(b"F")
    elif type(value) is int:
        raw = b"%d" % value
        hasher.update(b"i%d:" % len(raw))
        hasher.update(raw)
    elif type(value) is str:
        raw = value.encode("utf-8", "surrogatepass")
        hasher.update(b"s%d:" % len(raw))
        hasher.update(raw)
    elif type(value) is bytes:
        hasher.update(b"b%d:" % len(value))
        hasher.update(value)
    elif type(value) is float:
        raw = repr(value).encode("ascii")
        hasher.update(b"f%d:" % len(raw))
        hasher.update(raw)
    elif type(value) in (tuple, list):
        hasher.update(b"(%d:" % len(value))
        for item in value:
            _encode(hasher, item)
        hasher.update(b")")
    elif type(value) is dict:
        hasher.update(b"{%d:" % len(value))
        for key in sorted(value):
            _encode(hasher, key)
            _encode(hasher, value[key])
        hasher.update(b"}")
    elif is_dataclass(value) and not isinstance(value, type):
        # class name first: Predicate and TokenPredicate share fields
        # but not matching semantics, so they must never collide
        name = type(value).__name__.encode("ascii")
        hasher.update(b"d%d:" % len(name))
        hasher.update(name)
        for field in fields(value):
            _encode(hasher, getattr(value, field.name))
        hasher.update(b";")
    elif isinstance(value, DOMNode):
        hasher.update(b"D")
        _encode(hasher, value.content_key())
    else:
        raise TypeError(f"cannot stably encode {type(value).__name__}: {value!r}")


def stable_digest(value) -> bytes:
    """A process-independent BLAKE2 digest of a key-vocabulary value."""
    hasher = hashlib.blake2b(digest_size=DIGEST_SIZE)
    _encode(hasher, value)
    return hasher.digest()


def digest_int(value) -> int:
    """:func:`stable_digest` as an int (fast to hash, JSON-serializable)."""
    return int.from_bytes(stable_digest(value), "big")


def snapshot_key(root: DOMNode) -> int:
    """The value-addressed key of one snapshot (its content digest)."""
    return root.content_key()


#: Value-keyed memo for :func:`action_digest`: actions restored from a
#: persistent store are *new objects* equal to previously digested ones,
#: so an id-keyed memo alone re-walks their selectors on every
#: consistency-key construction.  Keying by the action itself (frozen
#: dataclass, cached selector hash) makes equal actions digest once per
#: process.  Bounded by wholesale flush; lost entries just recompute.
_ACTION_DIGESTS: dict = {}
_ACTION_DIGESTS_LIMIT = 1 << 16


def action_digest(action) -> int:
    """The content digest of one action, memoized by value."""
    key = _ACTION_DIGESTS.get(action)
    if key is None:
        if len(_ACTION_DIGESTS) >= _ACTION_DIGESTS_LIMIT:
            _ACTION_DIGESTS.clear()
        key = _ACTION_DIGESTS[action] = digest_int(action)
    return key


#: Bounded id-keyed memo for :func:`data_key`: sources are long-lived
#: (one per session, interned by the shared cache), so the digest of the
#: wrapped JSON value is computed once per object.  Each entry holds the
#: source itself so ids cannot be recycled while memoized.
_DATA_KEYS: dict[int, tuple] = {}
_DATA_KEYS_LIMIT = 64


def data_key(source) -> int:
    """The value-addressed key of a :class:`~repro.lang.data.DataSource`.

    A digest of the wrapped JSON value, so two sessions that each loaded
    equal data address the same entries — in any process.  The wrapped
    value is assumed immutable once handed to a synthesizer (the same
    contract the shared cache's data interning already relies on).
    """
    entry = _DATA_KEYS.get(id(source))
    if entry is None or entry[0] is not source:
        if len(_DATA_KEYS) >= _DATA_KEYS_LIMIT:
            _DATA_KEYS.pop(next(iter(_DATA_KEYS)))
        entry = (source, digest_int(source.value))
        _DATA_KEYS[id(source)] = entry
    return entry[1]
