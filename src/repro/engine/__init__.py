"""The memoizing execution engine (caching, DOM indexing, one exec seam).

Public surface:

* :class:`repro.engine.engine.ExecutionEngine` — the facade every
  synthesizer-stack module executes through.
* :class:`repro.engine.cache.ExecutionCache` — bounded LRU memoization
  of simulated execution, with exact-window and terminal-prefix tables.
* :class:`repro.engine.cache.SharedExecutionCache` — the process-level
  promotion of the cache: lock-striped shards plus snapshot interning,
  so concurrent sessions over the same site reuse each other's
  executions (``process_cache()`` holds the process-wide instance).
* :mod:`repro.engine.index` — lazy per-snapshot DOM indexes powering
  descendant-axis selector steps.
* :mod:`repro.engine.keys` — value-addressed key primitives (stable
  content digests for snapshots, windows, data sources, and composite
  cache keys) that make entries meaningful across processes and
  restarts.
"""

from repro.engine.cache import (
    CacheCounters,
    ExecutionCache,
    SharedCacheSession,
    SharedExecutionCache,
    process_cache,
    reset_process_cache,
)
from repro.engine.engine import EngineCounters, ExecutionEngine
from repro.engine.index import (
    SnapshotIndex,
    build_count,
    dom_indexes_enabled,
    index_for,
    set_dom_indexes,
)
from repro.engine.keys import (
    action_digest,
    data_key,
    digest_int,
    snapshot_key,
    stable_digest,
)

__all__ = [
    "CacheCounters",
    "EngineCounters",
    "ExecutionCache",
    "ExecutionEngine",
    "SharedCacheSession",
    "SharedExecutionCache",
    "SnapshotIndex",
    "action_digest",
    "build_count",
    "data_key",
    "digest_int",
    "dom_indexes_enabled",
    "index_for",
    "process_cache",
    "reset_process_cache",
    "set_dom_indexes",
    "snapshot_key",
    "stable_digest",
]
