"""The memoizing execution engine (caching, DOM indexing, one exec seam).

Public surface:

* :class:`repro.engine.engine.ExecutionEngine` — the facade every
  synthesizer-stack module executes through.
* :class:`repro.engine.cache.ExecutionCache` — bounded LRU memoization
  of simulated execution, with exact-window and terminal-prefix tables.
* :mod:`repro.engine.index` — lazy per-snapshot DOM indexes powering
  descendant-axis selector steps.
"""

from repro.engine.cache import CacheCounters, ExecutionCache
from repro.engine.engine import EngineCounters, ExecutionEngine
from repro.engine.index import (
    SnapshotIndex,
    build_count,
    dom_indexes_enabled,
    index_for,
    set_dom_indexes,
)

__all__ = [
    "CacheCounters",
    "EngineCounters",
    "ExecutionCache",
    "ExecutionEngine",
    "SnapshotIndex",
    "build_count",
    "dom_indexes_enabled",
    "index_for",
    "set_dom_indexes",
]
