"""Per-snapshot DOM indexes: O(log n) descendant-axis selector steps.

The hot operations of the selector machinery are "the *i*-th descendant
of an anchor matching φ" (:func:`repro.dom.xpath._apply_step` on the
``desc`` axis) and its inverse "which index addresses this node"
(:func:`repro.dom.xpath.index_among_descendants`).  Both walk the whole
subtree in the naive implementation, and the synthesizer issues them
millions of times per session — once per selector step per candidate
execution.

A :class:`SnapshotIndex` is built lazily, once per frozen snapshot, by a
single pre-order walk that records

* each node's pre-order position and the last position inside its
  subtree (so "is a descendant of" becomes one interval check), and
* document-order *buckets* of nodes per predicate family: tag, exact
  ``(tag, attr, value)`` for every attribute in
  :data:`repro.dom.xpath.SELECTOR_ATTRIBUTES`, and whitespace-token
  buckets for the token predicates.

With buckets sorted by pre-order position, the *i*-th match under an
anchor is a binary search plus an index, and ranking a node is a binary
search.  Predicates outside the indexed families (e.g. the counter
attributes of numbered pagination templates) answer
:data:`UNSUPPORTED`, telling the caller to fall back to the linear walk.

On top of the point lookups, the index carries the *bucket enumeration*
layer the selector search runs on: memoized raw paths, per-node
predicate families, per-parent child-rank maps, and per-element
decomposition plans (every ``prefix / step(φ, k)`` reading of one
element, in the exact order the legacy ancestor walk emits them).  See
:mod:`repro.synth.alternatives` for the consumers.

Indexes attach to the snapshot root (``DOMNode._snapshot_index``), the
same lifetime discipline as the resolve memo; :func:`build_count` feeds
the engine's telemetry and :func:`track_builds` scopes build attribution
to one caller (thread-local, so concurrent synthesizers do not steal
each other's builds).  ``REPRO_DOM_INDEX=0`` (or
:func:`set_dom_indexes`) disables the machinery for A/B measurements.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from typing import Optional

from repro.dom.node import DOMNode
from repro.dom.xpath import (
    CHILD,
    DESC,
    EPSILON,
    SELECTOR_ATTRIBUTES,
    ConcreteSelector,
    Predicate,
    Step,
    TokenPredicate,
    predicate_family,
)

#: Sentinel answer: the predicate family is not indexed — use the
#: linear fallback.  Distinct from ``None``, which means "no match".
UNSUPPORTED = object()

#: Per-snapshot byte budget for the enumeration memo (the Decomposition
#: lists the selector search pins on snapshots) — ``REPRO_ENUM_MEMO_BYTES``
#: overrides.  8 MiB default: roomy for real pages, bounded for servers.
_ENUM_MEMO_BYTES = int(os.environ.get("REPRO_ENUM_MEMO_BYTES", str(8 << 20)))

_ENABLED = os.environ.get("REPRO_DOM_INDEX", "1") != "0"
_BUILDS = 0
_TRACKERS = threading.local()
#: Serializes lazy index construction: without it two validation
#: workers racing on a cold snapshot would each pay the full pre-order
#: walk and one build would be discarded (correct but wasted, and the
#: build counters would double-count).  ``index_for`` only takes the
#: lock on the cold path.
_BUILD_LOCK = threading.Lock()


def set_dom_indexes(enabled: bool) -> bool:
    """Globally enable/disable index use; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    return previous


def dom_indexes_enabled() -> bool:
    """Whether snapshot indexes are consulted at all."""
    return _ENABLED


def build_count() -> int:
    """Process-wide number of snapshot indexes built so far.

    For attributing builds to one synthesize call use
    :func:`track_builds` — deltas of this global misattribute builds the
    moment two sessions interleave in one process.
    """
    return _BUILDS


class BuildTracker:
    """Counts the snapshot-index builds forced inside one scope."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


@contextmanager
def track_builds():
    """Attribute index builds on *this thread* to the yielded tracker.

    Scopes nest (an outer scope also counts its inner scopes' builds)
    and are thread-local, so two synthesizers interleaving — across
    calls or across threads — each see exactly the builds their own
    work forced.
    """
    stack = getattr(_TRACKERS, "stack", None)
    if stack is None:
        stack = _TRACKERS.stack = []
    tracker = BuildTracker()
    stack.append(tracker)
    try:
        yield tracker
    finally:
        stack.remove(tracker)


def current_trackers() -> tuple[BuildTracker, ...]:
    """This thread's active tracker scopes, outermost first.

    A scheduler hands these to its worker threads (via
    :func:`adopt_trackers`) so index builds forced *inside a worker*
    still count toward the synthesize call that spawned it — tracker
    scopes are thread-local and would otherwise miss them.
    """
    return tuple(getattr(_TRACKERS, "stack", ()))


@contextmanager
def adopt_trackers(trackers: tuple[BuildTracker, ...]):
    """Attribute this thread's builds to another thread's trackers.

    Installs the given trackers (captured with :func:`current_trackers`
    on the coordinating thread) at the bottom of this thread's stack for
    the duration of the scope.  Counts are incremented under the build
    lock, so concurrent workers adopting the same tracker stay exact.
    """
    stack = getattr(_TRACKERS, "stack", None)
    if stack is None:
        stack = _TRACKERS.stack = []
    adopted = [tracker for tracker in trackers if tracker not in stack]
    stack[:0] = adopted
    try:
        yield
    finally:
        for tracker in adopted:
            stack.remove(tracker)


def _record_build() -> None:
    # callers hold _BUILD_LOCK (index_for) or are single-threaded test
    # constructions, so the increments below are not racy
    global _BUILDS
    _BUILDS += 1
    for tracker in getattr(_TRACKERS, "stack", ()):
        tracker.count += 1


#: Approximate bytes per memoized enumeration result element (a
#: ``Decomposition`` or a step tuple with its share of shared selectors).
_ENUM_ITEM_BYTES = 112
#: Fixed per-entry overhead (key tuple + dict slot + list skeleton).
_ENUM_ENTRY_OVERHEAD = 96


class EnumMemo:
    """A byte-accounted LRU for the enumeration layer's pinned results.

    The selector search memoizes whole decomposition / relative-step
    lists on the snapshot's index (see :mod:`repro.synth.alternatives`).
    Those lists pin ``Decomposition`` objects for the snapshot's
    lifetime — cache state like any other — so this table accounts them
    in bytes (:attr:`approx_bytes`, surfaced through the shared cache's
    footprint gauges) and evicts least-recently-written entries once
    ``max_bytes`` is exceeded, instead of growing without bound over a
    long-lived server process.

    Exposes the mapping surface the enumeration call sites use
    (``get`` / item assignment).  Writes take a small lock so concurrent
    validation workers cannot corrupt the byte account; reads stay
    lockless (a dict probe of an immutable result).
    """

    __slots__ = ("_table", "_lock", "max_bytes", "approx_bytes", "evictions")

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self._table: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.max_bytes = _ENUM_MEMO_BYTES if max_bytes is None else max_bytes
        self.approx_bytes = 0
        self.evictions = 0

    @staticmethod
    def _entry_bytes(value) -> int:
        try:
            length = len(value)
        except TypeError:
            length = 1
        return _ENUM_ENTRY_OVERHEAD + _ENUM_ITEM_BYTES * length

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: tuple):
        """The memoized result for ``key``, or ``None``."""
        return self._table.get(key)

    def __setitem__(self, key: tuple, value) -> None:
        size = self._entry_bytes(value)
        with self._lock:
            previous = self._table.pop(key, None)
            if previous is not None:
                self.approx_bytes -= self._entry_bytes(previous)
            self._table[key] = value
            self.approx_bytes += size
            while self.approx_bytes > self.max_bytes and len(self._table) > 1:
                old_key = next(iter(self._table))
                if old_key == key:
                    break  # never evict the entry just written
                old = self._table.pop(old_key)
                self.approx_bytes -= self._entry_bytes(old)
                self.evictions += 1


def bucket_key(pred: Predicate) -> Optional[tuple]:
    """The index bucket a predicate's matches live in, or ``None``.

    Exact subclass checks matter: a future ``Predicate`` subclass with
    different ``matches`` semantics must not silently reuse these
    buckets.
    """
    kind = type(pred)
    if kind is Predicate:
        if pred.attr is None:
            return ("tag", pred.tag)
        # falsy values are not bucketed by _file (and value=None matches
        # *absent* attributes), so they must take the linear fallback
        if pred.attr in SELECTOR_ATTRIBUTES and pred.value:
            return ("attr", pred.tag, pred.attr, pred.value)
        return None
    if kind is TokenPredicate:
        if pred.attr in SELECTOR_ATTRIBUTES and pred.value:
            return ("token", pred.tag, pred.attr, pred.value)
        return None
    return None


class SnapshotIndex:
    """Document-order predicate buckets plus pre-order intervals.

    The ``_raw_paths`` / ``_pred_lists`` / ``_child_ranks`` / ``_plans``
    dicts are lazily filled memo layers for the enumeration APIs below;
    they live on the index (not on a search object) so every selector
    search over the same snapshot — within a session and across
    sessions — shares them.  The buckets pin every node of the
    snapshot, so id-keyed memo entries can never go stale.

    The memo layers are safe to fill from concurrent validation
    workers without locks: every entry is a deterministic function of
    the immutable snapshot, and each write is a single id-keyed dict
    assignment — a lost check-then-act race recomputes the same value,
    it never corrupts the table.
    """

    __slots__ = (
        "_pre",
        "_end",
        "_buckets",
        "_root",
        "_raw_paths",
        "_pred_lists",
        "_child_ranks",
        "_plans",
        "enum_memo",
    )

    def __init__(self, root: DOMNode) -> None:
        _record_build()
        self._root = root
        self._raw_paths: dict[int, ConcreteSelector] = {}
        self._pred_lists: dict[tuple, list[Predicate]] = {}
        self._child_ranks: dict[tuple, dict[int, int]] = {}
        self._plans: dict[tuple, tuple] = {}
        #: Cross-session memo for the enumeration layer: the selector
        #: search stores full decomposition / relative-step results here
        #: keyed by target node id + bounds, so every search object over
        #: this snapshot — including other sessions' — reuses them.
        #: (Results depend only on the immutable snapshot, never on the
        #: querying session.)  Byte-accounted and evictable — see
        #: :class:`EnumMemo`.
        self.enum_memo = EnumMemo()
        pre: dict[int, int] = {}
        end: dict[int, int] = {}
        buckets: dict[tuple, tuple[list[DOMNode], list[int]]] = {}
        position = 0
        stack: list[tuple[DOMNode, bool]] = [(root, False)]
        while stack:
            node, closing = stack.pop()
            if closing:
                end[id(node)] = position - 1
                continue
            pre[id(node)] = position
            self._file(buckets, node, position)
            position += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
        self._pre = pre
        self._end = end
        self._buckets = buckets

    @staticmethod
    def _file(
        buckets: dict[tuple, tuple[list[DOMNode], list[int]]],
        node: DOMNode,
        position: int,
    ) -> None:
        keys = [("tag", node.tag)]
        for attr in SELECTOR_ATTRIBUTES:
            value = node.attrs.get(attr)
            if not value:
                continue
            keys.append(("attr", node.tag, attr, value))
            for token in value.split():
                keys.append(("token", node.tag, attr, token))
        for key in keys:
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = ([], [])
            bucket[0].append(node)
            bucket[1].append(position)

    # ------------------------------------------------------------------
    def nth(self, pred: Predicate, index: int, anchor: Optional[DOMNode]):
        """The ``index``-th match of ``pred`` in the anchor's pool.

        ``anchor is None`` is the virtual document (the whole snapshot,
        root included); otherwise the pool is the anchor's proper
        descendants.  Returns the node, ``None`` when there is no
        ``index``-th match, or :data:`UNSUPPORTED`.
        """
        key = bucket_key(pred)
        if key is None:
            return UNSUPPORTED
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        nodes, positions = bucket
        if anchor is None:
            return nodes[index - 1] if index <= len(nodes) else None
        anchor_pre = self._pre.get(id(anchor))
        if anchor_pre is None:
            return UNSUPPORTED  # anchor is not in this snapshot
        at = bisect_right(positions, anchor_pre) + index - 1
        if at >= len(positions) or positions[at] > self._end[id(anchor)]:
            return None
        return nodes[at]

    def rank(self, pred: Predicate, node: DOMNode, anchor: Optional[DOMNode]):
        """1-based index of ``node`` among ``pred``'s matches in the pool.

        Same pool convention as :meth:`nth`.  Returns ``None`` when the
        node is not a matching member of the pool, or
        :data:`UNSUPPORTED`.
        """
        key = bucket_key(pred)
        if key is None:
            return UNSUPPORTED
        node_pre = self._pre.get(id(node))
        if node_pre is None:
            return UNSUPPORTED
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        _, positions = bucket
        at = bisect_left(positions, node_pre)
        if at >= len(positions) or positions[at] != node_pre:
            return None  # the predicate does not match the node
        if anchor is None:
            return at + 1
        anchor_pre = self._pre.get(id(anchor))
        if anchor_pre is None:
            return UNSUPPORTED
        if not anchor_pre < node_pre <= self._end[id(anchor)]:
            return None  # node is outside the anchor's subtree
        return at - bisect_right(positions, anchor_pre) + 1

    # ------------------------------------------------------------------
    # Bucket enumeration (the selector-search layer)
    # ------------------------------------------------------------------
    def contains(self, node: DOMNode) -> bool:
        """Whether ``node`` belongs to the indexed snapshot."""
        return id(node) in self._pre

    def raw_path_of(self, node: DOMNode) -> ConcreteSelector:
        """Memoized :func:`repro.dom.xpath.raw_path` of an indexed node.

        Walks up only to the nearest memoized ancestor (iteratively, so
        arbitrarily deep snapshots cannot blow the recursion limit) and
        extends down, filling the memo for the whole chain — after one
        chain is paid every sibling's path is a single step extension.
        """
        path = self._raw_paths.get(id(node))
        if path is not None:
            return path
        chain: list[DOMNode] = []
        current: Optional[DOMNode] = node
        path = EPSILON
        while current is not None:
            cached = self._raw_paths.get(id(current))
            if cached is not None:
                path = cached
                break
            chain.append(current)
            current = current.parent
        for item in reversed(chain):
            path = path.child(Predicate(item.tag), item.child_index_by_tag())
            self._raw_paths[id(item)] = path
        return path

    def raw_steps_between(self, base: DOMNode, target: DOMNode) -> tuple[Step, ...]:
        """The child-axis steps from ``base`` down to ``target``.

        With both raw paths memoized, the chain is a tuple slice — the
        ancestor walk of the legacy ``_raw_chain`` disappears.
        """
        return self.raw_path_of(target).steps[len(self.raw_path_of(base).steps):]

    def predicates_of(
        self, node: DOMNode, use_alternatives: bool, token_predicates: bool
    ) -> list[Predicate]:
        """Memoized predicate family of ``node`` (selector-search order)."""
        key = (id(node), use_alternatives, token_predicates)
        preds = self._pred_lists.get(key)
        if preds is None:
            if use_alternatives:
                preds = predicate_family(node, token_predicates)
            else:
                preds = [Predicate(node.tag)]
            self._pred_lists[key] = preds
        return preds

    def child_rank(self, node: DOMNode, pred: Predicate) -> Optional[int]:
        """:func:`repro.dom.xpath.index_among_children`, batch-memoized.

        The first query for a ``(parent, predicate)`` pair walks the
        siblings once and ranks *every* matching child; queries for the
        siblings — the common case when consecutive actions target list
        rows — are dict hits.
        """
        if not pred.matches(node):
            return None
        parent = node.parent
        if parent is None:
            return 1  # the virtual document's only child is the root
        key = (id(parent), bucket_key(pred))
        if key[1] is None:  # unbucketed predicate: rank without caching
            rank = 0
            for sibling in parent.children:
                if pred.matches(sibling):
                    rank += 1
                if sibling is node:
                    return rank
            return None
        ranks = self._child_ranks.get(key)
        if ranks is None:
            ranks = {}
            rank = 0
            for sibling in parent.children:
                if pred.matches(sibling):
                    rank += 1
                    ranks[id(sibling)] = rank
            self._child_ranks[key] = ranks
        return ranks.get(id(node))

    def element_plan(
        self, element: DOMNode, use_alternatives: bool, token_predicates: bool
    ) -> tuple:
        """Every ``(prefix, axis, pred, index)`` element-step reading.

        This is the per-element invariant part of a decomposition — what
        the legacy ancestor walk recomputes per suffix — in the exact
        order that walk emits: child axis from the parent prefix, then
        descendant axis anchored at the document, then at the parent.
        Cached per element, so it is shared across every target that has
        ``element`` on its ancestor chain and across search objects.
        """
        key = (id(element), use_alternatives, token_predicates)
        plan = self._plans.get(key)
        if plan is None:
            preds = self.predicates_of(element, use_alternatives, token_predicates)
            parent = element.parent
            parent_prefix = EPSILON if parent is None else self.raw_path_of(parent)
            entries = []
            for pred in preds:
                index = self.child_rank(element, pred)
                if index is not None:
                    entries.append((parent_prefix, CHILD, pred, index))
            if use_alternatives:
                anchors: list[Optional[DOMNode]] = [None]
                if parent is not None:
                    anchors.append(parent)
                for anchor in anchors:
                    prefix = EPSILON if anchor is None else parent_prefix
                    for pred in preds:
                        index = self.rank(pred, element, anchor)
                        if index is UNSUPPORTED:  # pragma: no cover - defensive
                            index = None
                        if index is not None:
                            entries.append((prefix, DESC, pred, index))
            plan = self._plans[key] = tuple(entries)
        return plan


def index_for(root: DOMNode) -> Optional[SnapshotIndex]:
    """The (lazily built) index of a frozen snapshot, else ``None``.

    Mutable snapshots are never indexed: the buckets would go stale.
    """
    if not _ENABLED or not root.frozen:
        return None
    index = root._snapshot_index
    if index is None:
        # double-checked: the hot path above never locks, and losers of
        # the cold-path race reuse the winner's index instead of
        # building (and then discarding) their own
        with _BUILD_LOCK:
            index = root._snapshot_index
            if index is None:
                index = root._snapshot_index = SnapshotIndex(root)
    return index
