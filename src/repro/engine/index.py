"""Per-snapshot DOM indexes: O(log n) descendant-axis selector steps.

The hot operations of the selector machinery are "the *i*-th descendant
of an anchor matching φ" (:func:`repro.dom.xpath._apply_step` on the
``desc`` axis) and its inverse "which index addresses this node"
(:func:`repro.dom.xpath.index_among_descendants`).  Both walk the whole
subtree in the naive implementation, and the synthesizer issues them
millions of times per session — once per selector step per candidate
execution.

A :class:`SnapshotIndex` is built lazily, once per frozen snapshot, by a
single pre-order walk that records

* each node's pre-order position and the last position inside its
  subtree (so "is a descendant of" becomes one interval check), and
* document-order *buckets* of nodes per predicate family: tag, exact
  ``(tag, attr, value)`` for every attribute in
  :data:`repro.dom.xpath.SELECTOR_ATTRIBUTES`, and whitespace-token
  buckets for the token predicates.

With buckets sorted by pre-order position, the *i*-th match under an
anchor is a binary search plus an index, and ranking a node is a binary
search.  Predicates outside the indexed families (e.g. the counter
attributes of numbered pagination templates) answer
:data:`UNSUPPORTED`, telling the caller to fall back to the linear walk.

Indexes attach to the snapshot root (``DOMNode._snapshot_index``), the
same lifetime discipline as the resolve memo; :func:`build_count` feeds
the engine's telemetry.  ``REPRO_DOM_INDEX=0`` (or
:func:`set_dom_indexes`) disables the machinery for A/B measurements.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from typing import Optional

from repro.dom.node import DOMNode
from repro.dom.xpath import SELECTOR_ATTRIBUTES, Predicate, TokenPredicate

#: Sentinel answer: the predicate family is not indexed — use the
#: linear fallback.  Distinct from ``None``, which means "no match".
UNSUPPORTED = object()

_ENABLED = os.environ.get("REPRO_DOM_INDEX", "1") != "0"
_BUILDS = 0


def set_dom_indexes(enabled: bool) -> bool:
    """Globally enable/disable index use; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    return previous


def dom_indexes_enabled() -> bool:
    """Whether snapshot indexes are consulted at all."""
    return _ENABLED


def build_count() -> int:
    """Process-wide number of snapshot indexes built so far."""
    return _BUILDS


def bucket_key(pred: Predicate) -> Optional[tuple]:
    """The index bucket a predicate's matches live in, or ``None``.

    Exact subclass checks matter: a future ``Predicate`` subclass with
    different ``matches`` semantics must not silently reuse these
    buckets.
    """
    kind = type(pred)
    if kind is Predicate:
        if pred.attr is None:
            return ("tag", pred.tag)
        # falsy values are not bucketed by _file (and value=None matches
        # *absent* attributes), so they must take the linear fallback
        if pred.attr in SELECTOR_ATTRIBUTES and pred.value:
            return ("attr", pred.tag, pred.attr, pred.value)
        return None
    if kind is TokenPredicate:
        if pred.attr in SELECTOR_ATTRIBUTES and pred.value:
            return ("token", pred.tag, pred.attr, pred.value)
        return None
    return None


class SnapshotIndex:
    """Document-order predicate buckets plus pre-order intervals."""

    __slots__ = ("_pre", "_end", "_buckets")

    def __init__(self, root: DOMNode) -> None:
        global _BUILDS
        _BUILDS += 1
        pre: dict[int, int] = {}
        end: dict[int, int] = {}
        buckets: dict[tuple, tuple[list[DOMNode], list[int]]] = {}
        position = 0
        stack: list[tuple[DOMNode, bool]] = [(root, False)]
        while stack:
            node, closing = stack.pop()
            if closing:
                end[id(node)] = position - 1
                continue
            pre[id(node)] = position
            self._file(buckets, node, position)
            position += 1
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
        self._pre = pre
        self._end = end
        self._buckets = buckets

    @staticmethod
    def _file(
        buckets: dict[tuple, tuple[list[DOMNode], list[int]]],
        node: DOMNode,
        position: int,
    ) -> None:
        keys = [("tag", node.tag)]
        for attr in SELECTOR_ATTRIBUTES:
            value = node.attrs.get(attr)
            if not value:
                continue
            keys.append(("attr", node.tag, attr, value))
            for token in value.split():
                keys.append(("token", node.tag, attr, token))
        for key in keys:
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = ([], [])
            bucket[0].append(node)
            bucket[1].append(position)

    # ------------------------------------------------------------------
    def nth(self, pred: Predicate, index: int, anchor: Optional[DOMNode]):
        """The ``index``-th match of ``pred`` in the anchor's pool.

        ``anchor is None`` is the virtual document (the whole snapshot,
        root included); otherwise the pool is the anchor's proper
        descendants.  Returns the node, ``None`` when there is no
        ``index``-th match, or :data:`UNSUPPORTED`.
        """
        key = bucket_key(pred)
        if key is None:
            return UNSUPPORTED
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        nodes, positions = bucket
        if anchor is None:
            return nodes[index - 1] if index <= len(nodes) else None
        anchor_pre = self._pre.get(id(anchor))
        if anchor_pre is None:
            return UNSUPPORTED  # anchor is not in this snapshot
        at = bisect_right(positions, anchor_pre) + index - 1
        if at >= len(positions) or positions[at] > self._end[id(anchor)]:
            return None
        return nodes[at]

    def rank(self, pred: Predicate, node: DOMNode, anchor: Optional[DOMNode]):
        """1-based index of ``node`` among ``pred``'s matches in the pool.

        Same pool convention as :meth:`nth`.  Returns ``None`` when the
        node is not a matching member of the pool, or
        :data:`UNSUPPORTED`.
        """
        key = bucket_key(pred)
        if key is None:
            return UNSUPPORTED
        node_pre = self._pre.get(id(node))
        if node_pre is None:
            return UNSUPPORTED
        bucket = self._buckets.get(key)
        if bucket is None:
            return None
        _, positions = bucket
        at = bisect_left(positions, node_pre)
        if at >= len(positions) or positions[at] != node_pre:
            return None  # the predicate does not match the node
        if anchor is None:
            return at + 1
        anchor_pre = self._pre.get(id(anchor))
        if anchor_pre is None:
            return UNSUPPORTED
        if not anchor_pre < node_pre <= self._end[id(anchor)]:
            return None  # node is outside the anchor's subtree
        return at - bisect_right(positions, anchor_pre) + 1


def index_for(root: DOMNode) -> Optional[SnapshotIndex]:
    """The (lazily built) index of a frozen snapshot, else ``None``.

    Mutable snapshots are never indexed: the buckets would go stale.
    """
    if not _ENABLED or not root.frozen:
        return None
    index = root._snapshot_index
    if index is None:
        index = root._snapshot_index = SnapshotIndex(root)
    return index
