"""The memoizing execution engine: one seam for all simulated execution.

:class:`ExecutionEngine` fronts the trace semantics
(:mod:`repro.semantics.evaluator`), consistency checking, and selector
resolution behind a single object.  The synthesizer stack
(:mod:`repro.synth.synthesizer`, :mod:`repro.synth.validate`,
:mod:`repro.synth.speculate`, :mod:`repro.synth.problem`) and the
replayer go through an engine instead of reaching into the evaluator
directly, which buys three things:

* **Memoization.**  Identical ``(statements, window, env, data,
  budget)`` executions — across worklist pops and across incremental
  calls — are computed once (see :mod:`repro.engine.cache`).
* **Indexing.**  Engine-resolved selectors ride the per-snapshot DOM
  indexes of :mod:`repro.engine.index`.
* **Concurrency.**  The engine is where execution sharing happens:
  backed by a :class:`~repro.engine.cache.SharedExecutionCache` it
  joins the process-level cache as one session, and its per-thread
  *worker counters* (:meth:`worker_counters` / :meth:`absorb_counters`)
  let the validation scheduler run candidates on a thread pool while
  keeping telemetry exact — workers record into private counter sets
  that are merged at join, never incremented in place across threads.

A cached :meth:`execute` replays the actions and remaining-window shape
of the first structurally equivalent execution.  Statement keys are
alpha-canonical, so the returned environment's *loop-variable names* may
come from that first execution; the bindings' values, the action trace,
and the consumed-snapshot count — everything the synthesizer consumes —
are identical for alpha-equivalent programs.

Thread-safety contract: ``execute`` and ``consistent_prefix_length`` are
safe to call from validation workers *when the engine is backed by a
shared (lock-striped) cache* — the remaining engine-level memos
(canonical statements, lazily filled snapshot-index layers) are
id-keyed, idempotent writes of deterministic values, so a lost race
recomputes but never corrupts.  A plain private ``ExecutionCache`` is
single-threaded; :meth:`for_config` picks the right backing
automatically from the config's ``validation_workers`` /
``shared_cache`` knobs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, resolve as _resolve
from repro.engine import index as dom_index
from repro.engine.cache import (
    CacheCounters,
    ExecutionCache,
    SharedCacheSession,
    SharedExecutionCache,
)
from repro.engine.keys import action_digest, data_key
from repro.lang.actions import Action
from repro.lang.ast import Program, Statement, canonical_statement
from repro.lang.data import DataSource
from repro.semantics import evaluator
from repro.semantics.consistency import (
    consistent_prefix_length as _consistent_prefix_length,
)
from repro.semantics.env import Env
from repro.semantics.evaluator import EvalResult
from repro.semantics.trace import DOMTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.synth.config import SynthesisConfig

#: Sentinel distinguishing "not memoized yet" from a memoized ``None``
#: (= unbounded cost) in the tier-policy hint table.
_COST_UNKNOWN = object()


@dataclass(frozen=True)
class EngineCounters:
    """A point-in-time snapshot of one engine's telemetry.

    ``hits == exact_hits + prefix_hits + consistency_hits`` — the full
    breakdown is carried so downstream telemetry can reconcile the
    aggregate.  ``cross_session_hits`` counts hits served from entries
    another session of a shared cache recorded.  ``index_builds`` counts
    process-wide snapshot-index constructions (indexes live on
    snapshots, not engines); for attributing builds to one caller use
    :func:`repro.engine.index.track_builds`, which the synthesizer
    wraps around each call — raw deltas of this field misattribute
    builds when two sessions interleave in one process.

    ``warm_hits`` counts hits served from a *persistent backend* —
    executions recorded by a prior process over the same store (always 0
    for the default in-process backend); ``backend`` names the backend
    behind the cache.

    ``cache_bytes``, ``interned_snapshots``, ``interned_bytes`` and
    ``persisted_bytes`` are *gauges*, not counters: the approximate byte
    footprint of the backing cache's tables, the shared cache's
    snapshot-interning table (0 for private caches), and the persistent
    store, all at snapshot time.  Deltas of gauges are meaningless —
    report them as-is.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    exact_hits: int = 0
    prefix_hits: int = 0
    consistency_hits: int = 0
    cross_session_hits: int = 0
    warm_hits: int = 0
    #: Executions answered by resuming a stored loop continuation over
    #: the window suffix (resumable loops); counted alongside the miss
    #: the preceding full-result probe recorded, so they are *not* part
    #: of the ``hits`` reconciliation above.
    resume_hits: int = 0
    #: Warm-start probes served by the persistent backend's
    #: decoded-entry cache (the store read and the payload decode were
    #: both skipped) and the encoded payload bytes those hits never
    #: re-read.  Not part of the ``hits`` reconciliation.
    decode_hits: int = 0
    decode_bytes: int = 0
    index_builds: int = 0
    cache_bytes: int = 0
    interned_snapshots: int = 0
    interned_bytes: int = 0
    persisted_bytes: int = 0
    backend: str = "memory"

    @property
    def hit_rate(self) -> float:
        """Cache hits over all lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ExecutionEngine:
    """Facade owning all simulated execution for one data source."""

    def __init__(
        self,
        data: Optional[DataSource] = None,
        *,
        cache_size: int = 4096,
        use_cache: bool = True,
        shared_cache: Optional[SharedExecutionCache] = None,
        backend=None,
    ) -> None:
        self.data = data
        if not use_cache or cache_size <= 0:
            self._cache = None
        elif shared_cache is not None:
            # one session view per engine: shared tables, private counters
            # (the shared cache owns its own backend)
            self._cache = shared_cache.session()
        else:
            self._cache = ExecutionCache(cache_size, backend=backend)
        # per-thread counter override installed by validation workers
        self._worker_tls = threading.local()
        # canonical-statement memo: statement objects are shared between
        # tuples and their rewrites, so id-keyed lookup hits constantly;
        # the pin list keeps referenced statements alive.  Writes (and
        # the occasional flush) are lock-guarded so the "memoized ⇒
        # pinned" invariant holds under concurrent validation workers.
        self._canon: dict[int, tuple] = {}
        self._canon_pins: list[Statement] = []
        self._canon_lock = threading.Lock()
        # id-memoized per-action content digests for the consistency
        # memo's value-addressed keys (same discipline as _canon: the
        # digest is a pure function of the action value, and pinning
        # keeps memoized ids valid)
        self._action_keys: dict[int, int] = {}
        self._action_pins: list[Action] = []
        # recompute-cost hints for the store tier policy, keyed by the
        # statements' canonical key (a value, so collisions are
        # impossible); None = unbounded/unknown = always persist
        self._cost_hints: dict[tuple, Optional[int]] = {}

    @classmethod
    def for_config(
        cls, data: Optional[DataSource], config: "SynthesisConfig"
    ) -> "ExecutionEngine":
        """An engine honouring the config's cache and concurrency knobs.

        With ``shared_cache`` resolved on, the engine joins the
        process-level cache (:func:`repro.engine.cache.process_cache`).
        Otherwise, with ``validation_workers`` resolved > 0, it gets a
        *private* sharded cache — same tables, but lock-striped so the
        pool scheduler's workers can share it safely.  The default is
        the plain single-threaded :class:`ExecutionCache`, byte-exact
        with the pre-concurrency engine.  The config's ``cache_backend``
        (default: ``REPRO_CACHE_BACKEND``) attaches the resolved
        persistent backend behind whichever cache is chosen — the
        process-level cache resolves its backend from the environment at
        first creation.
        """
        from repro.engine.cache import process_cache
        from repro.service.backends import resolve_backend
        from repro.synth.config import (
            resolved_cache_backend,
            resolved_pipeline,
            resolved_shared_cache,
            resolved_validation_workers,
        )

        shared: Optional[SharedExecutionCache] = None
        backend = None
        if config.use_execution_cache and config.max_cache_entries > 0:
            backend_name = resolved_cache_backend(config)
            backend = resolve_backend(backend_name)
            if resolved_shared_cache(config):
                shared = process_cache(backend_name)
                if data is not None:
                    # keys address the source by content digest already;
                    # interning shares the wrapper object (and its
                    # memoized digest) between equal-content sessions
                    data = shared.intern_data(data)
            elif resolved_validation_workers(config) > 0 or resolved_pipeline(config):
                # the pipeline's merge thread shares the cache with the
                # main thread, so it needs the lock-striped tables even
                # with zero validation workers
                shared = SharedExecutionCache(
                    max_entries=config.max_cache_entries, shards=4, backend=backend
                )
        return cls(
            data,
            cache_size=config.max_cache_entries,
            use_cache=config.use_execution_cache,
            shared_cache=shared,
            backend=backend,
        )

    @property
    def cache_enabled(self) -> bool:
        """Whether execution memoization is active."""
        return self._cache is not None

    @property
    def shared_cache(self) -> Optional[SharedExecutionCache]:
        """The shared cache behind this engine, if it is backed by one."""
        if isinstance(self._cache, SharedCacheSession):
            return self._cache.shared
        return None

    def counters(self) -> EngineCounters:
        """Current telemetry (cache counters + global index builds)."""
        cache = self._cache.counters if self._cache is not None else CacheCounters()
        shared = self.shared_cache
        return EngineCounters(
            hits=cache.hits,
            misses=cache.misses,
            evictions=cache.evictions,
            exact_hits=cache.exact_hits,
            prefix_hits=cache.prefix_hits,
            consistency_hits=cache.consistency_hits,
            cross_session_hits=cache.cross_session_hits,
            warm_hits=cache.warm_hits,
            resume_hits=cache.resume_hits,
            decode_hits=cache.decode_hits,
            decode_bytes=cache.decode_bytes,
            index_builds=dom_index.build_count(),
            cache_bytes=self._cache.approx_bytes if self._cache is not None else 0,
            interned_snapshots=shared.interned_snapshots if shared is not None else 0,
            interned_bytes=shared.interned_bytes if shared is not None else 0,
            persisted_bytes=(
                self._cache.persisted_bytes if self._cache is not None else 0
            ),
            backend=(
                self._cache.backend_name if self._cache is not None else "memory"
            ),
        )

    # ------------------------------------------------------------------
    # Worker-scoped counters (merge-based accumulation under pools)
    # ------------------------------------------------------------------
    @contextmanager
    def worker_counters(self) -> Iterator[CacheCounters]:
        """Record this thread's cache telemetry into a private counter set.

        The validation scheduler wraps each worker task in this scope and
        merges the yielded counters back on the coordinating thread
        (:meth:`absorb_counters`) once the task is joined — in-place
        increments on a shared counter object from several threads would
        under-count (the read/add/write is not atomic), merging cannot.
        """
        counters = CacheCounters()
        previous = getattr(self._worker_tls, "counters", None)
        self._worker_tls.counters = counters
        try:
            yield counters
        finally:
            self._worker_tls.counters = previous

    def absorb_counters(self, counters: CacheCounters) -> None:
        """Fold one worker's counters into the session totals (at join)."""
        if self._cache is not None:
            self._cache.counters.merge(counters)

    def _active_counters(self) -> Optional[CacheCounters]:
        return getattr(self._worker_tls, "counters", None)

    # ------------------------------------------------------------------
    # Simulated execution
    # ------------------------------------------------------------------
    def execute(
        self,
        program: Program | Sequence[Statement],
        doms: DOMTrace,
        env: Optional[Env] = None,
        max_actions: Optional[int] = None,
        data: Optional[DataSource] = None,
        resumable: bool = False,
    ) -> EvalResult:
        """Memoized :func:`repro.semantics.evaluator.execute`.

        ``data`` overrides the engine's data source for this call (used
        by the problem-level helpers, which carry their own source).

        ``resumable`` opts a *single closed statement* into resumable
        loop execution: a run that absorbs its whole window mid-loop
        records the evaluator's continuation in the cache, and a later
        call over an extended window re-enters the loop at the recorded
        iteration instead of re-executing from the window start — the
        synthesizer's extension/generalization path uses this to keep
        per-call cost proportional to the *new* actions.  The stitched
        result is identical to a from-scratch execution by construction
        (the iteration-top state fully determines the remainder).
        """
        source = self.data if data is None else data
        window_length = len(doms)
        budget = (
            window_length
            if max_actions is None
            else min(max_actions, window_length)
        )
        if self._cache is None or window_length == 0 or budget <= 0:
            return evaluator.execute(program, doms, source, env, max_actions)
        statements = tuple(program)
        # every component is a value (see repro.engine.keys): canonical
        # statement forms, the env fingerprint, the data source's content
        # digest, and the window's snapshot content digests — so the key
        # addresses the same outcome in any process
        base = (self._statements_key(statements), _env_key(env), _data_key(source))
        window_keys = doms.value_key()
        counters = self._active_counters()
        hit = self._cache.get(base, window_keys, budget, counters=counters)
        if hit is not None:
            actions, final_env = hit
            return EvalResult(list(actions), doms.window(len(actions)), final_env)
        resumable = resumable and len(statements) == 1
        if resumable:
            cont = self._cache.get_continuation(
                base, window_keys, budget, counters=counters
            )
            if cont is not None:
                prefix_actions, cont_env, state = cont
                consumed = len(prefix_actions)
                suffix = evaluator.resume_statement(
                    statements[0],
                    state,
                    doms.window(consumed),
                    source,
                    cont_env,
                    max_actions=budget - consumed,
                )
                actions = list(prefix_actions) + suffix.actions
                result = EvalResult(
                    actions,
                    doms.window(len(actions)),
                    suffix.env,
                    # the stitched last-action env is only known when the
                    # suffix emitted; otherwise stay conservative (None
                    # can never satisfy `is env`)
                    suffix.env_at_last_action if suffix.actions else None,
                    _shift_continuation(suffix.continuation, consumed),
                )
                self._record_result(
                    base, window_keys, budget, result, counters, statements
                )
                return result
        result = evaluator.execute(
            statements, doms, source, env, max_actions,
            record_continuation=resumable,
        )
        self._record_result(base, window_keys, budget, result, counters, statements)
        return result

    def _record_result(
        self,
        base: tuple,
        window_keys: tuple[int, ...],
        budget: int,
        result: EvalResult,
        counters: Optional[CacheCounters],
        statements: Optional[tuple] = None,
    ) -> None:
        cost = None
        if statements is not None:
            cost = self._cost_hint(base[0], statements)
            if cost is None:
                # the static bound is unbounded (a loop) — but the entry
                # is value-addressed to these exact snapshots, so its
                # recompute cost is exactly the execution it records
                cost = len(result.actions)
        self._cache.put(
            base,
            window_keys,
            budget,
            tuple(result.actions),
            result.env,
            exact_budget_ok=result.env_at_last_action is result.env,
            counters=counters,
            continuation=result.continuation,
            cost=cost,
        )

    def _cost_hint(
        self, statements_key: tuple, statements: Optional[tuple]
    ) -> Optional[int]:
        """A static upper bound on this fragment's recompute cost.

        Feeds the store tier policy: a *bounded* cheap cost means the
        entry is faster to re-simulate than to read back, so the file
        backend may skip persisting it.  Computed with ``data=None``
        (loops stay unbounded; :meth:`_record_result` then falls back
        to the entry's recorded action count, which is exact for a
        value-addressed entry) and memoized per canonical statements
        key.
        """
        if statements is None:
            return None
        hint = self._cost_hints.get(statements_key, _COST_UNKNOWN)
        if hint is not _COST_UNKNOWN:
            return hint
        try:
            from repro.analysis.cost import statement_cost

            total: Optional[int] = 0
            for statement in statements:
                interval = statement_cost(statement, None)
                if interval.hi is None:
                    total = None
                    break
                total += interval.hi
        except Exception:  # stub statements outside the analysis vocabulary
            total = None
        if len(self._cost_hints) >= 4096:
            self._cost_hints.clear()
        self._cost_hints[statements_key] = total
        return total

    # ------------------------------------------------------------------
    # Consistency and resolution (delegates — index-accelerated)
    # ------------------------------------------------------------------
    def consistent_prefix_length(
        self,
        produced: Sequence[Action],
        reference: Sequence[Action],
        doms: DOMTrace,
    ) -> int:
        """Memoized :func:`repro.semantics.consistency.consistent_prefix_length`.

        Validation re-checks the same produced trace against the same
        recorded slice whenever the underlying execution repeats; the
        memo is keyed by the actions' content digests and the window's
        snapshot digests — values, so equal checks from any session (or
        any process, through a persistent backend) share one entry.
        The digests themselves are id-memoized per action object
        (:meth:`action_key`), keeping the hot path a tuple of dict hits.
        """
        if self._cache is None or not produced:
            return _consistent_prefix_length(produced, reference, doms)
        key = (
            tuple(self.action_key(action) for action in produced),
            tuple(self.action_key(action) for action in reference),
            doms.value_key(),
        )
        counters = self._active_counters()
        hit = self._cache.get_consistency(key, counters=counters)
        if hit is not None:
            return hit
        value = self._incremental_prefix_length(
            key, produced, reference, doms, counters
        )
        if value is None:
            value = _consistent_prefix_length(produced, reference, doms)
        self._cache.put_consistency(key, value, counters=counters)
        return value

    #: How many trailing actions the incremental consistency path will
    #: look back over for a settled prefix entry (extension adds at most
    #: a handful of actions between checks; past that, rescanning whole
    #: is no worse than probing).
    _CONSISTENCY_LOOKBACK = 4

    def _incremental_prefix_length(
        self, key, produced, reference, doms, counters
    ) -> Optional[int]:
        """Extend a settled shorter check instead of rescanning.

        Incremental synthesis re-checks the same growing traces after
        every recorded action; the full-sequence memo misses (the key
        grew) but the previous call's entry is this call's *prefix*.
        Finding a fully-consistent settled prefix of length ``cut``
        reduces the scan to the tail beyond it — per-call consistency
        cost stays O(new actions) on long demonstrations.  A settled
        prefix that was already inconsistent is the answer outright.
        """
        produced_keys, reference_keys, window_keys = key
        limit = min(len(produced), len(reference), len(doms))
        floor = max(limit - self._CONSISTENCY_LOOKBACK, 1)
        for cut in range(limit - 1, floor - 1, -1):
            prefix_key = (
                produced_keys[:cut],
                reference_keys[:cut],
                window_keys[:cut],
            )
            prior = self._cache.get_consistency(prefix_key, counters=counters)
            if prior is None:
                continue
            if prior < cut:
                return prior
            tail = _consistent_prefix_length(
                produced[cut:limit], reference[cut:limit], doms.window(cut)
            )
            return cut + tail
        return None

    def resolve(self, selector: ConcreteSelector, dom: DOMNode) -> Optional[DOMNode]:
        """Delegate to :func:`repro.dom.xpath.resolve`."""
        return _resolve(selector, dom)

    def valid(self, selector: ConcreteSelector, dom: DOMNode) -> bool:
        """The paper's ``valid(ρ, π)`` through the engine seam."""
        return _resolve(selector, dom) is not None

    # ------------------------------------------------------------------
    def _statements_key(self, statements: tuple[Statement, ...]) -> tuple:
        return tuple(self.statement_key(stmt) for stmt in statements)

    #: Flush threshold for the canonical-statement memo: keeps the pin
    #: list from growing without bound over very long sessions (a flush
    #: only costs recomputation, never correctness).
    _CANON_LIMIT = 1 << 16

    def statement_key(self, stmt: Statement) -> tuple:
        """Id-memoized :func:`repro.lang.ast.canonical_statement`.

        Statement objects are shared between worklist tuples and their
        rewrites, so identity-keyed lookups hit constantly; referents
        are pinned so their ids stay valid while memoized.  The hot
        lookup is lockless; the write side (including the occasional
        flush) takes a lock so a flush can never separate an entry from
        its pin — an unpinned entry whose statement got collected would
        let a recycled id alias another statement's key.  Concurrent
        cold misses both compute the same canonical form, so the double
        insert is idempotent.
        """
        key = self._canon.get(id(stmt))
        if key is None:
            key = canonical_statement(stmt)  # pure; computed unlocked
            with self._canon_lock:
                if len(self._canon) >= self._CANON_LIMIT:
                    self._canon.clear()
                    self._canon_pins.clear()
                self._canon[id(stmt)] = key
                self._canon_pins.append(stmt)
        return key

    def action_key(self, action: Action) -> int:
        """Id-memoized content digest of one action (a pure value).

        Actions are shared between executions and consistency checks of
        the same trace slice, so identity-keyed lookups hit constantly;
        the same locking discipline as :meth:`statement_key` keeps the
        "memoized ⇒ pinned" invariant under concurrent workers.
        """
        key = self._action_keys.get(id(action))
        if key is None:
            key = action_digest(action)  # pure; computed unlocked
            with self._canon_lock:
                if len(self._action_keys) >= self._CANON_LIMIT:
                    self._action_keys.clear()
                    self._action_pins.clear()
                self._action_keys[id(action)] = key
                self._action_pins.append(action)
        return key


def _shift_continuation(
    continuation: Optional[tuple], consumed: int
) -> Optional[tuple]:
    """Rebase a resumed run's continuation onto the full window.

    The suffix run records consumed-action counts relative to its own
    (suffix) window; adding the stitched prefix length makes the state
    valid for the full window's cache entry.
    """
    if continuation is None:
        return None
    offset, cont_env, state = continuation
    return (consumed + offset, cont_env, state)


def _env_key(env: Optional[Env]) -> tuple:
    if env is None or len(env) == 0:
        return ()
    return env.fingerprint()


def _data_key(source: Optional[DataSource]) -> int:
    if source is None:
        return 0
    return data_key(source)
