"""repro — a reproduction of WebRobot (PLDI 2022).

Web robotic process automation via interactive programming-by-
demonstration: record actions + DOM snapshots, synthesize generalizing
programs through speculative rewriting, and automate the rest of the
task.

Quick start::

    from repro import Browser, Synthesizer, DataSource
    from repro.benchmarks.sites.store_locator import StoreLocatorSite

    browser = Browser(StoreLocatorSite(), DataSource({"zips": ["48104"]}))
    ...  # perform a few actions
    result = Synthesizer(browser.data).synthesize(*browser.trace())
    print(result.best_program, result.best_prediction)

See ``examples/`` for complete end-to-end scenarios and ``DESIGN.md`` for
the paper-to-module map.
"""

from repro.browser import (
    Browser,
    Recording,
    RepairingReplayer,
    Replayer,
    VirtualWebsite,
    record_ground_truth,
)
from repro.engine import ExecutionEngine
from repro.export import export_program
from repro.interact import InteractiveSession, NoisyUser, OracleUser, SessionReport
from repro.lang import (
    Action,
    DataSource,
    Program,
    format_program,
    parse_program,
)
from repro.lang.check import assert_well_formed, check_program
from repro.lang.lint import LintFinding, lint_program
from repro.synth import (
    DEFAULT_CONFIG,
    SynthesisConfig,
    SynthesisProblem,
    SynthesisResult,
    Synthesizer,
    generalizes,
    satisfies,
)

__version__ = "1.1.0"

__all__ = [
    "ExecutionEngine",
    "Browser",
    "Recording",
    "Replayer",
    "VirtualWebsite",
    "record_ground_truth",
    "InteractiveSession",
    "NoisyUser",
    "OracleUser",
    "SessionReport",
    "Action",
    "DataSource",
    "Program",
    "format_program",
    "parse_program",
    "export_program",
    "check_program",
    "assert_well_formed",
    "LintFinding",
    "lint_program",
    "RepairingReplayer",
    "DEFAULT_CONFIG",
    "SynthesisConfig",
    "SynthesisProblem",
    "SynthesisResult",
    "Synthesizer",
    "generalizes",
    "satisfies",
    "__version__",
]
