"""Ring-buffered span recorder exporting Chrome trace-event JSON.

Disabled by default: :func:`span` costs one flag check and returns a
shared no-op context manager, which is what keeps the instrumented
hot paths inside the <=5% budget gated by
``benchmarks/bench_obs_overhead.py``.

Enablement is lazy from the environment on first use:

* ``REPRO_TRACE=1`` (or ``on``/``true``/``yes``) — record spans into
  the in-process ring buffer (drained via :func:`export` or the
  ``GET /v1/metrics`` span counter);
* ``REPRO_TRACE=<path>`` — additionally write the Chrome trace JSON
  to ``<path>`` at interpreter exit;
* ``repro synthesize --trace-out t.json`` calls :func:`enable`
  directly and writes explicitly.

Recorded spans are Chrome trace-event *complete* events (``ph="X"``):
wall-clock ``ts`` microseconds (so spans from forked workers align on
one Perfetto timeline), ``dur`` from a perf-counter delta, real
``pid``/``tid``, and ``args`` carrying ``trace_id``/``span_id``/
``parent_id`` plus whatever the instrumentation noted.  Parentage
nests via a contextvar inside a thread and falls back to the
propagated :class:`~repro.obs.context.TraceContext` span id across
thread/process boundaries.
"""

from __future__ import annotations

import atexit
import contextvars
import json
import os
import threading
import time
from collections import deque

from . import context as trace_context
from . import metrics

#: Spans kept in the ring buffer; older spans are dropped silently.
DEFAULT_CAPACITY = 20_000

_TRUE_VALUES = {"1", "on", "true", "yes"}
_FALSE_VALUES = {"", "0", "off", "false", "no"}

_lock = threading.Lock()
_events: deque = deque(maxlen=DEFAULT_CAPACITY)
_enabled = False
_initialized = False
_out_path: str | None = None
_atexit_registered = False

_parent_span: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_parent_span", default=None
)

_spans_total = None


def _span_counter():
    global _spans_total
    if _spans_total is None:
        _spans_total = metrics.registry().counter(
            "repro_trace_spans_total", "Spans recorded by the tracer."
        )
    return _spans_total


class _NullSpan:
    """Shared disabled-path span: enter/exit/note are all no-ops."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **args) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """One recorded span; use via ``with tracing.span(name): ...``."""

    __slots__ = (
        "name",
        "args",
        "trace_id",
        "span_id",
        "parent_id",
        "_start_wall_us",
        "_start_perf_ns",
        "_token",
    )

    def __init__(self, name: str, ctx=None, args=None):
        self.name = name
        self.args = dict(args) if args else {}
        if ctx is None:
            ctx = trace_context.current()
        self.trace_id = ctx.trace_id if ctx else None
        self.span_id = trace_context.new_span_id()
        # Local nesting wins; a propagated context's span id stitches
        # the first span on a new thread/process under its caller.
        self.parent_id = _parent_span.get() or (ctx.span_id if ctx else None)
        self._start_wall_us = 0
        self._start_perf_ns = 0
        self._token = None

    def note(self, **args) -> None:
        """Attach key/value detail to the span's ``args``."""
        self.args.update(args)

    def __enter__(self):
        self._token = _parent_span.set(self.span_id)
        self._start_wall_us = time.time_ns() // 1000
        self._start_perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        dur_us = (time.perf_counter_ns() - self._start_perf_ns) // 1000
        _parent_span.reset(self._token)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        args = self.args
        args["span_id"] = self.span_id
        if self.trace_id is not None:
            args["trace_id"] = self.trace_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        event = {
            "name": self.name,
            "ph": "X",
            "ts": self._start_wall_us,
            "dur": dur_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        with _lock:
            _events.append(event)
        _span_counter().inc()
        return False


def _init_from_env() -> None:
    global _initialized
    value = os.environ.get("REPRO_TRACE", "").strip()
    token = value.lower()
    if token in _FALSE_VALUES:
        pass
    elif token in _TRUE_VALUES:
        enable()
    else:
        enable(path=value)
    _initialized = True


def enabled() -> bool:
    """Whether spans are being recorded (lazily reads ``REPRO_TRACE``)."""
    if not _initialized:
        _init_from_env()
    return _enabled


def span(name: str, ctx=None, **args):
    """A context manager recording ``name`` if tracing is enabled.

    ``ctx`` overrides the ambient :func:`~repro.obs.context.current`
    — pass it when entering a span on an executor thread that did not
    inherit the submitter's contextvars.
    """
    if not enabled():
        return NULL_SPAN
    return Span(name, ctx=ctx, args=args)


def _write_atexit() -> None:
    if _enabled and _out_path:
        try:
            write(_out_path)
        except OSError:
            pass


def enable(path: str | None = None, capacity: int | None = None) -> None:
    """Start recording; optionally write to ``path`` at exit."""
    global _enabled, _initialized, _out_path, _atexit_registered, _events
    if capacity is not None and capacity != _events.maxlen:
        with _lock:
            _events = deque(_events, maxlen=capacity)
    if path:
        _out_path = path
        if not _atexit_registered:
            atexit.register(_write_atexit)
            _atexit_registered = True
    _enabled = True
    _initialized = True


def disable() -> None:
    """Stop recording (the ring buffer is kept until :func:`reset`)."""
    global _enabled, _initialized
    _enabled = False
    _initialized = True


def reset() -> None:
    """Drop all recorded spans."""
    with _lock:
        _events.clear()


def events() -> list[dict]:
    """A snapshot of the recorded trace events, oldest first."""
    with _lock:
        return list(_events)


def export() -> dict:
    """The Chrome trace-event JSON object (Perfetto-loadable)."""
    return {"traceEvents": events(), "displayTimeUnit": "ms"}


def write(path: str) -> int:
    """Write :func:`export` to ``path``; returns the span count."""
    snapshot = export()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, separators=(",", ":"))
        handle.write("\n")
    return len(snapshot["traceEvents"])
