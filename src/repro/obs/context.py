"""Trace-context generation, scoping, and propagation formats.

A :class:`TraceContext` is the pair ``(trace_id, span_id)``: the
16-hex-char id of the whole demonstration's trace plus the 8-hex-char
id of the propagating span (the caller's span, which remote children
parent under).  It travels in two forms, both the same ``tid-sid``
string:

* the ``X-Repro-Trace`` HTTP header (:data:`HEADER`), attached by
  :class:`~repro.service.client.ServiceClient` and adopted by the
  server per request — this is what stitches spans across forked
  workers and through session migration;
* the optional ``trace`` envelope key (:data:`WIRE_KEY`) on protocol
  messages, emitted by ``to_wire`` only while a context is active so
  canonical encodings are unchanged when observability is off.

Scoping uses a :mod:`contextvars` variable, so concurrent server
request threads each see their own context.  Pool/pipeline executor
threads do **not** inherit contextvars from the submitting thread —
schedulers capture :func:`current` and re-enter it with :func:`use`
inside the worker closure.
"""

from __future__ import annotations

import contextvars
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass

#: HTTP header carrying the ``tid-sid`` pair across process boundaries.
HEADER = "X-Repro-Trace"

#: Optional protocol-envelope key carrying the same ``tid-sid`` pair.
WIRE_KEY = "trace"

_WIRE_RE = re.compile(r"^[0-9a-f]{16}-[0-9a-f]{8}$")


@dataclass(frozen=True)
class TraceContext:
    """An immutable (trace_id, span_id) propagation pair."""

    trace_id: str
    span_id: str

    def wire_value(self) -> str:
        """The ``tid-sid`` string used by both header and envelope."""
        return f"{self.trace_id}-{self.span_id}"


def new_trace_id() -> str:
    """A fresh 64-bit trace id (16 lowercase hex chars)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span id (8 lowercase hex chars)."""
    return os.urandom(4).hex()


def new_root() -> TraceContext:
    """Mint the root context for a new trace."""
    return TraceContext(new_trace_id(), new_span_id())


def parse(value: str | None) -> TraceContext | None:
    """Parse a ``tid-sid`` header/envelope value; None if malformed.

    Malformed values are dropped rather than rejected — propagation is
    best-effort telemetry, never a request-validity concern.
    """
    if not value or not isinstance(value, str):
        return None
    token = value.strip().lower()
    if not _WIRE_RE.match(token):
        return None
    trace_id, _, span_id = token.partition("-")
    return TraceContext(trace_id, span_id)


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)

#: Trace noted by ``from_wire`` while decoding a request body; the
#: server adopts it when no ``X-Repro-Trace`` header was sent.
_received: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_received", default=None
)


def current() -> TraceContext | None:
    """The context active in this thread/task, or None."""
    return _current.get()


def activate(ctx: TraceContext | None) -> contextvars.Token:
    """Set the active context; returns a token for :func:`deactivate`."""
    return _current.set(ctx)


def deactivate(token: contextvars.Token) -> None:
    _current.reset(token)


@contextmanager
def use(ctx: TraceContext | None):
    """Scope ``ctx`` as the active context for the ``with`` body."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def note_received(ctx: TraceContext) -> None:
    """Record a context seen in a decoded envelope (``from_wire``)."""
    _received.set(ctx)


def take_received() -> TraceContext | None:
    """Pop the last envelope-received context (cleared after reading)."""
    ctx = _received.get()
    if ctx is not None:
        _received.set(None)
    return ctx
