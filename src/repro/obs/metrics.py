"""Process-wide metrics: lock-safe counters, gauges, histograms, and
Prometheus text exposition.

The registry is dependency-free and cheap enough to sit on synthesis
hot paths: families are get-or-create (one dict lookup under the
registry lock), children are cached by label tuple, and each publish
is one lock'd add.  The process singleton (:func:`registry`) backs the
``GET /v1/metrics`` route and the ``repro metrics`` CLI.

``REPRO_OBS=off`` (also ``0``/``false``/``no``) turns every publish
into a shared no-op child so the disabled path can be benchmarked
honestly (``benchmarks/bench_obs_overhead.py``); the flag is also
toggleable in-process via :meth:`MetricsRegistry.set_enabled`.

Naming conventions (enforced where cheap, followed everywhere):

* ``repro_<subsystem>_<what>`` with base units spelled out
  (``_seconds``, ``_bytes``) — never milliseconds;
* counters always end in ``_total`` (constructor-enforced);
* labels are low-cardinality enums only (``kind``, ``phase``,
  ``route``, ``codec``, ``op``, ``code``) — ids never appear in label
  values (routes are normalised, e.g. ``/v1/sessions/:sid/actions``).
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

#: Content type for the classic Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_KILL_VALUES = {"0", "off", "false", "no"}

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def env_enabled() -> bool:
    """Whether ``REPRO_OBS`` leaves publication on (the default)."""
    return os.environ.get("REPRO_OBS", "").strip().lower() not in _KILL_VALUES


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("exponential_buckets needs start>0, factor>1, count>=1")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default latency buckets: 0.5 ms .. ~8.2 s, doubling.
DEFAULT_TIME_BUCKETS = exponential_buckets(0.0005, 2.0, 15)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _format_number(value: float) -> str:
    """Prometheus sample formatting: integral floats without the .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_body(names, values, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return ",".join(parts)


class _NullChild:
    """Shared no-op child handed out while the registry is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_CHILD = _NullChild()


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum")

    def __init__(self, bounds: tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        # One slot per bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    def snapshot(self) -> tuple[list[int], float]:
        with self._lock:
            return list(self._counts), self._sum


class _Family:
    """One named metric with labelled children."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str, labelnames=()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child for this label combination (created on first use)."""
        if not self._registry.enabled:
            return _NULL_CHILD
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    def _unlabelled(self):
        if self._registry.enabled and self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def clear(self) -> None:
        with self._lock:
            self._children.clear()

    def _sorted_children(self):
        with self._lock:
            return sorted(self._children.items())

    def render(self, lines: list[str]) -> None:
        lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        self._render_samples(lines)

    def _render_samples(self, lines: list[str]) -> None:
        for key, child in self._sorted_children():
            body = _label_body(self.labelnames, key)
            suffix = f"{{{body}}}" if body else ""
            lines.append(f"{self.name}{suffix} {_format_number(child.value)}")


class CounterFamily(_Family):
    kind = "counter"

    def __init__(self, registry, name, help, labelnames=()):
        if not name.endswith("_total"):
            raise ValueError(f"counter names must end in _total: {name!r}")
        super().__init__(registry, name, help, labelnames)

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)


class GaugeFamily(_Family):
    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabelled().dec(amount)

    def set(self, value: float) -> None:
        self._unlabelled().set(value)


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, registry, name, help, labelnames=(), buckets=DEFAULT_TIME_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        self.buckets = bounds
        super().__init__(registry, name, help, labelnames)

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabelled().observe(value)

    def _render_samples(self, lines: list[str]) -> None:
        for key, child in self._sorted_children():
            counts, total_sum = child.snapshot()
            base = _label_body(self.labelnames, key)
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                body = _label_body(self.labelnames, key, f'le="{_format_number(bound)}"')
                lines.append(f"{self.name}_bucket{{{body}}} {cumulative}")
            cumulative += counts[-1]
            body = _label_body(self.labelnames, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{{{body}}} {cumulative}")
            suffix = f"{{{base}}}" if base else ""
            lines.append(f"{self.name}_sum{suffix} {_format_number(total_sum)}")
            lines.append(f"{self.name}_count{suffix} {cumulative}")


class MetricsRegistry:
    """A named collection of metric families with text exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated
    registration with the same name returns the same family (kind and
    labelnames must agree), so instrumented modules can resolve their
    handles lazily without coordinating import order.
    """

    def __init__(self, enabled: bool | None = None):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self.enabled = env_enabled() if enabled is None else enabled

    def set_enabled(self, flag: bool) -> None:
        self.enabled = bool(flag)

    def _get_or_make(self, cls, name, help, labelnames, **kw):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(self, name, help, labelnames, **kw)
                self._families[name] = family
                return family
        if type(family) is not cls or family.labelnames != tuple(labelnames):
            raise ValueError(f"metric {name!r} re-registered with a different shape")
        return family

    def counter(self, name: str, help: str, labelnames=()) -> CounterFamily:
        return self._get_or_make(CounterFamily, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames=()) -> GaugeFamily:
        return self._get_or_make(GaugeFamily, name, help, labelnames)

    def histogram(
        self, name: str, help: str, labelnames=(), buckets=DEFAULT_TIME_BUCKETS
    ) -> HistogramFamily:
        return self._get_or_make(
            HistogramFamily, name, help, labelnames, buckets=buckets
        )

    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: list[str] = []
        for family in families:
            family.render(lines)
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Zero every family in place (family identity is preserved, so
        handles cached by instrumented modules stay valid)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.clear()
        self.enabled = env_enabled()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every subsystem publishes into."""
    return _REGISTRY


def reset_registry() -> None:
    """Test hook: zero all samples and re-read ``REPRO_OBS``."""
    _REGISTRY.reset()
