"""Zero-dependency observability: metrics, spans, trace propagation.

Three small modules, layered so nothing here imports the rest of
``repro`` (the rest of the repo imports *us*):

* :mod:`repro.obs.metrics` — a process-wide, lock-safe
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  log-bucketed histograms) rendered in the Prometheus text format.
  Served at ``GET /v1/metrics`` and scraped by ``repro metrics``.
* :mod:`repro.obs.tracing` — a ring-buffered span recorder, no-op by
  default, enabled via ``REPRO_TRACE`` or ``repro synthesize
  --trace-out``; exports Chrome trace-event JSON loadable in Perfetto.
* :mod:`repro.obs.context` — trace_id/span_id generation and the
  contextvar scoping that stitches one demonstration's spans across
  forked workers (``X-Repro-Trace`` header, protocol envelope
  ``trace`` key).

``benchmarks/bench_obs_overhead.py`` gates the cost of all three:
<=5% overhead with tracing disabled, byte-identical synthesized
programs with it enabled.
"""

from . import context, metrics, tracing

__all__ = ["context", "metrics", "tracing"]
