"""The rewrite-based baseline of §7.4: mini e-graph + Split/Reroll/Unsplit."""

from repro.baseline.egraph import EClassId, EGraph, ENode, PatternVar
from repro.baseline.egg_synth import (
    BaselineResult,
    substitute,
    synthesize_baseline,
    unroll,
)

__all__ = [
    "EClassId",
    "EGraph",
    "ENode",
    "PatternVar",
    "BaselineResult",
    "substitute",
    "synthesize_baseline",
    "unroll",
]
