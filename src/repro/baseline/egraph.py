"""A small e-graph library (union-find + hashcons + congruence closure).

The paper's Q4 baseline is built with `egg` (Willsey et al., POPL 2021).
This module reimplements the core machinery egg provides — e-classes,
congruence-closed merging, and pattern e-matching — in plain Python.  The
span-based baseline synthesizer (:mod:`repro.baseline.egg_synth`) plays
the role of egg's *rules + scheduler* for the trace-rewriting domain.

The implementation follows the classic worklist ``rebuild`` design:
merges enqueue the merged class, and rebuilding re-canonicalises parent
e-nodes, merging classes that become congruent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, Union

EClassId = int


@dataclass(frozen=True)
class ENode:
    """An operator applied to e-class children (payload for leaves)."""

    op: Hashable
    children: tuple[EClassId, ...] = ()


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable for :meth:`EGraph.ematch`."""

    name: str


#: Patterns are nested tuples ``(op, child_pattern, ...)`` or variables.
Pattern = Union[tuple, PatternVar]


class EGraph:
    """E-classes over :class:`ENode` terms with congruence closure."""

    def __init__(self) -> None:
        self._parent: list[EClassId] = []
        self._hashcons: dict[ENode, EClassId] = {}
        self._class_nodes: dict[EClassId, set[ENode]] = {}
        self._class_parents: dict[EClassId, list[ENode]] = {}
        self._dirty: list[EClassId] = []

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def find(self, class_id: EClassId) -> EClassId:
        """Canonical representative of a class (with path compression)."""
        root = class_id
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[class_id] != root:
            self._parent[class_id], class_id = root, self._parent[class_id]
        return root

    def _new_class(self) -> EClassId:
        class_id = len(self._parent)
        self._parent.append(class_id)
        self._class_nodes[class_id] = set()
        self._class_parents[class_id] = []
        return class_id

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def canonicalize(self, node: ENode) -> ENode:
        """Rewrite child ids to their representatives."""
        return ENode(node.op, tuple(self.find(child) for child in node.children))

    def add(self, op: Hashable, children: tuple[EClassId, ...] = ()) -> EClassId:
        """Add (or find) the e-node ``op(children...)``; returns its class."""
        node = self.canonicalize(ENode(op, tuple(children)))
        existing = self._hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        class_id = self._new_class()
        self._hashcons[node] = class_id
        self._class_nodes[class_id].add(node)
        for child in node.children:
            self._class_parents[child].append(node)
        return class_id

    def add_term(self, term: tuple) -> EClassId:
        """Add a nested-tuple term ``(op, subterm, ...)`` bottom-up."""
        op, *subterms = term
        children = tuple(self.add_term(sub) for sub in subterms)
        return self.add(op, children)

    # ------------------------------------------------------------------
    # Merging + rebuilding
    # ------------------------------------------------------------------
    def merge(self, first: EClassId, second: EClassId) -> EClassId:
        """Union two classes; call :meth:`rebuild` before reading back."""
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        # union by size of node sets
        if len(self._class_nodes[root_a]) < len(self._class_nodes[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._class_nodes[root_a] |= self._class_nodes.pop(root_b)
        self._class_parents[root_a].extend(self._class_parents.pop(root_b))
        self._dirty.append(root_a)
        return root_a

    def rebuild(self) -> None:
        """Restore congruence: merge classes whose nodes became equal."""
        while self._dirty:
            todo = {self.find(class_id) for class_id in self._dirty}
            self._dirty.clear()
            for class_id in todo:
                self._repair(class_id)

    def _repair(self, class_id: EClassId) -> None:
        class_id = self.find(class_id)
        parents = self._class_parents.get(class_id, [])
        seen: dict[ENode, EClassId] = {}
        for parent in parents:
            owner = self._hashcons.pop(parent, None)
            canonical = self.canonicalize(parent)
            if owner is None:
                owner = self._hashcons.get(canonical)
                if owner is None:
                    continue
            owner = self.find(owner)
            duplicate = seen.get(canonical)
            if duplicate is not None and duplicate != owner:
                owner = self.find(self.merge(duplicate, owner))
            seen[canonical] = owner
            self._hashcons[canonical] = owner
        # refresh the class's own node set
        class_id = self.find(class_id)
        refreshed = {self.canonicalize(node) for node in self._class_nodes[class_id]}
        self._class_nodes[class_id] = refreshed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def equal(self, first: EClassId, second: EClassId) -> bool:
        """Whether two ids currently denote the same class."""
        return self.find(first) == self.find(second)

    def nodes(self, class_id: EClassId) -> set[ENode]:
        """The e-nodes of a class (canonicalised)."""
        return {
            self.canonicalize(node) for node in self._class_nodes[self.find(class_id)]
        }

    def classes(self) -> Iterator[EClassId]:
        """All canonical class ids."""
        for class_id in self._class_nodes:
            if self.find(class_id) == class_id:
                yield class_id

    def class_count(self) -> int:
        """Number of distinct classes."""
        return sum(1 for _ in self.classes())

    def node_count(self) -> int:
        """Number of canonical e-nodes."""
        return len(self._hashcons)

    # ------------------------------------------------------------------
    # E-matching
    # ------------------------------------------------------------------
    def ematch(self, pattern: Pattern) -> list[tuple[EClassId, dict[str, EClassId]]]:
        """All ``(class, substitution)`` pairs where ``pattern`` matches."""
        matches: list[tuple[EClassId, dict[str, EClassId]]] = []
        for class_id in self.classes():
            for substitution in self._match_class(pattern, class_id, {}):
                matches.append((class_id, substitution))
        return matches

    def _match_class(
        self, pattern: Pattern, class_id: EClassId, subst: dict[str, EClassId]
    ) -> Iterator[dict[str, EClassId]]:
        class_id = self.find(class_id)
        if isinstance(pattern, PatternVar):
            bound = subst.get(pattern.name)
            if bound is None:
                extended = dict(subst)
                extended[pattern.name] = class_id
                yield extended
            elif self.find(bound) == class_id:
                yield subst
            return
        op, *sub_patterns = pattern
        for node in self.nodes(class_id):
            if node.op != op or len(node.children) != len(sub_patterns):
                continue
            yield from self._match_children(sub_patterns, node.children, subst)

    def _match_children(
        self,
        patterns: list[Pattern],
        children: tuple[EClassId, ...],
        subst: dict[str, EClassId],
    ) -> Iterator[dict[str, EClassId]]:
        if not patterns:
            yield subst
            return
        head, *rest = patterns
        for extended in self._match_class(head, children[0], subst):
            yield from self._match_children(rest, children[1:], extended)
