"""The rewrite-based baseline synthesizer of §7.4 (Table 2).

This is the conventional, *correct-by-construction* approach the paper
compares against: equality saturation over the action trace with three
rules —

* **Split**  — a slice can be cut into two adjacent slices (all split
  points; associativity exposes every partition);
* **Reroll** — a slice that is syntactically ``r ≥ 2`` unrollings of one
  loop template becomes that loop (the rule itself verifies *every*
  iteration, hence correct by construction — no speculation, no
  semantic validation);
* **Unsplit** — rerolled slices recombine into statement sequences.

The engine keeps, per trace span, a bounded set of *item lists* (sequences
of statements covering the span) — the e-class-analysis view of the
saturated e-graph.  Nested loops require rerolling lists whose items are
loops themselves, which is exactly where the item-list sets blow up
combinatorially: single loops stay cheap, doubly-nested get slow, and
three-level nesting exhausts the budget, reproducing Table 2's shape.

Like the paper's baseline, only selector loops over raw selectors are
supported (no alternative selectors, no value paths, no while loops).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector
from repro.lang.actions import Action, action_to_statement
from repro.lang.ast import (
    ActionStmt,
    ChildrenOf,
    ForEachSelector,
    Program,
    Selector,
    Statement,
    Var,
    canonical_statement,
    program_size,
)
from repro.synth.anti_unify import anti_unify_statements
from repro.synth.config import no_selector_config
from repro.synth.parametrize import parametrize_statement

ItemList = tuple[Statement, ...]


@dataclass
class BaselineResult:
    """Outcome of one baseline synthesis run."""

    program: Optional[Program]
    elapsed: float
    timed_out: bool
    spans: int = 0
    item_lists: int = 0

    @property
    def solved(self) -> bool:
        """Whether any program was produced."""
        return self.program is not None


class _Timeout(Exception):
    pass


# ----------------------------------------------------------------------
# Syntactic substitution (for correct-by-construction unrolling)
# ----------------------------------------------------------------------
def substitute(stmt: Statement, var: Var, binding: ConcreteSelector) -> Statement:
    """Replace ``var`` by a concrete selector throughout a statement."""
    if isinstance(stmt, ActionStmt):
        target = stmt.target
        if target is not None and target.base == var:
            target = Selector(None, binding.steps + target.steps)
        return ActionStmt(stmt.kind, target, stmt.text, stmt.value)
    if isinstance(stmt, ForEachSelector):
        base = stmt.collection.base
        if base.base == var:
            base = Selector(None, binding.steps + base.steps)
        collection = type(stmt.collection)(base, stmt.collection.pred)
        body = tuple(substitute(child, var, binding) for child in stmt.body)
        return ForEachSelector(stmt.var, collection, body)
    return stmt


def unroll(loop: ForEachSelector, count: int) -> list[Statement]:
    """Syntactically unroll ``count`` iterations of a selector loop."""
    base = ConcreteSelector(loop.collection.base.steps)
    extend = base.child if isinstance(loop.collection, ChildrenOf) else base.desc
    statements: list[Statement] = []
    for iteration in range(1, count + 1):
        element = extend(loop.collection.pred, iteration)
        for stmt in loop.body:
            statements.append(substitute(stmt, loop.var, element))
    return statements


# ----------------------------------------------------------------------
# The Reroll rule
# ----------------------------------------------------------------------
class _Reroller:
    """Builds loops whose unrolling syntactically equals an item list."""

    def __init__(self, dom: DOMNode, deadline: float) -> None:
        self.dom = dom
        self.deadline = deadline
        self.config = no_selector_config()
        self._cache: dict[tuple, Optional[Statement]] = {}

    def _check_time(self) -> None:
        if time.perf_counter() > self.deadline:
            raise _Timeout()

    def reroll(self, items: ItemList) -> Optional[Statement]:
        """The loop statement rerolling ``items``, or None."""
        key = tuple(canonical_statement(stmt) for stmt in items)
        if key in self._cache:
            return self._cache[key]
        result = self._reroll_uncached(items)
        self._cache[key] = result
        return result

    def _reroll_uncached(self, items: ItemList) -> Optional[Statement]:
        length = len(items)
        for body_len in range(1, length // 2 + 1):
            if length % body_len:
                continue
            repetitions = length // body_len
            loop = self._try_template(items, body_len, repetitions)
            if loop is not None:
                return loop
        return None

    def _try_template(
        self, items: ItemList, body_len: int, repetitions: int
    ) -> Optional[Statement]:
        """Infer a template from iterations 1-2, then verify all of them."""
        self._check_time()
        first = items[:body_len]
        second = items[body_len : 2 * body_len]
        for pivot in range(body_len):
            unified = anti_unify_statements(
                first[pivot], self.dom, second[pivot], self.dom, self.config
            )
            for candidate in unified:
                body: list[Statement] = []
                feasible = True
                for position in range(body_len):
                    if position == pivot:
                        body.append(candidate.stmt)
                        continue
                    variants = parametrize_statement(
                        first[position],
                        candidate.var,
                        candidate.first,
                        self.dom,
                        self.config,
                    )
                    # correct-by-construction: take the parametrized form
                    # whose unrolling will be verified below; raw-only mode
                    # yields at most one besides the unchanged statement
                    body.append(variants[0])
                    if not variants:
                        feasible = False
                        break
                if not feasible:
                    continue
                loop = ForEachSelector(
                    candidate.var, candidate.collection, tuple(body)
                )
                if self._verify(loop, items, repetitions):
                    return loop
        return None

    def _verify(self, loop: ForEachSelector, items: ItemList, repetitions: int) -> bool:
        """The correct-by-construction check: full syntactic unrolling."""
        unrolled = unroll(loop, repetitions)
        if len(unrolled) != len(items):
            return False
        return all(
            canonical_statement(a) == canonical_statement(b)
            for a, b in zip(unrolled, items)
        )


# ----------------------------------------------------------------------
# Saturation over spans
# ----------------------------------------------------------------------
def synthesize_baseline(
    actions: Sequence[Action],
    snapshots: Sequence[DOMNode],
    timeout: float = 60.0,
    max_lists_per_span: int = 24,
) -> BaselineResult:
    """Saturate Split/Reroll/Unsplit over the trace; extract a program.

    ``snapshots[0]`` provides the DOM context (like the paper's baseline,
    only single-page selector-loop tasks are supported).  Returns the
    smallest program covering the whole trace once saturation converges,
    or a timeout marker.
    """
    started = time.perf_counter()
    deadline = started + timeout
    length = len(actions)
    if length == 0:
        return BaselineResult(Program(()), 0.0, False)
    reroller = _Reroller(snapshots[0], deadline)
    # items[(i, j)] — bounded set of statement sequences covering [i, j)
    items: dict[tuple[int, int], list[ItemList]] = {}
    total_lists = 0
    try:
        for index in range(length):
            singleton = (action_to_statement(actions[index]),)
            items[(index, index + 1)] = _with_reroll(
                [singleton], reroller
            )
        for span_len in range(2, length + 1):
            for start in range(0, length - span_len + 1):
                end = start + span_len
                collected: list[ItemList] = []
                seen: set[tuple] = set()
                for split in range(start + 1, end):  # the Split rule
                    for left in items[(start, split)]:
                        for right in items[(split, end)]:
                            merged = left + right  # the Unsplit rule
                            key = tuple(canonical_statement(s) for s in merged)
                            if key not in seen:
                                seen.add(key)
                                collected.append(merged)
                    if time.perf_counter() > deadline:
                        raise _Timeout()
                collected.sort(key=len)
                collected = collected[:max_lists_per_span]
                items[(start, end)] = _with_reroll(collected, reroller)
                total_lists += len(items[(start, end)])
    except _Timeout:
        return BaselineResult(
            None, time.perf_counter() - started, True,
            spans=len(items), item_lists=total_lists,
        )
    candidates = items.get((0, length), [])
    if not candidates:
        return BaselineResult(
            None, time.perf_counter() - started, False,
            spans=len(items), item_lists=total_lists,
        )
    best = min(
        (Program(item_list) for item_list in candidates),
        key=lambda program: (len(program.statements), program_size(program)),
    )
    return BaselineResult(
        best, time.perf_counter() - started, False,
        spans=len(items), item_lists=total_lists,
    )


def _with_reroll(collected: list[ItemList], reroller: _Reroller) -> list[ItemList]:
    """Apply the Reroll rule to every item list; loops join the set."""
    result = list(collected)
    seen = {tuple(canonical_statement(s) for s in item_list) for item_list in result}
    for item_list in collected:
        if len(item_list) < 2:
            continue
        loop = reroller.reroll(item_list)
        if loop is not None:
            rolled = (loop,)
            key = (canonical_statement(loop),)
            if key not in seen:
                seen.add(key)
                result.insert(0, rolled)  # rolled forms sort first (len 1)
    return result
