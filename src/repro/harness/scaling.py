"""Trace-length scaling of incremental synthesis (§5.4 quantified).

Table 1 shows the *aggregate* cost of disabling incrementality; this
harness shows the *shape*: per-call synthesis time as the demonstration
grows.  The incremental engine's cost per call stays roughly flat (only
spans touching the new suffix are re-speculated), while the
from-scratch engine re-explores the whole trace every call and its
per-call cost grows with trace length.

The measurement protocol mirrors real interactive use: one synthesizer
per variant receives every prefix of a recording in order (exactly what
the front end does after each user action); call times are bucketed by
trace length.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.figures import horizontal_bars
from repro.harness.report import fmt_ms, render_table
from repro.lang.pretty import format_program
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig, no_incremental_config
from repro.synth.synthesizer import Synthesizer

#: Default subject: a doubly-nested scrape whose traces grow long.
DEFAULT_BENCHMARK = "b12"


@dataclass
class ScalingSeries:
    """Per-call synthesis times (and engine telemetry) for one variant.

    ``programs`` is only filled when the run collects them (see
    :func:`run_scaling`): one tuple of rendered programs per call, in
    rank order — what the byte-identity comparisons of the ablation
    benches diff between variants.  ``cross_session_hits`` accumulates
    shared-cache reuse from other sessions in the same process;
    ``warm_hits`` accumulates persistent-backend reuse from prior
    processes; ``cache_bytes`` is the backing cache's footprint gauge
    after the final call.
    """

    name: str
    lengths: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cross_session_hits: int = 0
    warm_hits: int = 0
    cache_bytes: int = 0
    index_builds: int = 0
    enum_indexed: int = 0
    enum_fallback: int = 0
    programs: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Wall-clock sum over all synthesize calls."""
        return sum(self.times)

    @property
    def cache_hit_rate(self) -> float:
        """Execution-cache hits over all lookups across the run."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def bucket_means(self, bucket: int) -> list[tuple[str, float]]:
        """Mean call time per trace-length bucket, as chart rows."""
        sums: dict[int, list[float]] = {}
        for length, elapsed in zip(self.lengths, self.times):
            sums.setdefault(length // bucket, []).append(elapsed)
        rows = []
        for index in sorted(sums):
            low, high = index * bucket + 1, (index + 1) * bucket
            values = sums[index]
            rows.append((f"{low}-{high}", sum(values) / len(values)))
        return rows


def run_scaling(
    bid: str = DEFAULT_BENCHMARK,
    max_length: int = 80,
    timeout: float = 1.0,
    variants: Optional[Sequence[tuple[str, SynthesisConfig]]] = None,
    collect_programs: bool = False,
) -> list[ScalingSeries]:
    """Measure per-call time vs. trace length for each variant.

    The default variant pair is the incremental-vs-from-scratch
    comparison; the engine-cache and speculation-index benches pass
    their own configuration pairs instead.  With ``collect_programs``
    every call's ranked program list is rendered into the series, so
    behaviour-preserving variants can be diffed byte-for-byte.
    """
    benchmark = benchmark_by_id(bid)
    recording = benchmark.record()
    length = min(recording.length - 1, max_length)
    if variants is None:
        variants = [
            ("incremental", DEFAULT_CONFIG),
            ("from scratch", no_incremental_config()),
        ]
    series = []
    for name, config in variants:
        current = ScalingSeries(name)
        with Synthesizer(benchmark.data, config) as synthesizer:
            for cut in range(1, length + 1):
                actions, snapshots = recording.prefix(cut)
                started = time.perf_counter()
                result = synthesizer.synthesize(actions, snapshots, timeout=timeout)
                current.lengths.append(cut)
                current.times.append(time.perf_counter() - started)
                current.cache_hits += result.stats.cache_hits
                current.cache_misses += result.stats.cache_misses
                current.cross_session_hits += result.stats.cache_cross_session_hits
                current.warm_hits += result.stats.cache_warm_hits
                current.cache_bytes = result.stats.cache_bytes  # end-of-run gauge
                current.index_builds += result.stats.index_builds
                current.enum_indexed += result.stats.enum_indexed
                current.enum_fallback += result.stats.enum_fallback
                if collect_programs:
                    current.programs.append(
                        tuple(format_program(program) for program in result.programs)
                    )
        series.append(current)
    return series


def render_scaling(series: Sequence[ScalingSeries], bucket: int = 10) -> str:
    """Bucketed mean call times as a table plus bar charts."""
    buckets = sorted(
        {row[0] for entry in series for row in entry.bucket_means(bucket)},
        key=lambda label: int(label.split("-")[0]),
    )
    by_name = {
        entry.name: dict(entry.bucket_means(bucket)) for entry in series
    }
    rows = []
    for label in buckets:
        rows.append(
            [label]
            + [fmt_ms(by_name[entry.name].get(label, 0.0)) for entry in series]
        )
    table = render_table(
        ["trace length"] + [entry.name for entry in series], rows
    )
    charts = []
    for entry in series:
        chart_rows = [
            (label, mean * 1000.0) for label, mean in entry.bucket_means(bucket)
        ]
        charts.append(
            f"{entry.name} — mean synthesis time per call (ms)\n"
            + horizontal_bars(chart_rows, unit="ms")
        )
    return "\n\n".join(
        ["Per-call synthesis time vs. trace length\n" + table, *charts]
    )


def main() -> None:
    """CLI entry: regenerate the scaling comparison."""
    print(render_scaling(run_scaling()))


if __name__ == "__main__":
    main()
