"""Extended ablations beyond Table 1 (design-choice benches).

Table 1 ablates the two headline ideas (selector search and incremental
synthesis).  DESIGN.md calls out three further implementation choices
that stand in for the paper's unstated "several additional
optimizations"; this module quantifies each so the trade-offs are
measured rather than asserted:

* **search caps** (:func:`run_caps_ablation`) — the bounded-search
  knobs ``max_rewrites_per_span`` / ``max_loop_bodies_per_span``:
  tighter caps are faster but can drop the intended rewrite, looser
  caps burn the 1-second budget on duplicates;
* **ranking strategy** (:func:`run_ranking_ablation`) — the paper's
  smallest-program heuristic against the alternatives in
  :mod:`repro.synth.ranking`;
* **extensions** (:func:`run_extensions_report`) — the two published
  failure cases (b6 disjunctive selectors, b9/b10 numbered pagination)
  with this repo's opt-in extensions switched on and off.

All runners accept a benchmark subset so the benches stay fast; the
defaults are small representative slices of the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.benchmarks.suite import benchmark_by_id
from repro.harness.q1 import BenchmarkResult, evaluate_benchmark
from repro.harness.report import fmt_ms, fmt_pct, render_table
from repro.synth.config import (
    DEFAULT_CONFIG,
    SynthesisConfig,
    numbered_pagination_config,
    token_predicate_config,
)
from repro.synth.ranking import STRATEGIES

#: Representative slice: flat list, nested store scrape, data entry,
#: forum navigation, wiki table.
DEFAULT_SUBSET = ("b74", "b12", "b33", "b21", "b16", "b7")


@dataclass
class VariantOutcome:
    """One configuration's aggregate over the subset."""

    name: str
    results: list[BenchmarkResult]

    @property
    def solved(self) -> int:
        return sum(result.intended for result in self.results)

    @property
    def mean_accuracy(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.accuracy for result in self.results) / len(self.results)

    @property
    def mean_time(self) -> float:
        times = [t for result in self.results for t in result.prediction_times]
        return sum(times) / len(times) if times else 0.0

    def row(self) -> list:
        return [
            self.name,
            f"{self.solved}/{len(self.results)}",
            fmt_pct(self.mean_accuracy),
            fmt_ms(self.mean_time),
        ]


def _run_variants(
    variants: Sequence[tuple[str, SynthesisConfig]],
    subset: Sequence[str],
    trace_cap: int,
    timeout: float,
) -> list[VariantOutcome]:
    outcomes = []
    for name, config in variants:
        results = [
            evaluate_benchmark(benchmark_by_id(bid), config, trace_cap, timeout)
            for bid in subset
        ]
        outcomes.append(VariantOutcome(name, results))
    return outcomes


def render_variants(title: str, outcomes: Sequence[VariantOutcome]) -> str:
    """A Table 1-style summary of variant outcomes."""
    table = render_table(
        ["variant", "intended", "accuracy", "time/test"],
        [outcome.row() for outcome in outcomes],
    )
    return f"{title}\n{table}"


# ----------------------------------------------------------------------
# Search-cap ablation
# ----------------------------------------------------------------------
def run_caps_ablation(
    subset: Sequence[str] = DEFAULT_SUBSET,
    trace_cap: int = 40,
    timeout: float = 1.0,
) -> list[VariantOutcome]:
    """Sweep the bounded-search caps around their defaults."""
    base = DEFAULT_CONFIG
    variants = [
        ("default (3 rewrites/span, 16 bodies)", base),
        ("tight (1 rewrite/span, 2 bodies)",
         replace(base, max_rewrites_per_span=1, max_loop_bodies_per_span=2)),
        ("loose (8 rewrites/span, 64 bodies)",
         replace(base, max_rewrites_per_span=8, max_loop_bodies_per_span=64)),
        ("tiny store (32 tuples)", replace(base, max_store_tuples=32)),
        ("few variants (1 per stmt)", replace(base, max_parametrize_variants=1)),
    ]
    return _run_variants(variants, subset, trace_cap, timeout)


# ----------------------------------------------------------------------
# Shape-gate ablation
# ----------------------------------------------------------------------
def run_gates_ablation(
    subset: Sequence[str] = DEFAULT_SUBSET,
    trace_cap: int = 40,
    timeout: float = 1.0,
) -> list[VariantOutcome]:
    """The periodicity gates (:mod:`repro.synth.periodicity`) on/off.

    The pivot gate is behaviour-preserving (same programs, less time);
    the window gate prunes harder and may change which tuple produces
    a program first.
    """
    base = DEFAULT_CONFIG
    variants = [
        ("pivot gate (default)", base),
        ("no gates", replace(base, use_shape_gates=False)),
        ("pivot + window gates", replace(base, use_window_periodicity=True)),
    ]
    return _run_variants(variants, subset, trace_cap, timeout)


# ----------------------------------------------------------------------
# Ranking ablation
# ----------------------------------------------------------------------
def run_ranking_ablation(
    subset: Sequence[str] = DEFAULT_SUBSET,
    trace_cap: int = 40,
    timeout: float = 1.0,
) -> list[VariantOutcome]:
    """Compare the registered ranking strategies (paper default: size)."""
    variants = [
        (f"ranking={name}", replace(DEFAULT_CONFIG, ranking=name))
        for name in sorted(STRATEGIES)
    ]
    return _run_variants(variants, subset, trace_cap, timeout)


# ----------------------------------------------------------------------
# Extensions report (the paper's failure cases)
# ----------------------------------------------------------------------
@dataclass
class ExtensionCase:
    """One failure-case benchmark under both configurations."""

    bid: str
    mechanism: str
    baseline: BenchmarkResult
    extended: BenchmarkResult

    def row(self) -> list:
        return [
            self.bid,
            self.mechanism,
            "yes" if self.baseline.intended else "NO (as published)",
            "yes" if self.extended.intended else "NO",
            fmt_pct(self.extended.accuracy),
        ]


def run_extensions_report(
    trace_cap: int = 60,
    timeout: float = 1.0,
    bids: Optional[Sequence[str]] = None,
) -> list[ExtensionCase]:
    """The published failure cases, without and with the extensions.

    b6 needs the token-predicate extension (disjunctive selectors);
    b9/b10 need the numbered-pagination extension.
    """
    plans = [
        ("b6", "disjunctive selectors", token_predicate_config()),
        ("b9", "numbered pagination", numbered_pagination_config()),
        ("b10", "numbered pagination", numbered_pagination_config()),
    ]
    if bids is not None:
        plans = [plan for plan in plans if plan[0] in set(bids)]
    cases = []
    for bid, mechanism, extended_config in plans:
        benchmark = benchmark_by_id(bid)
        baseline = evaluate_benchmark(benchmark, DEFAULT_CONFIG, trace_cap, timeout)
        extended = evaluate_benchmark(benchmark, extended_config, trace_cap, timeout)
        cases.append(ExtensionCase(bid, mechanism, baseline, extended))
    return cases


def render_extensions(cases: Sequence[ExtensionCase]) -> str:
    """Table: published failure cases solved by the opt-in extensions."""
    table = render_table(
        ["bench", "mechanism", "default intended", "extended intended", "ext. accuracy"],
        [case.row() for case in cases],
    )
    return f"Published failure cases vs. this repo's opt-in extensions\n{table}"


def main() -> None:
    """CLI entry: run all ablation reports."""
    print(render_variants("Search-cap ablation", run_caps_ablation()))
    print()
    print(render_variants("Shape-gate ablation", run_gates_ablation()))
    print()
    print(render_variants("Ranking-strategy ablation", run_ranking_ablation()))
    print()
    print(render_extensions(run_extensions_report()))


if __name__ == "__main__":
    main()
