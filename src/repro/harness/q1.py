"""Q1 — evaluating the synthesis engine (Figure 12 and §7.1's aggregates).

For each benchmark we instrument the ground truth to get full traces,
then pose ``n − 1`` prediction tests: given the first ``k`` actions and
``k + 1`` snapshots, the engine must predict action ``k + 1``.  A test
counts as correct when *a* generated prediction is consistent with the
ground-truth action (the front end shows all predictions for the user to
pick — §7.1 "we can generate a correct prediction").  Per benchmark we
report accuracy, synthesis-time quartiles over the tests that produced a
prediction, and whether the final synthesized program is *intended*,
checked by replaying it on a fresh browser and comparing the scraped
dataset with the ground truth's.

Environment knobs (all optional):

* ``REPRO_TRACE_CAP`` — max prediction tests per benchmark (default 120;
  the paper uses full 500-action traces);
* ``REPRO_TIMEOUT`` — per-test synthesis timeout in seconds (default 1.0,
  as in the paper);
* ``REPRO_SUBSET`` — comma-separated benchmark ids to restrict the run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarks.suite import Benchmark, all_benchmarks
from repro.browser.replayer import Replayer
from repro.harness.report import fmt_ms, fmt_pct, quartiles, render_table
from repro.lang.ast import (
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
    program_depth,
)
from repro.semantics.consistency import actions_consistent
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig
from repro.synth.synthesizer import Synthesizer


def trace_cap_default() -> int:
    """The per-benchmark prediction-test cap (env-overridable).

    100 covers at least two full outer-loop iterations for every
    benchmark family (the paper runs the full 500-action traces; set
    ``REPRO_TRACE_CAP=500`` to match).
    """
    return int(os.environ.get("REPRO_TRACE_CAP", "100"))


def timeout_default() -> float:
    """The per-test synthesis timeout (env-overridable)."""
    return float(os.environ.get("REPRO_TIMEOUT", "1.0"))


def subset_from_env() -> Optional[set[str]]:
    """Benchmark ids selected via ``REPRO_SUBSET``, or None for all."""
    raw = os.environ.get("REPRO_SUBSET", "").strip()
    if not raw:
        return None
    return {part.strip() for part in raw.split(",") if part.strip()}


# ----------------------------------------------------------------------
# Program shape helpers (the §7.1 aggregate statistics)
# ----------------------------------------------------------------------
def nesting_depth(program: Program) -> int:
    """Maximum loop-nesting depth of a program."""
    return program_depth(program)


def statement_count(program: Program) -> int:
    """Statements including loop bodies (the paper's "6 statements")."""

    def count(stmt: Statement) -> int:
        if isinstance(stmt, (ForEachSelector, ForEachValue)):
            return 1 + sum(count(child) for child in stmt.body)
        if isinstance(stmt, WhileLoop):
            return 1 + sum(count(child) for child in stmt.body) + 1
        if isinstance(stmt, PaginateLoop):
            # the templated click counts like a while loop's click
            return 1 + sum(count(child) for child in stmt.body) + 1
        return 1

    return sum(count(stmt) for stmt in program.statements)


# ----------------------------------------------------------------------
# Per-benchmark evaluation
# ----------------------------------------------------------------------
@dataclass
class BenchmarkResult:
    """Everything Figure 12 plots for one benchmark, plus extras."""

    bid: str
    family: str
    tests: int = 0
    correct: int = 0
    correct_top1: int = 0
    prediction_times: list[float] = field(default_factory=list)
    intended: bool = False
    final_program: Optional[Program] = None
    final_programs_count: int = 0
    max_programs: int = 0
    max_predictions: int = 0
    timed_out_tests: int = 0
    expected_supported: bool = True
    cache_hits: int = 0
    cache_misses: int = 0
    cache_exact_hits: int = 0
    cache_prefix_hits: int = 0
    cache_consistency_hits: int = 0
    cache_cross_session_hits: int = 0
    cache_warm_hits: int = 0
    cache_decode_hits: int = 0
    cache_decode_bytes: int = 0
    cache_backend: str = "memory"
    index_builds: int = 0
    enum_indexed: int = 0
    enum_fallback: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of tests with a correct prediction (any option)."""
        return self.correct / self.tests if self.tests else 0.0

    @property
    def accuracy_top1(self) -> float:
        """Fraction of tests whose *top-ranked* prediction was correct."""
        return self.correct_top1 / self.tests if self.tests else 0.0

    @property
    def time_quartiles(self) -> tuple[float, float, float, float, float]:
        """Synthesis-time quartiles over prediction-producing tests."""
        return quartiles(self.prediction_times)


def evaluate_benchmark(
    benchmark: Benchmark,
    config: SynthesisConfig = DEFAULT_CONFIG,
    trace_cap: Optional[int] = None,
    timeout: Optional[float] = None,
) -> BenchmarkResult:
    """Run all prediction tests for one benchmark (§7.1 protocol)."""
    cap = trace_cap if trace_cap is not None else trace_cap_default()
    per_test_timeout = timeout if timeout is not None else timeout_default()
    recording = benchmark.record()
    tests = min(recording.length - 1, cap)
    result = BenchmarkResult(
        bid=benchmark.bid,
        family=benchmark.family,
        expected_supported=benchmark.expected_supported,
    )
    final_program: Optional[Program] = None
    with Synthesizer(benchmark.data, config) as synthesizer:
        for k in range(1, tests + 1):
            actions, snapshots = recording.prefix(k)
            started = time.perf_counter()
            synthesis = synthesizer.synthesize(
                actions, snapshots, timeout=per_test_timeout
            )
            elapsed = time.perf_counter() - started
            result.tests += 1
            result.timed_out_tests += synthesis.stats.timed_out
            result.cache_hits += synthesis.stats.cache_hits
            result.cache_misses += synthesis.stats.cache_misses
            result.cache_exact_hits += synthesis.stats.cache_exact_hits
            result.cache_prefix_hits += synthesis.stats.cache_prefix_hits
            result.cache_consistency_hits += synthesis.stats.cache_consistency_hits
            result.cache_cross_session_hits += synthesis.stats.cache_cross_session_hits
            result.cache_warm_hits += synthesis.stats.cache_warm_hits
            result.cache_decode_hits += synthesis.stats.cache_decode_hits
            result.cache_decode_bytes += synthesis.stats.cache_decode_bytes
            result.cache_backend = synthesis.stats.cache_backend
            result.index_builds += synthesis.stats.index_builds
            result.enum_indexed += synthesis.stats.enum_indexed
            result.enum_fallback += synthesis.stats.enum_fallback
            result.max_programs = max(result.max_programs, len(synthesis.programs))
            result.max_predictions = max(
                result.max_predictions, len(synthesis.predictions)
            )
            expected = recording.actions[k]
            dom = recording.snapshots[k]
            if synthesis.predictions:
                result.prediction_times.append(elapsed)
                if actions_consistent(synthesis.predictions[0], expected, dom):
                    result.correct_top1 += 1
                if any(
                    actions_consistent(option, expected, dom)
                    for option in synthesis.predictions
                ):
                    result.correct += 1
            if synthesis.best_program is not None:
                final_program = synthesis.best_program
                result.final_programs_count = len(synthesis.programs)
    result.final_program = final_program
    result.intended = _is_intended(benchmark, final_program, recording)
    return result


def _is_intended(benchmark: Benchmark, program: Optional[Program], recording) -> bool:
    """Replay the synthesized program end-to-end and compare datasets.

    Two replays: the demonstrated instance, and (when available) a
    *scaled-up* instance of the same site.  The latter is the automated
    stand-in for the paper's manual judgment — a program hard-coded to
    the demonstrated sizes (e.g. one loop per page, the paper's b9
    failure mode) replays fine on the original but not on the larger
    instance.
    """
    if program is None:
        return False
    browser = benchmark.fresh_browser()
    replayer = Replayer(browser, max_actions=500, raise_errors=False)
    outcome = replayer.run(program)
    if outcome.error is not None or outcome.outputs != recording.outputs:
        return False
    scaled_browser = benchmark.fresh_scaled_browser()
    if scaled_browser is None:
        return True
    scaled_recording = benchmark.scaled_recording()
    scaled_outcome = Replayer(scaled_browser, max_actions=500, raise_errors=False).run(
        program
    )
    if scaled_outcome.error is not None:
        return False
    return scaled_outcome.outputs == scaled_recording.outputs


# ----------------------------------------------------------------------
# Figure 12 + aggregates
# ----------------------------------------------------------------------
@dataclass
class Q1Report:
    """The full experiment outcome."""

    results: list[BenchmarkResult]
    trace_cap: int
    timeout: float

    @property
    def solved_intended(self) -> int:
        return sum(result.intended for result in self.results)

    def render_figure12(self) -> str:
        """The per-benchmark series of Figure 12 as a text table."""
        rows = []
        for result in sorted(self.results, key=lambda r: (r.accuracy, r.bid)):
            tmin, tq1, tmed, tq3, tmax = result.time_quartiles
            rows.append([
                result.bid,
                fmt_pct(result.accuracy),
                fmt_pct(result.accuracy_top1),
                fmt_ms(tq1), fmt_ms(tmed), fmt_ms(tq3),
                "yes" if result.intended else "NO",
                result.tests,
            ])
        table = render_table(
            ["bench", "acc", "acc@1", "t_q1", "t_med", "t_q3", "intended", "tests"],
            rows,
        )
        return f"Figure 12 — per-benchmark accuracy / synthesis time (sorted by accuracy)\n{table}"

    def render_figure12_chart(self, width: int = 40) -> str:
        """Figure 12 as text charts (accuracy bars + time box plots)."""
        from repro.harness.figures import figure12_chart

        rows = [
            (result.bid, result.accuracy, result.time_quartiles)
            for result in sorted(self.results, key=lambda r: (r.accuracy, r.bid))
        ]
        return figure12_chart(rows, width)

    def render_aggregates(self) -> str:
        """§7.1's headline numbers."""
        results = self.results
        high_quality = sum(
            1
            for result in results
            if result.accuracy >= 0.95 and result.time_quartiles[2] <= 0.5
        )
        finals = [result.final_program for result in results if result.final_program]
        stmt_counts = [statement_count(program) for program in finals]
        depths = [nesting_depth(program) for program in finals]
        multi_programs = sum(result.max_programs > 1 for result in results)
        multi_predictions = sum(result.max_predictions > 1 for result in results)
        lines = [
            "Q1 aggregates (paper values in parentheses):",
            f"  benchmarks with >=95% accuracy and median time <=0.5s: "
            f"{high_quality}/{len(results)} = {fmt_pct(high_quality / len(results))} (68%)",
            f"  final synthesized program intended: {self.solved_intended}/{len(results)} "
            f"= {fmt_pct(self.solved_intended / len(results))} (91%)",
            f"  avg statements in final programs: "
            f"{sum(stmt_counts) / len(stmt_counts):.1f} (6), max {max(stmt_counts)} (18)"
            if stmt_counts else "  no final programs",
            f"  doubly-nested final programs: {sum(d == 2 for d in depths)} (32); "
            f">=3-level: {sum(d >= 3 for d in depths)} (6)",
            f"  benchmarks with multiple programs: {multi_programs} (59); "
            f"multiple predictions: {multi_predictions} (21)",
            f"  max programs for one test: {max((r.max_programs for r in results), default=0)} (101); "
            f"max predictions: {max((r.max_predictions for r in results), default=0)} (6)",
        ]
        hits = sum(result.cache_hits for result in results)
        misses = sum(result.cache_misses for result in results)
        if hits or misses:
            exact = sum(result.cache_exact_hits for result in results)
            prefix = sum(result.cache_prefix_hits for result in results)
            consistency = sum(result.cache_consistency_hits for result in results)
            lines.append(
                f"  execution-cache hit rate: {fmt_pct(hits / (hits + misses))} "
                f"({hits} hits = {exact} exact + {prefix} prefix + "
                f"{consistency} consistency / {misses} misses; "
                f"{sum(r.index_builds for r in results)} DOM indexes built)"
            )
            cross = sum(result.cache_cross_session_hits for result in results)
            if cross:
                lines.append(
                    f"  cross-session cache hits (shared cache): {cross} "
                    f"= {fmt_pct(cross / hits)} of all hits"
                )
            warm = sum(result.cache_warm_hits for result in results)
            if warm:
                backends = sorted({r.cache_backend for r in results})
                lines.append(
                    f"  warm-start cache hits (persistent backend "
                    f"{'/'.join(backends)}): {warm} = {fmt_pct(warm / hits)} "
                    f"of all hits"
                )
            decode = sum(result.cache_decode_hits for result in results)
            if decode:
                decode_bytes = sum(result.cache_decode_bytes for result in results)
                lines.append(
                    f"  decoded-entry cache hits (store read + decode "
                    f"skipped): {decode}, {decode_bytes} payload bytes"
                )
        indexed = sum(result.enum_indexed for result in results)
        fallback = sum(result.enum_fallback for result in results)
        if indexed or fallback:
            lines.append(
                f"  index-backed enumeration share: "
                f"{fmt_pct(indexed / (indexed + fallback))} "
                f"({indexed} indexed / {fallback} ancestor-walk)"
            )
        return "\n".join(lines)


def run_q1(
    config: SynthesisConfig = DEFAULT_CONFIG,
    trace_cap: Optional[int] = None,
    timeout: Optional[float] = None,
    subset: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Q1Report:
    """Run the Q1 experiment over the suite (or a subset)."""
    cap = trace_cap if trace_cap is not None else trace_cap_default()
    per_test_timeout = timeout if timeout is not None else timeout_default()
    selected = set(subset) if subset is not None else subset_from_env()
    results = []
    for benchmark in all_benchmarks():
        if selected is not None and benchmark.bid not in selected:
            continue
        result = evaluate_benchmark(benchmark, config, cap, per_test_timeout)
        results.append(result)
        if verbose:
            print(
                f"{result.bid}: acc={fmt_pct(result.accuracy)} "
                f"intended={'yes' if result.intended else 'NO'} "
                f"median={fmt_ms(result.time_quartiles[2])}"
            )
    return Q1Report(results, cap, per_test_timeout)


def main() -> None:
    """CLI entry: regenerate Figure 12 and the §7.1 aggregates."""
    report = run_q1(verbose=True)
    print()
    print(report.render_figure12())
    print()
    print(report.render_aggregates())


if __name__ == "__main__":
    main()
