"""Plain-text chart rendering for the experiment harnesses.

Figure 12 in the paper is a dual chart: a bar per benchmark for
prediction accuracy overlaid with a box plot of synthesis times.  These
helpers render the same series as monospace charts so the regenerated
artifact is *visually* comparable in a terminal:

* :func:`horizontal_bars` — one scaled bar per labelled value;
* :func:`interval_bars` — one ``min ─ q1 ═ median ═ q3 ─ max`` span per
  labelled five-number summary (a text box plot);
* :func:`figure12_chart` — both series combined, sorted by accuracy as
  the paper sorts its x-axis.
"""

from __future__ import annotations

from typing import Optional, Sequence

FULL = "█"
PART = "▏▎▍▌▋▊▉"


def _bar(fraction: float, width: int) -> str:
    """A solid bar of ``fraction * width`` cells with eighth-cell detail."""
    fraction = min(max(fraction, 0.0), 1.0)
    eighths = round(fraction * width * 8)
    whole, rest = divmod(eighths, 8)
    bar = FULL * whole
    if rest:
        bar += PART[rest - 1]
    return bar.ljust(width)


def horizontal_bars(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """Render ``(label, value)`` rows as horizontal bars.

    Values are scaled to ``max_value`` (default: the largest value, or 1
    when all values are zero).
    """
    if not rows:
        return "(no data)"
    scale = max_value if max_value is not None else max(value for _, value in rows)
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = _bar(value / scale, width)
        lines.append(f"{label.rjust(label_width)} |{bar}| {value:.2f}{unit}")
    return "\n".join(lines)


def interval_bars(
    rows: Sequence[tuple[str, tuple[float, float, float, float, float]]],
    width: int = 40,
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """Render five-number summaries as text box plots.

    Each row shows ``·`` whiskers from min to max, ``═`` for the
    interquartile range, and ``#`` at the median::

        b12 |   ·····══#═══····           | med 0.023s
    """
    if not rows:
        return "(no data)"
    scale = max_value if max_value is not None else max(row[1][4] for row in rows)
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label, _ in rows)

    def cell(value: float) -> int:
        return min(width - 1, max(0, int(value / scale * (width - 1))))

    lines = []
    for label, (low, q1, median, q3, high) in rows:
        cells = [" "] * width
        for position in range(cell(low), cell(high) + 1):
            cells[position] = "·"
        for position in range(cell(q1), cell(q3) + 1):
            cells[position] = "═"
        cells[cell(median)] = "#"
        lines.append(
            f"{label.rjust(label_width)} |{''.join(cells)}| "
            f"med {median:.3f}{unit}"
        )
    return "\n".join(lines)


def figure12_chart(
    rows: Sequence[tuple[str, float, tuple[float, float, float, float, float]]],
    width: int = 40,
) -> str:
    """The Figure 12 combination: accuracy bars plus time box plots.

    ``rows`` are ``(benchmark id, accuracy, time quartiles)`` — callers
    sort them (the paper sorts by ascending accuracy).
    """
    if not rows:
        return "(no data)"
    accuracy = horizontal_bars(
        [(bid, value) for bid, value, _ in rows], width, max_value=1.0
    )
    max_time = max((quartiles[4] for _, _, quartiles in rows), default=0.0)
    times = interval_bars(
        [(bid, quartiles) for bid, _, quartiles in rows],
        width,
        max_value=max_time or None,
        unit="s",
    )
    return (
        "accuracy per benchmark (bar = fraction of tests with a correct prediction)\n"
        f"{accuracy}\n\n"
        "synthesis time per benchmark (box plot over prediction-producing tests)\n"
        f"{times}"
    )
