"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append("  ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def quartiles(values: Sequence[float]) -> tuple[float, float, float, float, float]:
    """(min, q1, median, q3, max) with linear interpolation."""
    if not values:
        return (0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)

    def at(fraction: float) -> float:
        position = fraction * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    return (ordered[0], at(0.25), at(0.5), at(0.75), ordered[-1])


def fmt_ms(seconds: float) -> str:
    """Milliseconds with sensible precision."""
    ms = seconds * 1000.0
    if ms >= 100:
        return f"{ms:.0f}ms"
    if ms >= 10:
        return f"{ms:.1f}ms"
    return f"{ms:.2f}ms"


def fmt_pct(fraction: float) -> str:
    """A percentage out of a 0..1 fraction."""
    return f"{fraction * 100:.0f}%"


def fmt_bytes(count: int) -> str:
    """A byte count with a binary-unit suffix."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def render_synthesis_stats(stats) -> str:
    """Engine/search telemetry of one ``synthesize`` call as a table.

    ``stats`` is a :class:`repro.synth.synthesizer.SynthesisStats`; the
    cache and index rows surface the execution engine's per-call deltas.
    """
    rows = [
        ["trace length", stats.trace_length],
        ["worklist pops", stats.pops],
        ["speculated", stats.speculated],
        ["statically pruned", stats.pruned],
        ["validations run", stats.validations],
        ["validated", stats.validated],
        ["validation workers", stats.validation_workers or "serial"],
        ["store tuples", stats.tuples],
        ["cache backend", stats.cache_backend],
        ["exec cache hits", stats.cache_hits],
        ["  exact hits", stats.cache_exact_hits],
        ["  prefix hits", stats.cache_prefix_hits],
        ["  consistency hits", stats.cache_consistency_hits],
        ["  cross-session hits", stats.cache_cross_session_hits],
        ["  warm-start hits", stats.cache_warm_hits],
        ["loop resume hits", stats.cache_resume_hits],
        ["decoded-cache hits", stats.cache_decode_hits],
        ["decoded-cache bytes", fmt_bytes(stats.cache_decode_bytes)],
        ["exec cache misses", stats.cache_misses],
        ["exec cache hit rate", fmt_pct(stats.cache_hit_rate)],
        ["exec cache evictions", stats.cache_evictions],
        ["exec cache bytes", fmt_bytes(stats.cache_bytes)],
        ["persisted bytes", fmt_bytes(stats.persisted_bytes)],
        ["interned snapshots", stats.interned_snapshots],
        ["interned bytes", fmt_bytes(stats.interned_bytes)],
        ["DOM index builds", stats.index_builds],
        ["indexed enumerations", stats.enum_indexed],
        ["fallback enumerations", stats.enum_fallback],
        # phase times are wall-clock per phase; under the pipelined
        # scheduler speculation and validation overlap, so their sum
        # may exceed ``elapsed`` — the surplus is the overlap won
        ["speculate time", fmt_ms(stats.speculate_s)],
        ["validate time", fmt_ms(stats.validate_s)],
        ["extend time", fmt_ms(stats.extend_s)],
        ["elapsed", fmt_ms(stats.elapsed)],
        ["timed out", "yes" if stats.timed_out else "no"],
    ]
    return render_table(["metric", "value"], rows)
