"""Q2 — ablation studies (Table 1).

Reruns the Q1 protocol with the two ablated configurations:

* **No selector** — ``AlternativeSelectors`` returns only the recorded
  raw XPath (Figures 10/11 degrade to raw-path matching);
* **No incremental** — every prediction test rebuilds the worklist from
  scratch instead of resuming it (§5.4 disabled).

Table 1 reports, per variant: benchmarks solved (intended final program),
median accuracy, average accuracy, and average synthesis time per test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.harness.q1 import BenchmarkResult, run_q1
from repro.harness.report import fmt_ms, fmt_pct, render_table
from repro.synth.config import (
    DEFAULT_CONFIG,
    SynthesisConfig,
    no_incremental_config,
    no_selector_config,
)


@dataclass
class VariantResult:
    """One Table 1 row."""

    name: str
    results: list[BenchmarkResult]

    @property
    def solved(self) -> int:
        return sum(result.intended for result in self.results)

    @property
    def median_accuracy(self) -> float:
        accuracies = sorted(result.accuracy for result in self.results)
        if not accuracies:
            return 0.0
        middle = len(accuracies) // 2
        if len(accuracies) % 2:
            return accuracies[middle]
        return (accuracies[middle - 1] + accuracies[middle]) / 2

    @property
    def average_accuracy(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.accuracy for result in self.results) / len(self.results)

    @property
    def average_time(self) -> float:
        times = [
            value for result in self.results for value in result.prediction_times
        ]
        return sum(times) / len(times) if times else 0.0


@dataclass
class Q2Report:
    """All Table 1 rows."""

    variants: list[VariantResult]

    def render_table1(self) -> str:
        paper = {
            "Full-fledged": ("69", "98%", "90%", "23ms"),
            "No selector": ("38", "88%", "57%", "54ms"),
            "No incremental": ("45", "96%", "72%", "32ms"),
        }
        rows = []
        for variant in self.variants:
            reference = paper.get(variant.name, ("—",) * 4)
            rows.append([
                variant.name,
                f"{variant.solved} ({reference[0]})",
                f"{fmt_pct(variant.median_accuracy)} ({reference[1]})",
                f"{fmt_pct(variant.average_accuracy)} ({reference[2]})",
                f"{fmt_ms(variant.average_time)} ({reference[3]})",
            ])
        table = render_table(
            ["variant", "solved (paper)", "acc med (paper)", "acc avg (paper)",
             "time/test (paper)"],
            rows,
        )
        return "Table 1 — ablation studies (Q2)\n" + table


def run_q2(
    trace_cap: Optional[int] = None,
    timeout: Optional[float] = None,
    subset: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> Q2Report:
    """Run all three variants over the suite (or a subset)."""
    variants: list[tuple[str, SynthesisConfig]] = [
        ("Full-fledged", DEFAULT_CONFIG),
        ("No selector", no_selector_config()),
        ("No incremental", no_incremental_config()),
    ]
    rows = []
    for name, config in variants:
        if verbose:
            print(f"running variant: {name}")
        report = run_q1(config, trace_cap, timeout, subset, verbose=False)
        rows.append(VariantResult(name, report.results))
        if verbose:
            row = rows[-1]
            print(
                f"  solved={row.solved} acc_med={fmt_pct(row.median_accuracy)} "
                f"acc_avg={fmt_pct(row.average_accuracy)} time={fmt_ms(row.average_time)}"
            )
    return Q2Report(rows)


def main() -> None:
    """CLI entry: regenerate Table 1."""
    report = run_q2(verbose=True)
    print()
    print(report.render_table1())


if __name__ == "__main__":
    main()
