"""Benchmark-suite statistics (§7 "Statistics of benchmarks")."""

from __future__ import annotations

from repro.benchmarks.suite import (
    ENTRY,
    EXTRACTION,
    NAVIGATION,
    PAGINATION,
    all_benchmarks,
)
from repro.harness.q1 import statement_count
from repro.harness.report import render_table
from repro.lang.ast import Program


def suite_statistics() -> dict[str, object]:
    """The suite's headline statistics as a dict."""
    suite = all_benchmarks()
    gt_sizes = [
        statement_count(benchmark.ground_truth)
        for benchmark in suite
        if isinstance(benchmark.ground_truth, Program)
    ]
    return {
        "total": len(suite),
        "extraction": sum(EXTRACTION in b.features for b in suite),
        "entry": sum(ENTRY in b.features for b in suite),
        "navigation": sum(NAVIGATION in b.features for b in suite),
        "pagination": sum(PAGINATION in b.features for b in suite),
        "entry+extraction+navigation": sum(
            {ENTRY, EXTRACTION, NAVIGATION} <= b.features for b in suite
        ),
        "unsupported": [b.bid for b in suite if not b.expected_supported],
        "ground-truth statements (avg)": round(sum(gt_sizes) / len(gt_sizes), 1),
        "ground-truth statements (max)": max(gt_sizes),
        "trace length (avg)": round(
            sum(b.record().length for b in suite) / len(suite), 1
        ),
        "trace length (max)": max(b.record().length for b in suite),
    }


def render_statistics() -> str:
    """The statistics as a text table with the paper's values alongside."""
    stats = suite_statistics()
    paper = {
        "total": 76,
        "extraction": 76,
        "entry": 29,
        "navigation": 60,
        "pagination": 33,
        "entry+extraction+navigation": 28,
    }
    rows = []
    for key, value in stats.items():
        rows.append([key, value, paper.get(key, "—")])
    return "Benchmark statistics (§7)\n" + render_table(
        ["statistic", "this repo", "paper"], rows
    )


def main() -> None:
    """CLI entry: print the suite statistics."""
    print(render_statistics())


if __name__ == "__main__":
    main()
