"""Experiment drivers regenerating every table and figure of §7."""

from repro.harness.q1 import BenchmarkResult, Q1Report, evaluate_benchmark, run_q1
from repro.harness.q2 import Q2Report, VariantResult, run_q2
from repro.harness.q3 import StudyOutcome, SweepOutcome, run_session, run_study, run_sweep
from repro.harness.q4 import Q4Report, run_q4
from repro.harness.stats import render_statistics, suite_statistics

__all__ = [
    "BenchmarkResult",
    "Q1Report",
    "evaluate_benchmark",
    "run_q1",
    "Q2Report",
    "VariantResult",
    "run_q2",
    "StudyOutcome",
    "SweepOutcome",
    "run_session",
    "run_study",
    "run_sweep",
    "Q4Report",
    "run_q4",
    "render_statistics",
    "suite_statistics",
]
