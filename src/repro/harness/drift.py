"""Drift-robustness study: replay survival on redesigned pages.

This extension experiment quantifies two complementary robustness
mechanisms of the reproduced system:

* the **selector search** (§2) — synthesized programs anchor on
  attributes, so they survive layout drift that breaks recorded raw
  paths (the paper's pitch against record-and-replay tools);
* **selector repair** (:mod:`repro.browser.repair`, extension) — shadow
  replay re-anchors actions by node fingerprint, rescuing programs on
  drifts neither selector form survives.

The study replays two equivalent programs over a ladder of drift
levels applied to the same card-scraping page:

========  ==========================================================
level     mutation (cumulative where sensible)
========  ==========================================================
clean     the page as demonstrated
banner    a sale banner prepended to ``body`` (shifts raw indices)
promo     banner + a sponsored card ahead of the results (hijacks
          collection index 1 — the silent wrong-data hazard)
wrapped   banner + promo + results nested in an extra section div
renamed   banner + all class attributes renamed (kills attribute
          anchors; raw paths unaffected beyond the banner shift)
========  ==========================================================

The *brittle* program is what a record-and-replay macro stores: one
raw absolute XPath per scrape, no loop.  The *synthesized* program
comes from the actual synthesizer on a two-card demonstration.  Each
is replayed plainly and under a verifying :class:`~repro.browser.
repair.RepairingReplayer`; outcomes compare the scraped outputs to the
ground truth:

* ``ok`` — outputs exactly match;
* ``ok*`` — correct data plus trailing extras (the repairer keeps
  going on live pages with more items than the reference);
* ``wrong`` — completed with different data;
* ``failed`` — replay raised.

The headline shape: raw paths die at the first banner, attribute
anchors die only at the rename, and repair rescues each exactly where
its selector form fails — they compose rather than compete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.repair import RepairingReplayer
from repro.browser.replayer import Replayer
from repro.browser.virtual import Browser, State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.dom.xpath import parse_selector, raw_path, resolve
from repro.harness.report import render_table
from repro.lang.ast import Program
from repro.lang.actions import action_to_statement, scrape_text
from repro.lang.data import EMPTY_DATA
from repro.synth.synthesizer import Synthesizer

#: The ground-truth dataset every drift level must still yield.
STORES = [
    ("Ann Arbor", "555-0100"),
    ("Detroit", "555-0200"),
    ("Lansing", "555-0300"),
    ("Flint", "555-0400"),
    ("Saginaw", "555-0500"),
]

#: Drift levels in escalation order.
DRIFT_LEVELS = ("clean", "banner", "promo", "wrapped", "renamed")


class DriftedCardsSite(VirtualWebsite):
    """The card-scraping page under one of :data:`DRIFT_LEVELS`."""

    def __init__(self, level: str = "clean") -> None:
        super().__init__()
        if level not in DRIFT_LEVELS:
            raise ValueError(f"unknown drift level {level!r}")
        self.level = level

    def initial_state(self) -> State:
        return self.level

    def url(self, state: State) -> str:
        return f"virtual://drift/{self.level}"

    def render(self, state: State) -> DOMNode:
        def cls(name: str) -> str:
            return f"x-{name}" if self.level == "renamed" else name

        cards = [
            E("div", {"class": cls("card")},
              E("h3", text=name),
              E("div", {"class": cls("phone")}, text=phone))
            for name, phone in STORES
        ]
        inner: list[DOMNode] = []
        if self.level in ("promo", "wrapped"):
            inner.append(
                E("div", {"class": cls("card"), "data-sponsored": "1"},
                  E("h3", text="Sponsored"),
                  E("div", {"class": cls("phone")}, text="555-9999"))
            )
        inner.extend(cards)
        if self.level == "wrapped":
            results = E("div", {"class": cls("results")},
                        E("div", {"class": cls("section")}, *inner))
        else:
            results = E("div", {"class": cls("results")}, *inner)
        parts: list[DOMNode] = []
        if self.level != "clean":
            parts.append(E("div", {"class": cls("banner")}, text="SALE"))
        parts.append(results)
        return page(*parts)


# ----------------------------------------------------------------------
# The two program styles
# ----------------------------------------------------------------------
def expected_outputs() -> list[str]:
    """Ground truth: every store's name and phone, in order."""
    return [value for store in STORES for value in store]


def brittle_program() -> Program:
    """A record-and-replay macro: one raw absolute path per scrape."""
    dom = DriftedCardsSite("clean").page("clean")
    statements = []
    for index in range(1, len(STORES) + 1):
        for inner in (f"//div[@class='card'][{index}]/h3[1]",
                      f"//div[@class='card'][{index}]/div[1]"):
            node = resolve(parse_selector(inner), dom)
            statements.append(action_to_statement(scrape_text(raw_path(node))))
    return Program(tuple(statements))


def synthesized_program() -> Program:
    """What the synthesizer produces from a two-card demonstration."""
    browser = Browser(DriftedCardsSite("clean"))
    for index in (1, 2):
        browser.perform(
            scrape_text(parse_selector(f"//div[@class='card'][{index}]/h3[1]"))
        )
        browser.perform(
            scrape_text(parse_selector(f"//div[@class='card'][{index}]/div[1]"))
        )
    actions, snapshots = browser.trace()
    with Synthesizer(EMPTY_DATA) as synthesizer:
        result = synthesizer.synthesize(actions, snapshots)
    if result.best_program is None:
        raise RuntimeError("synthesis failed on the clean drift page")
    return result.best_program


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """One (program, level, mode) replay classified against ground truth."""

    verdict: str
    repairs: int = 0

    @property
    def succeeded(self) -> bool:
        """True when the replay recovered the full ground-truth data."""
        return self.verdict in ("ok", "ok*")


def _classify(outputs: list[str], error: Optional[str]) -> str:
    expected = expected_outputs()
    if error is not None:
        return "failed"
    if outputs == expected:
        return "ok"
    if len(outputs) > len(expected) and outputs[: len(expected)] == expected:
        return "ok*"
    return "wrong"


def replay_plain(program: Program, level: str) -> ReplayOutcome:
    """Replay without repair; failures are captured, not raised."""
    replayer = Replayer(Browser(DriftedCardsSite(level)), raise_errors=False)
    result = replayer.run(program)
    return ReplayOutcome(_classify(result.outputs, result.error))


def replay_repaired(program: Program, level: str) -> ReplayOutcome:
    """Replay under a verifying repairer shadowing the clean site."""
    live = Browser(DriftedCardsSite(level))
    reference = Browser(DriftedCardsSite("clean"))
    replayer = RepairingReplayer(
        live, reference, verify=True, raise_errors=False
    )
    result = replayer.run(program)
    return ReplayOutcome(_classify(result.outputs, result.error), len(replayer.events))


@dataclass
class DriftRow:
    """All four outcomes at one drift level."""

    level: str
    brittle_plain: ReplayOutcome
    brittle_repaired: ReplayOutcome
    synth_plain: ReplayOutcome
    synth_repaired: ReplayOutcome

    def row(self) -> list:
        """This level as one table row (verdict plus repair count)."""

        def cell(outcome: ReplayOutcome) -> str:
            suffix = f" ({outcome.repairs} fixes)" if outcome.repairs else ""
            return outcome.verdict + suffix

        return [
            self.level,
            cell(self.brittle_plain),
            cell(self.brittle_repaired),
            cell(self.synth_plain),
            cell(self.synth_repaired),
        ]


def run_drift_study() -> list[DriftRow]:
    """Replay both program styles across every drift level."""
    brittle = brittle_program()
    synthesized = synthesized_program()
    rows = []
    for level in DRIFT_LEVELS:
        rows.append(
            DriftRow(
                level,
                replay_plain(brittle, level),
                replay_repaired(brittle, level),
                replay_plain(synthesized, level),
                replay_repaired(synthesized, level),
            )
        )
    return rows


def render_drift(rows: list[DriftRow]) -> str:
    """The study as a table."""
    table = render_table(
        ["drift", "raw paths", "raw + repair", "synthesized", "synth + repair"],
        [row.row() for row in rows],
    )
    return f"Replay survival under page drift (verify-mode repair)\n{table}"


def main() -> None:
    """CLI entry: print the drift study."""
    print(render_drift(run_drift_study()))


if __name__ == "__main__":
    main()
