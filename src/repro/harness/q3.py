"""Q3 — end-to-end evaluation (§7.3).

Two experiments:

* **Simulated user study** — 8 simulated participants complete 5 tasks in
  three phases (1: single-page scraping; 2: two navigation + pagination
  scraping tasks; 3: two data-entry tasks), mirroring the paper's study
  design.  Participants follow the intended action sequence; half are
  "noisy" novices who sometimes reject correct predictions.  We report
  completion, demonstrated-action counts per phase, and a demonstration-
  time proxy (seconds at a fixed per-action pace), next to the paper's
  measured seconds.
* **Full-suite end-to-end sweep** — run the interactive session on every
  benchmark and report how many are completely automated after a handful
  of demonstrations (the paper solves 76% this way).

Environment knobs: ``REPRO_Q3_TRACE_CAP`` bounds task length (default
80 actions), ``REPRO_Q3_TIMEOUT`` the per-step synthesis budget.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.benchmarks.suite import Benchmark, all_benchmarks, benchmark_by_id
from repro.browser.recorder import Recording
from repro.browser.virtual import Browser
from repro.harness.report import fmt_pct, render_table
from repro.interact.session import InteractiveSession, SessionReport
from repro.interact.user import NoisyUser, OracleUser
from repro.synth.synthesizer import Synthesizer

#: Average seconds a participant spends per demonstrated action (the
#: proxy used to convert demonstration counts into the paper's seconds;
#: drag-and-drop data entry is slower than clicking/scraping).
SECONDS_PER_DEMO = 2.2
SECONDS_PER_ENTRY_DEMO = 7.5

#: The five study tasks: (phase, benchmark id) — 1 single-page scrape,
#: 2 navigation+pagination scrapes, 2 data-entry tasks.
STUDY_TASKS = (
    (1, "b13"),
    (2, "b33"),
    (2, "b19"),
    (3, "b65"),
    (3, "b57"),
)


def q3_trace_cap() -> int:
    """Task-length cap for the sessions (env-overridable)."""
    return int(os.environ.get("REPRO_Q3_TRACE_CAP", "80"))


def q3_timeout() -> float:
    """Per-step synthesis budget (env-overridable, default 0.5 s: the
    incremental synthesizer rarely needs more mid-session)."""
    return float(os.environ.get("REPRO_Q3_TIMEOUT", "0.5"))


def _capped_recording(benchmark: Benchmark, cap: int) -> Recording:
    recording = benchmark.record()
    if recording.length <= cap:
        return recording
    actions, snapshots = recording.prefix(cap)
    return Recording(actions, snapshots, recording.outputs, True)


def run_session(
    benchmark: Benchmark,
    noisy: bool = False,
    seed: int = 0,
    cap: Optional[int] = None,
) -> SessionReport:
    """Run one interactive session for a benchmark task."""
    recording = _capped_recording(benchmark, cap if cap is not None else q3_trace_cap())
    browser = benchmark.fresh_browser()
    synthesizer = Synthesizer(benchmark.data)
    if noisy:
        user = NoisyUser(recording, mistake_rate=0.08, seed=seed)
    else:
        user = OracleUser(recording)
    session = InteractiveSession(
        browser,
        synthesizer,
        user,
        max_steps=4 * recording.length + 50,
        synth_timeout=q3_timeout(),
    )
    try:
        return session.run()
    finally:
        synthesizer.close()


# ----------------------------------------------------------------------
# The simulated study
# ----------------------------------------------------------------------
@dataclass
class StudyOutcome:
    """Aggregated simulated-study numbers."""

    participants: int
    completed_all: int
    demo_counts: dict[int, list[int]] = field(default_factory=dict)
    demo_seconds: dict[int, list[float]] = field(default_factory=dict)
    ambiguity_picks: int = 0

    def render(self) -> str:
        paper_seconds = {1: "16.88 (SD=3.80)", 2: "19.44 (SD=11.48)", 3: "64.44 (SD=22.58)"}
        rows = []
        for phase in sorted(self.demo_counts):
            counts = self.demo_counts[phase]
            seconds = self.demo_seconds[phase]
            mean_count = sum(counts) / len(counts)
            mean_seconds = sum(seconds) / len(seconds)
            sd = (sum((s - mean_seconds) ** 2 for s in seconds) / len(seconds)) ** 0.5
            rows.append([
                f"phase {phase}",
                f"{mean_count:.1f}",
                f"{mean_seconds:.2f} (SD={sd:.2f})",
                paper_seconds[phase],
            ])
        table = render_table(
            ["phase", "demos/task", "demo seconds (proxy)", "paper seconds"], rows
        )
        lines = [
            "Q3 — simulated user study (8 participants x 5 tasks)",
            f"participants completing all tasks: {self.completed_all}/{self.participants} "
            f"(paper: 8/8)",
            f"ambiguity resolved via non-first predictions: {self.ambiguity_picks} picks",
            table,
        ]
        return "\n".join(lines)


def run_study(participants: int = 8, verbose: bool = False) -> StudyOutcome:
    """Simulate the §7.3 user study."""
    outcome = StudyOutcome(participants=participants, completed_all=0)
    for participant in range(participants):
        noisy = participant % 2 == 1  # half the novices mis-judge sometimes
        all_done = True
        for phase, bid in STUDY_TASKS:
            benchmark = benchmark_by_id(bid)
            report = run_session(benchmark, noisy=noisy, seed=participant)
            all_done &= report.completed
            per_demo = (
                SECONDS_PER_ENTRY_DEMO if phase == 3 else SECONDS_PER_DEMO
            )
            outcome.demo_counts.setdefault(phase, []).append(report.demonstrated)
            outcome.demo_seconds.setdefault(phase, []).append(
                report.demonstrated * per_demo / (2 if phase != 1 else 1)
            )
            outcome.ambiguity_picks += report.ambiguity_picks
            if verbose:
                print(
                    f"participant {participant + 1} phase {phase} {bid}: "
                    f"demos={report.demonstrated} auto={report.automated} "
                    f"completed={report.completed}"
                )
        outcome.completed_all += all_done
    return outcome


# ----------------------------------------------------------------------
# Full-suite end-to-end sweep
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """The "more comprehensive end-to-end testing" numbers."""

    reports: dict[str, SessionReport]

    @property
    def solved(self) -> list[str]:
        """Benchmarks completed with a meaningful automation share."""
        return [
            bid
            for bid, report in self.reports.items()
            if report.completed and report.automation_fraction >= 0.5
        ]

    def render(self) -> str:
        solved = self.solved
        total = len(self.reports)
        demos = [
            self.reports[bid].demonstrated for bid in solved
        ]
        mean_demos = sum(demos) / len(demos) if demos else 0.0
        failed = sorted(
            (bid for bid in self.reports if bid not in solved),
            key=lambda bid: int(bid[1:]),
        )
        lines = [
            "Q3 — end-to-end sweep over the whole suite",
            f"solved end-to-end: {len(solved)}/{total} = "
            f"{fmt_pct(len(solved) / total)} (paper: 76%)",
            f"average demonstrated actions on solved benchmarks: "
            f"{mean_demos:.1f} (paper: ~10)",
            f"not solved: {', '.join(failed) if failed else 'none'}",
        ]
        return "\n".join(lines)


def run_sweep(
    subset: Optional[Sequence[str]] = None, verbose: bool = False
) -> SweepOutcome:
    """Run an interactive session on every benchmark."""
    reports: dict[str, SessionReport] = {}
    for benchmark in all_benchmarks():
        if subset is not None and benchmark.bid not in subset:
            continue
        report = run_session(benchmark)
        reports[benchmark.bid] = report
        if verbose:
            print(
                f"{benchmark.bid}: completed={report.completed} "
                f"demos={report.demonstrated} auto={report.automated} "
                f"share={report.automation_fraction:.0%}"
            )
    return SweepOutcome(reports)


def main() -> None:
    """CLI entry: simulate the study, then the full sweep."""
    study = run_study(verbose=True)
    print()
    print(study.render())
    print()
    sweep = run_sweep(verbose=True)
    print()
    print(sweep.render())


if __name__ == "__main__":
    main()
