"""Q4 — comparison with conventional rewrite-based synthesis (Table 2).

The paper evaluates its egg-based baseline on the nine benchmarks whose
ground truths involve only selector loops and no alternative selectors,
running both engines on action traces of increasing length and reporting
the synthesis time at the shortest trace for which each produces an
intended program.

Our baseline is better at early extraction than the paper's (a minimal-
statement extractor finds the generalizing loop as soon as one boundary-
aligned repetition is visible), so we report *two* costs per benchmark:

* ``shortest`` — time at the shortest intended prefix (the paper's X/Y);
* ``full trace`` — time to saturate the complete recorded trace, which is
  where correct-by-construction rewriting pays the combinatorial price
  the paper describes (single loops stay in milliseconds, doubly-nested
  grow by orders of magnitude, three-level nesting exhausts the budget).

``REPRO_Q4_TIMEOUT`` bounds each baseline run (default 60 s; the paper
used 5 minutes).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.baseline.egg_synth import synthesize_baseline
from repro.benchmarks.suite import Benchmark, TABLE2_IDS, benchmark_by_id
from repro.browser.replayer import Replayer
from repro.harness.report import fmt_ms, render_table
from repro.lang.ast import Program
from repro.synth.config import DEFAULT_CONFIG, no_incremental_config
from repro.synth.synthesizer import Synthesizer


def q4_timeout() -> float:
    """Per-run baseline budget in seconds (env-overridable)."""
    return float(os.environ.get("REPRO_Q4_TIMEOUT", "60"))


def _intended(benchmark: Benchmark, program: Optional[Program], recording) -> bool:
    if program is None:
        return False
    browser = benchmark.fresh_browser()
    outcome = Replayer(browser, max_actions=500, raise_errors=False).run(program)
    return outcome.error is None and outcome.outputs == recording.outputs


@dataclass
class EngineMeasurement:
    """One engine's Table 2 cell."""

    shortest_length: Optional[int] = None
    shortest_time: Optional[float] = None
    full_time: Optional[float] = None
    full_timed_out: bool = False

    def cell_shortest(self) -> str:
        if self.shortest_length is None:
            return "–/–"
        return f"{fmt_ms(self.shortest_time)}/{self.shortest_length}"

    def cell_full(self) -> str:
        if self.full_timed_out:
            return "timeout"
        if self.full_time is None:
            return "–"
        return fmt_ms(self.full_time)


@dataclass
class Q4Row:
    """Baseline vs WebRobot on one benchmark."""

    bid: str
    trace_length: int
    baseline: EngineMeasurement
    webrobot: EngineMeasurement


def measure_baseline(benchmark: Benchmark, budget: Optional[float] = None) -> EngineMeasurement:
    """Baseline: increasing prefixes until intended, plus the full trace."""
    timeout = budget if budget is not None else q4_timeout()
    recording = benchmark.record()
    measurement = EngineMeasurement()
    spent = 0.0
    for length in range(2, recording.length + 1):
        remaining = timeout - spent
        if remaining <= 0:
            break
        actions, snapshots = recording.prefix(length)
        outcome = synthesize_baseline(actions, snapshots, timeout=remaining)
        spent += outcome.elapsed
        if outcome.timed_out:
            break
        if _intended(benchmark, outcome.program, recording):
            measurement.shortest_length = length
            measurement.shortest_time = outcome.elapsed
            break
    actions, snapshots = recording.prefix(recording.length)
    full = synthesize_baseline(actions, snapshots, timeout=timeout)
    measurement.full_time = full.elapsed
    measurement.full_timed_out = full.timed_out
    return measurement


def measure_webrobot(
    benchmark: Benchmark, target_length: Optional[int] = None
) -> EngineMeasurement:
    """WebRobot, single-shot (no worklist sharing) at trace length Y.

    Table 2 compares both engines at the *same* shortest trace length, so
    ``target_length`` is normally the baseline's Y; when the baseline
    never succeeded (the paper's b56) the full trace is used, as the
    paper does (950 ms at length 204).
    """
    recording = benchmark.record()
    measurement = EngineMeasurement()
    config = no_incremental_config()
    length = target_length if target_length is not None else recording.length - 1
    length = max(2, min(length, recording.length - 1))
    actions, snapshots = recording.prefix(length)
    started = time.perf_counter()
    with Synthesizer(benchmark.data, config) as synthesizer:
        result = synthesizer.synthesize(actions, snapshots)
    elapsed = time.perf_counter() - started
    if _intended(benchmark, result.best_program, recording):
        measurement.shortest_length = length
        measurement.shortest_time = elapsed
    # full trace, one shot
    actions, snapshots = recording.prefix(recording.length - 1)
    started = time.perf_counter()
    with Synthesizer(benchmark.data, config) as synthesizer:
        full_result = synthesizer.synthesize(actions, snapshots)
    measurement.full_time = time.perf_counter() - started
    measurement.full_timed_out = not _intended(
        benchmark, full_result.best_program, recording
    )
    return measurement


@dataclass
class Q4Report:
    """All Table 2 rows."""

    rows: list[Q4Row]

    def render_table2(self) -> str:
        paper = {
            "b12": "2e5ms/34", "b15": "12ms/6", "b20": "15ms/12", "b48": "6ms/8",
            "b56": "–/–", "b73": "2ms/2", "b74": "2ms/2", "b75": "3ms/2",
            "b76": "2ms/2",
        }
        header = ["bench", "n", "egg shortest", "egg full", "WebRobot shortest",
                  "WebRobot full", "paper egg X/Y"]
        body = []
        for row in self.rows:
            body.append([
                row.bid,
                row.trace_length,
                row.baseline.cell_shortest(),
                row.baseline.cell_full(),
                row.webrobot.cell_shortest(),
                row.webrobot.cell_full(),
                paper.get(row.bid, "—"),
            ])
        table = render_table(header, body)
        return (
            "Table 2 — egg-style baseline vs WebRobot (Q4)\n"
            "X/Y = synthesis time at the shortest intended trace length Y\n"
            + table
        )


def run_q4(verbose: bool = False) -> Q4Report:
    """Run the Table 2 comparison on the nine selector-loop benchmarks."""
    rows = []
    for bid in TABLE2_IDS:
        benchmark = benchmark_by_id(bid)
        baseline = measure_baseline(benchmark)
        webrobot = measure_webrobot(benchmark, baseline.shortest_length)
        rows.append(Q4Row(bid, benchmark.record().length, baseline, webrobot))
        if verbose:
            row = rows[-1]
            print(
                f"{bid}: egg {row.baseline.cell_shortest()} full {row.baseline.cell_full()} "
                f"| webrobot {row.webrobot.cell_shortest()} full {row.webrobot.cell_full()}"
            )
    rows.sort(key=lambda row: int(row.bid[1:]))
    return Q4Report(rows)


def main() -> None:
    """CLI entry: regenerate Table 2."""
    report = run_q4(verbose=True)
    print()
    print(report.render_table2())


if __name__ == "__main__":
    main()
