"""Statement walking shared by the analysis domains.

Paths follow the convention of :mod:`repro.lang.check` and
:mod:`repro.lang.lint`: a tuple of body indices from the program root,
with a while loop's terminating click addressed at index ``len(body)``
of its loop (it executes after the body on every iteration).
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.ast import (
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)

#: One walk entry: (path, statement, enclosing loop statements).
WalkEntry = tuple[tuple[int, ...], Statement, tuple[Statement, ...]]


def _walk_body(
    body: tuple[Statement, ...],
    path: tuple[int, ...],
    loops: tuple[Statement, ...],
) -> Iterator[WalkEntry]:
    for index, stmt in enumerate(body):
        inner = path + (index,)
        yield inner, stmt, loops
        if isinstance(stmt, (ForEachSelector, ForEachValue, PaginateLoop)):
            yield from _walk_body(stmt.body, inner, loops + (stmt,))
        elif isinstance(stmt, WhileLoop):
            yield from _walk_body(stmt.body, inner, loops + (stmt,))
            yield inner + (len(stmt.body),), stmt.click, loops + (stmt,)


def walk_statements(program: Program) -> Iterator[WalkEntry]:
    """Yield ``(path, statement, enclosing loops)`` for every statement."""
    yield from _walk_body(program.statements, (), ())
