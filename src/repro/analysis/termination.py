"""Termination and progress verdicts for the loop forms.

The bounded loops terminate by construction — ``foreach`` over a
selector collection visits each matching node of a finite snapshot
once, ``foreach`` over value paths visits each element of a finite
input array once.  The unbounded forms need an argument:

``while true do { P ; Click(n) }``
    Terminates iff the terminating click eventually stops resolving.
    When ``n`` is *attribute-anchored* (some step tests an attribute
    equality — the shape of real next-page controls, which disappear
    on the last page) the loop plausibly makes progress toward that
    exit: verdict ``progress``.  A purely positional ``n`` (bare
    tag-indexed steps only) can keep resolving to *some* node on every
    page, so nothing in the program text argues the loop ever exits:
    verdict ``unknown``.

``paginate``
    The counter κ strictly increases every iteration and each template
    instantiation addresses a *different* page control; the loop exits
    as soon as neither the next control nor the advance button
    resolves.  Every page is visited at most once: verdict
    ``progress``.

Verdicts are ordered ``terminating < progress < unknown``; a program's
overall verdict is the worst over its loops (``terminating`` when it
has none).  The suite's golden test pins the precision claim: every
expected program of the benchmark sites earns at least ``progress``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.walk import walk_statements
from repro.lang.ast import (
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Selector,
    WhileLoop,
)

TERMINATING = "terminating"
PROGRESS = "progress"
UNKNOWN = "unknown"

_ORDER = {TERMINATING: 0, PROGRESS: 1, UNKNOWN: 2}


@dataclass(frozen=True)
class LoopVerdict:
    """One loop's verdict: where it is, what form, why."""

    path: tuple[int, ...]
    form: str
    verdict: str
    reason: str

    def __str__(self) -> str:
        where = ".".join(str(index) for index in self.path) or "<top>"
        return f"{self.verdict}[{self.form}] at {where}: {self.reason}"


def _anchored(selector: Selector) -> bool:
    """Does any step of the selector test an attribute equality?"""
    return any(step.pred.attr is not None for step in selector.steps)


def _while_verdict(loop: WhileLoop, path: tuple[int, ...]) -> LoopVerdict:
    target = loop.click.target
    if target is not None and _anchored(target):
        return LoopVerdict(
            path,
            "while",
            PROGRESS,
            f"terminating click {target} is attribute-anchored: the "
            "control it names disappears when pagination is exhausted",
        )
    rendered = target if target is not None else "<none>"
    return LoopVerdict(
        path,
        "while",
        UNKNOWN,
        f"terminating click {rendered} addresses a node by position "
        "only; nothing in the program argues it ever stops resolving",
    )


def loop_verdicts(program: Program) -> list[LoopVerdict]:
    """Per-loop verdicts, in statement order."""
    verdicts: list[LoopVerdict] = []
    for path, stmt, _loops in walk_statements(program):
        if isinstance(stmt, ForEachSelector):
            verdicts.append(
                LoopVerdict(
                    path,
                    "foreach-selector",
                    TERMINATING,
                    "iterates once per matching node of a finite snapshot",
                )
            )
        elif isinstance(stmt, ForEachValue):
            verdicts.append(
                LoopVerdict(
                    path,
                    "foreach-value",
                    TERMINATING,
                    "iterates once per element of a finite input array",
                )
            )
        elif isinstance(stmt, WhileLoop):
            verdicts.append(_while_verdict(stmt, path))
        elif isinstance(stmt, PaginateLoop):
            verdicts.append(
                LoopVerdict(
                    path,
                    "paginate",
                    PROGRESS,
                    "the page counter strictly increases, so every "
                    "template instantiation addresses a fresh control",
                )
            )
    return verdicts


def termination_of_program(program: Program) -> tuple[str, list[LoopVerdict]]:
    """The program's overall verdict (worst loop) plus per-loop detail."""
    verdicts = loop_verdicts(program)
    overall = TERMINATING
    for verdict in verdicts:
        if _ORDER[verdict.verdict] > _ORDER[overall]:
            overall = verdict.verdict
    return overall, verdicts
