"""Symbolic cost intervals: how many actions can a replay emit?

The abstract domain is an interval ``[lo, hi]`` over emitted-action
counts, with ``hi is None`` encoding an unbounded maximum.  Intervals
compose by summation over statement sequences and by scaling over
loops whose iteration count is statically known (a ``foreach`` over a
concrete value path of a known :class:`~repro.lang.data.DataSource`
runs exactly once per array element).

Soundness (pinned by the property tests) is asymmetric, mirroring the
trace semantics' halting behaviour:

* the **upper bound** holds for *every* run — halting mid-statement
  only ever shortens the emission (produced traces are prefixes);
* the **lower bound** holds for *complete* runs — a replay that went
  stuck (a selector or value path stopped resolving) may emit fewer.

Selector loops and the unbounded pagination forms get ``[0, ∞)`` /
``[body_lo, ∞)``: how many nodes match — or how many pages exist — is
a property of the page, not the program.  The interval is still a
useful ranking signal (:mod:`repro.synth.ranking`'s ``cost``
strategy): among generalizing programs, a tighter, cheaper interval
means a more predictable replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang.ast import (
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)
from repro.lang.data import DataPathError, DataSource


@dataclass(frozen=True)
class CostInterval:
    """An interval of emitted-action counts; ``hi is None`` = unbounded."""

    lo: int
    hi: Optional[int]

    def add(self, other: "CostInterval") -> "CostInterval":
        """Sequential composition: sums, unbounded absorbing."""
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return CostInterval(self.lo + other.lo, hi)

    def scale(self, count: int) -> "CostInterval":
        """Exactly ``count`` repetitions of this interval."""
        hi = None if self.hi is None else self.hi * count
        return CostInterval(self.lo * count, hi)

    def contains(self, count: int) -> bool:
        """Is a measured action count inside the interval?"""
        return count >= self.lo and (self.hi is None or count <= self.hi)

    @property
    def bounded(self) -> bool:
        """Whether the maximum is finite."""
        return self.hi is not None

    def __str__(self) -> str:
        upper = "inf)" if self.hi is None else f"{self.hi}]"
        return f"[{self.lo}, {upper}"


#: The empty program's cost.
ZERO = CostInterval(0, 0)


def _loop_upper(body: CostInterval) -> Optional[int]:
    """Unbounded iterations of ``body``: 0 if the body emits nothing."""
    return 0 if body.hi == 0 else None


def statement_cost(stmt: Statement, data: Optional[DataSource] = None) -> CostInterval:
    """The cost interval of one statement.

    ``data`` sharpens value loops over concrete paths to an exact
    iteration count; without it (or for paths rooted at an enclosing
    loop variable) the loop is unbounded above and zero below.
    """
    if isinstance(stmt, ActionStmt):
        return CostInterval(1, 1)
    if isinstance(stmt, ForEachSelector):
        body = _body_cost(stmt.body, data)
        return CostInterval(0, _loop_upper(body))
    if isinstance(stmt, ForEachValue):
        body = _body_cost(stmt.body, data)
        path = stmt.collection.path
        if data is not None and path.base is None:
            try:
                count = len(data.value_paths(path))
            except DataPathError:
                # the evaluator skips the loop when the path is not an
                # array: zero iterations, zero actions
                return ZERO
            return body.scale(count)
        return CostInterval(0, _loop_upper(body))
    if isinstance(stmt, WhileLoop):
        # at least one full body run before the exit check; each further
        # iteration adds a click, so the maximum is page-dependent
        body = _body_cost(stmt.body, data)
        return CostInterval(body.lo, None)
    if isinstance(stmt, PaginateLoop):
        body = _body_cost(stmt.body, data)
        return CostInterval(body.lo, None)
    raise TypeError(f"not a statement: {stmt!r}")


def _body_cost(body: tuple[Statement, ...], data: Optional[DataSource]) -> CostInterval:
    cost = ZERO
    for stmt in body:
        cost = cost.add(statement_cost(stmt, data))
    return cost


def program_cost(program: Program, data: Optional[DataSource] = None) -> CostInterval:
    """The cost interval of a whole program."""
    return _body_cost(program.statements, data)
