"""Aggregated program analysis and the unified diagnostics format.

:func:`analyze_program` runs every abstract domain over one program and
returns a :class:`ProgramAnalysis`: the effect summary, the termination
verdict, the cost interval, per-selector fragility reports, and a list
of :class:`Finding` diagnostics derived from them.

:class:`Finding` is the *shared* machine-readable diagnostic shape:
``repro check``, ``repro lint``, and ``repro analyze`` all convert
their native results into it, and :func:`findings_payload` renders the
one ``--json`` document editors and CI consume — the three commands
differ only in the ``tool`` tag and which rules can appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cost import CostInterval, program_cost
from repro.analysis.effects import EffectSummary, effect_of_program
from repro.analysis.fragility import (
    SelectorReport,
    fragility_of_program,
    max_fragility,
)
from repro.analysis.termination import (
    LoopVerdict,
    UNKNOWN,
    termination_of_program,
)
from repro.dom.node import DOMNode
from repro.lang.ast import Program
from repro.lang.check import Diagnostic
from repro.lang.data import DataSource
from repro.lang.lint import LintFinding

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Version of the shared ``--json`` findings document.
FINDINGS_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One diagnostic in the unified check/lint/analyze shape."""

    tool: str
    rule: str
    severity: str
    path: tuple[int, ...]
    message: str

    def to_json(self) -> dict[str, object]:
        """The wire form used by every ``--json`` diagnostics command."""
        return {
            "tool": self.tool,
            "rule": self.rule,
            "severity": self.severity,
            "path": list(self.path),
            "message": self.message,
        }

    def __str__(self) -> str:
        where = ".".join(str(index) for index in self.path) or "<top>"
        return f"{self.severity}[{self.rule}] at {where}: {self.message}"


def findings_payload(
    tool: str,
    findings: Sequence[Finding],
    extra: Optional[dict[str, object]] = None,
) -> dict[str, object]:
    """The shared ``--json`` document: version, tool, findings, extras."""
    payload: dict[str, object] = {
        "version": FINDINGS_VERSION,
        "tool": tool,
        "findings": [finding.to_json() for finding in findings],
        "errors": sum(1 for finding in findings if finding.severity == ERROR),
        "warnings": sum(1 for finding in findings if finding.severity == WARNING),
    }
    if extra:
        payload.update(extra)
    return payload


def findings_from_check(diagnostics: Sequence[Diagnostic]) -> list[Finding]:
    """Lift :mod:`repro.lang.check` diagnostics into the shared shape."""
    return [
        Finding("check", "well-formed", diag.severity, diag.path, diag.message)
        for diag in diagnostics
    ]


def findings_from_lint(lint_findings: Sequence[LintFinding]) -> list[Finding]:
    """Lift :mod:`repro.lang.lint` findings into the shared shape."""
    return [
        Finding("lint", finding.rule, finding.severity, finding.path, finding.message)
        for finding in lint_findings
    ]


@dataclass(frozen=True)
class ProgramAnalysis:
    """Every abstract domain's result for one program."""

    effect: EffectSummary
    termination: str
    loops: tuple[LoopVerdict, ...]
    cost: CostInterval
    selectors: tuple[SelectorReport, ...]
    findings: tuple[Finding, ...]

    @property
    def fragility(self) -> int:
        """The worst selector fragility score."""
        return max_fragility(self.selectors)

    @property
    def clean(self) -> bool:
        """No error findings and no unknown-termination loops."""
        return (
            self.termination != UNKNOWN
            and all(finding.severity != ERROR for finding in self.findings)
        )

    def summary_json(self) -> dict[str, object]:
        """The compact summary block (also the protocol annotation)."""
        return {
            "effect": self.effect.classification,
            "safe_replay": self.effect.safe_to_replay,
            "termination": self.termination,
            "cost_min": self.cost.lo,
            "cost_max": self.cost.hi,
            "fragility": self.fragility,
        }

    def to_json(self) -> dict[str, object]:
        """The full ``repro analyze --json`` analysis block."""
        document = self.summary_json()
        document["loops"] = [
            {
                "path": list(verdict.path),
                "form": verdict.form,
                "verdict": verdict.verdict,
                "reason": verdict.reason,
            }
            for verdict in self.loops
        ]
        document["selectors"] = [
            {
                "path": list(report.path),
                "role": report.role,
                "selector": report.selector,
                "fragility": report.score,
                "resolves": report.resolves,
            }
            for report in self.selectors
        ]
        return document


def _analysis_findings(
    effect: EffectSummary,
    loops: Sequence[LoopVerdict],
    cost: CostInterval,
    selectors: Sequence[SelectorReport],
) -> list[Finding]:
    findings: list[Finding] = []
    for report in selectors:
        if report.resolves is False:
            findings.append(
                Finding(
                    "analyze",
                    "unresolved-selector",
                    ERROR,
                    report.path,
                    f"{report.selector} resolves on no demonstrated snapshot: "
                    "the program references a node that never existed",
                )
            )
    for verdict in loops:
        if verdict.verdict == UNKNOWN:
            findings.append(
                Finding(
                    "analyze",
                    "possibly-nonterminating",
                    WARNING,
                    verdict.path,
                    verdict.reason,
                )
            )
    if not effect.safe_to_replay:
        findings.append(
            Finding(
                "analyze",
                "mutating-replay",
                INFO,
                (),
                "replay types keystrokes, enters data, or downloads: "
                "not side-effect-safe to run automatically",
            )
        )
    if cost.hi is None:
        findings.append(
            Finding(
                "analyze",
                "unbounded-cost",
                INFO,
                (),
                f"the action count is page-dependent (cost interval {cost})",
            )
        )
    findings.sort(key=lambda finding: (finding.path, finding.rule))
    return findings


def analyze_program(
    program: Program,
    data: Optional[DataSource] = None,
    snapshots: Sequence[DOMNode] = (),
) -> ProgramAnalysis:
    """Run every analysis domain over ``program``.

    ``data`` sharpens value-loop cost bounds to exact counts;
    ``snapshots`` (a recording's DOM trace) enables the selector
    does-it-resolve check.  Both are optional — without them the
    analysis is purely structural.
    """
    effect = effect_of_program(program)
    overall, loops = termination_of_program(program)
    cost = program_cost(program, data)
    selectors = fragility_of_program(program, snapshots)
    findings = _analysis_findings(effect, loops, cost, selectors)
    return ProgramAnalysis(
        effect=effect,
        termination=overall,
        loops=tuple(loops),
        cost=cost,
        selectors=tuple(selectors),
        findings=tuple(findings),
    )
