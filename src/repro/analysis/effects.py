"""Effect summaries: what does replaying this program do to the world?

The abstract domain is a three-bit lattice — *reads* (extracts values
from the page), *navigates* (changes which page is shown), *mutates*
(changes state beyond navigation: typed keystrokes, entered data,
downloaded files) — joined over every statement a program can reach.
Loop bodies are included unconditionally: an effect inside a loop that
may run zero times is still a *possible* effect, and the consumers of
this summary (the service accept-path, the future real-browser bridge)
need the may-analysis direction.

Classification of the action kinds:

========== =========================================================
READ       ``ScrapeText``, ``ScrapeLink``, ``ExtractURL`` — observe
           the page or URL, touch nothing.
NAVIGATE   ``Click``, ``GoBack`` — change the displayed page.  On the
           demonstrated sites clicks are navigational; a click that
           submits a form shows up as entered data *first* (``SendKeys``
           / ``EnterData``), which is what flips the mutating bit.
MUTATE     ``SendKeys``, ``EnterData`` — write into the page —
           and ``Download``, which is externally side-effecting (a
           file lands on disk; re-running is not idempotent).
========== =========================================================

Soundness claim (pinned by the property tests): a program classified
read-only performs no navigation and no mutation during concrete
replay — its replay leaves every DOM snapshot structurally unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    CLICK,
    DOWNLOAD,
    ENTER_DATA,
    EXTRACT_URL,
    GO_BACK,
    SCRAPE_LINK,
    SCRAPE_TEXT,
    SEND_KEYS,
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)

#: Action kinds that only observe the page.
READ_KINDS = frozenset({SCRAPE_TEXT, SCRAPE_LINK, EXTRACT_URL})
#: Action kinds that change the displayed page but nothing else.
NAVIGATE_KINDS = frozenset({CLICK, GO_BACK})
#: Action kinds with effects beyond navigation.
MUTATE_KINDS = frozenset({SEND_KEYS, ENTER_DATA, DOWNLOAD})

#: Classification labels (worst wins).
READ_ONLY = "read-only"
NAVIGATING = "navigating"
MUTATING = "mutating"


@dataclass(frozen=True)
class EffectSummary:
    """May-effects of one statement or program."""

    reads: bool = False
    navigates: bool = False
    mutates: bool = False

    def join(self, other: "EffectSummary") -> "EffectSummary":
        """Least upper bound: the union of possible effects."""
        return EffectSummary(
            self.reads or other.reads,
            self.navigates or other.navigates,
            self.mutates or other.mutates,
        )

    @property
    def classification(self) -> str:
        """The worst effect class: mutating > navigating > read-only."""
        if self.mutates:
            return MUTATING
        if self.navigates:
            return NAVIGATING
        return READ_ONLY

    @property
    def safe_to_replay(self) -> bool:
        """Whether automatic replay is side-effect-safe (no mutation)."""
        return not self.mutates


#: The bottom element (no effects at all).
PURE = EffectSummary()


def effect_of_kind(kind: str) -> EffectSummary:
    """The effect of one action kind."""
    return EffectSummary(
        reads=kind in READ_KINDS,
        navigates=kind in NAVIGATE_KINDS,
        mutates=kind in MUTATE_KINDS,
    )


def effect_of_statement(stmt: Statement) -> EffectSummary:
    """May-effects of one statement, loop bodies included."""
    if isinstance(stmt, ActionStmt):
        return effect_of_kind(stmt.kind)
    summary = PURE
    if isinstance(stmt, (ForEachSelector, ForEachValue, PaginateLoop, WhileLoop)):
        for child in stmt.body:
            summary = summary.join(effect_of_statement(child))
    if isinstance(stmt, WhileLoop):
        summary = summary.join(effect_of_statement(stmt.click))
    if isinstance(stmt, PaginateLoop):
        # the template and advance clicks navigate between pages
        summary = summary.join(effect_of_kind(CLICK))
    return summary


def effect_of_program(program: Program) -> EffectSummary:
    """May-effects of a whole program."""
    summary = PURE
    for stmt in program.statements:
        summary = summary.join(effect_of_statement(stmt))
    return summary
