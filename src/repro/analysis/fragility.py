"""Selector fragility: how many single-node edits break a selector?

The score counts, per step, the structural perturbations of one node
that change what the step selects — the static twin of
:mod:`repro.browser.repair`'s dynamic drift repair, which re-finds a
node *after* such an edit happened:

* a bare-tag step ``/div[i]`` (or ``//div[i]``) breaks when any of the
  ``i - 1`` preceding same-tag matches is removed, or when one is
  inserted before the target: fragility ``i``;
* an attribute-anchored step ``//div[@id='x'][i]`` with ``i == 1`` is
  keyed to the attribute, not to document position — inserting or
  removing unrelated nodes cannot move it: fragility ``0``; with
  ``i > 1`` the anchor narrows the candidate pool but the position
  among anchored matches still matters: fragility ``i - 1``.

A selector's score is the sum over its steps, so long absolute
recorder paths (``/html[1]/body[1]/div[3]/...``) score high and the
synthesizer's attribute-anchored alternatives score near zero — the
ordering :mod:`repro.lang.lint`'s ``brittle-selector`` rule eyeballs,
made quantitative.

Against a recording, the analysis also checks that every *concrete*
selector resolves on at least one demonstrated snapshot (resolution
goes through the per-snapshot :class:`~repro.engine.index.SnapshotIndex`
like every other resolve).  A selector that resolves nowhere in the
demonstration is reported as an error by ``repro analyze``: the
program references a node that never existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.walk import walk_statements
from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, Step, valid
from repro.lang.ast import (
    ActionStmt,
    ForEachSelector,
    PaginateLoop,
    Program,
    Selector,
)


@dataclass(frozen=True)
class SelectorReport:
    """One selector occurrence: location, role, score, resolvability.

    ``resolves`` is ``None`` when the check does not apply — the
    selector mentions a loop variable (its base node is unknown
    statically) or no snapshots were supplied.
    """

    path: tuple[int, ...]
    role: str
    selector: str
    score: int
    resolves: Optional[bool]

    def __str__(self) -> str:
        where = ".".join(str(index) for index in self.path) or "<top>"
        status = "" if self.resolves in (True, None) else " UNRESOLVED"
        return f"fragility {self.score} [{self.role}] at {where}: {self.selector}{status}"


def step_fragility(step: Step) -> int:
    """Single-node perturbations that change what ``step`` selects."""
    if step.pred.attr is None:
        return step.index
    return 0 if step.index == 1 else step.index - 1


def selector_fragility(steps: Iterable[Step]) -> int:
    """Sum of step fragilities: the selector's score."""
    return sum(step_fragility(step) for step in steps)


def _resolves_somewhere(
    steps: tuple[Step, ...], snapshots: Sequence[DOMNode]
) -> Optional[bool]:
    if not snapshots:
        return None
    concrete = ConcreteSelector(steps)
    return any(valid(concrete, snapshot) for snapshot in snapshots)


def _report(
    path: tuple[int, ...],
    role: str,
    selector: Selector,
    snapshots: Sequence[DOMNode],
) -> SelectorReport:
    resolves = (
        _resolves_somewhere(selector.steps, snapshots)
        if selector.base is None
        else None
    )
    return SelectorReport(
        path, role, str(selector), selector_fragility(selector.steps), resolves
    )


def fragility_of_program(
    program: Program, snapshots: Sequence[DOMNode] = ()
) -> list[SelectorReport]:
    """Score every selector occurrence of ``program``.

    ``snapshots`` (typically a recording's DOM trace) enables the
    does-it-resolve check for concrete selectors; without it only the
    structural scores are computed.
    """
    reports: list[SelectorReport] = []
    for path, stmt, _loops in walk_statements(program):
        if isinstance(stmt, ActionStmt):
            # while-loop terminating clicks arrive here too (the walker
            # yields them at index len(body) of their loop)
            if stmt.target is not None:
                reports.append(_report(path, "target", stmt.target, snapshots))
        elif isinstance(stmt, ForEachSelector):
            reports.append(
                _report(path, "collection", stmt.collection.base, snapshots)
            )
        elif isinstance(stmt, PaginateLoop):
            template_steps = (
                stmt.template.prefix_steps + stmt.template.suffix_steps
            )
            reports.append(
                SelectorReport(
                    path,
                    "template",
                    stmt.template.hole_text(),
                    selector_fragility(template_steps),
                    None,
                )
            )
            if stmt.advance is not None:
                reports.append(_report(path, "advance", stmt.advance, snapshots))
    return reports


def max_fragility(reports: Sequence[SelectorReport]) -> int:
    """The worst selector score (0 for a selector-free program)."""
    return max((report.score for report in reports), default=0)
