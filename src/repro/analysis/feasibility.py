"""Static refutation of speculated candidates (the pruning analysis).

Algorithm 3 accepts a speculative rewrite only if executing its
statement over the remaining DOM trace reproduces the recorded slice
*exactly* through at least one statement boundary beyond the
speculated first iteration.  That gives two conditions any successful
candidate must satisfy, both checkable without running the engine:

1. **Structural**: a boundary ``b >= end + 2`` must exist in the
   tuple's bounds — otherwise no matched slice can extend past the
   first iteration and validation always fails.
2. **Feasibility**: the first ``L = bounds[end + 2] - bounds[start]``
   recorded actions after the candidate's start must be a prefix of
   the statement's *emission language* — the set of action traces its
   execution can possibly produce.

The emission language is overapproximated by a small NFA over the
statement structure: an action statement is one transition, a
``foreach`` body is a cycle (iteration counts are abstracted to
``*``, a sound overapproximation of any bound), a while loop is a
``body · click`` cycle whose exit sits between body and click, and a
paginate loop is a ``body · click`` cycle whose click matches any
recorded ``Click`` (the counter is not tracked).  Halting can cut an
execution anywhere, so produced traces are *prefixes* of NFA paths —
the simulation below therefore only prefix-matches and never needs
accept states.

Per-position transition matching is exact where the statement is
concrete and wildcard where it mentions a loop variable:

* kinds must match; ``SendKeys`` text is compared literally;
* a concrete ``EnterData`` path must equal the recorded path *and*
  exist in the input data (otherwise the statement is stuck and the
  transition is dead);
* a concrete selector must resolve on the position's snapshot to the
  *same node* as the recorded action's selector (the engine's
  consistency notion), and must resolve at all (else stuck);
* variable-based selectors and paths match anything of the right
  shape — their bindings are unknown statically.

Because the NFA overapproximates emissions and matching overapproximates
consistency, a candidate whose simulation dies before consuming ``L``
reference symbols **cannot** validate: pruning it is sound, and the
synthesized programs stay byte-identical (the scheduler-parity tests
and ``benchmarks/bench_static_prune.py`` pin this).

This is the hot-path half of the analysis layer: the canonical win is
a speculated loop body that kept a raw first-iteration selector (the
unchanged variant :mod:`repro.synth.speculate`'s assembly always
emits) — at iteration two it re-resolves to the iteration-one node
while the recording moved on, and the NFA dies within a body length
instead of costing an engine execution.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, resolve
from repro.lang.actions import Action
from repro.lang.ast import (
    CLICK,
    ENTER_DATA,
    SEND_KEYS,
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Statement,
    WhileLoop,
)
from repro.lang.data import DataSource

#: Default cap on simulated reference positions: refutations that need
#: more lookahead than this are skipped (sound — the candidate just
#: proceeds to real validation).  Divergence from a stale selector
#: shows up within a body length, far below the cap.
SIMULATION_CAP = 16

#: Epsilon edge marker (loop back-edges and zero-iteration skips).
_EPS = None

#: Wildcard transition: matches any recorded Click (paginate controls).
_ANY_CLICK = "any-click"

#: Compiled NFA: per-state list of (label, successor) edges, where a
#: label is an ActionStmt to emission-match, _ANY_CLICK, or _EPS.
_Label = Union[ActionStmt, str, None]
_Edge = tuple[_Label, int]
_Transitions = list[list[_Edge]]


# ----------------------------------------------------------------------
# Compilation (context-free, memoized on the statement object)
# ----------------------------------------------------------------------
def _build(stmt: Statement, start: int, transitions: _Transitions) -> int:
    """Add ``stmt``'s emission shape starting at ``start``; return exit."""

    def new_state() -> int:
        transitions.append([])
        return len(transitions) - 1

    if isinstance(stmt, ActionStmt):
        end = new_state()
        transitions[start].append((stmt, end))
        return end
    if isinstance(stmt, (ForEachSelector, ForEachValue)):
        current = start
        for child in stmt.body:
            current = _build(child, current, transitions)
        # iteration boundary: back for another round; the loop exits
        # (and zero-iterates) at `start` itself
        transitions[current].append((_EPS, start))
        return start
    if isinstance(stmt, WhileLoop):
        current = start
        for child in stmt.body:
            current = _build(child, current, transitions)
        after_click = _build(stmt.click, current, transitions)
        transitions[after_click].append((_EPS, start))
        # the loop exits after a body run, before the click
        return current
    if isinstance(stmt, PaginateLoop):
        current = start
        for child in stmt.body:
            current = _build(child, current, transitions)
        # template or advance click: which button depends on the page
        # and the counter, so any recorded Click is allowed
        transitions[current].append((_ANY_CLICK, start))
        return current
    raise TypeError(f"not a statement: {stmt!r}")


def _compiled(stmt: Statement) -> _Transitions:
    """The statement's emission NFA, cached on the (frozen) statement.

    The structure is context-free — labels are the statement's own
    ``ActionStmt`` objects, matched against a concrete trace only at
    simulation time — so one compilation serves every window and every
    session that speculates this statement object.
    """
    cached: Optional[_Transitions] = stmt.__dict__.get("_emission_nfa")
    if cached is None:
        cached = [[]]
        _build(stmt, 0, cached)
        object.__setattr__(stmt, "_emission_nfa", cached)
    return cached


# ----------------------------------------------------------------------
# Simulation
# ----------------------------------------------------------------------
def _emission_matches(
    stmt: ActionStmt, action: Action, snapshot: DOMNode, data: DataSource
) -> bool:
    """Could executing ``stmt`` on ``snapshot`` emit something consistent
    with the recorded ``action``?  Wildcards where the statement is
    symbolic, exact everywhere else."""
    if stmt.kind != action.kind:
        return False
    if stmt.kind == SEND_KEYS and stmt.text != action.text:
        return False
    if stmt.kind == ENTER_DATA and stmt.value is not None and stmt.value.base is None:
        if stmt.value != action.path:
            return False
        if not data.contains(stmt.value):
            return False  # the statement is stuck: nothing is emitted
    target = stmt.target
    if target is not None and target.base is None:
        node = resolve(ConcreteSelector(target.steps), snapshot)
        if node is None:
            return False  # stuck: valid() fails, nothing is emitted
        recorded = (
            resolve(action.selector, snapshot)
            if action.selector is not None
            else None
        )
        if recorded is None or node is not recorded:
            return False
    return True


def _eps_closure(states: set[int], transitions: _Transitions) -> set[int]:
    closure = set(states)
    stack = list(states)
    while stack:
        state = stack.pop()
        for label, successor in transitions[state]:
            if label is _EPS and successor not in closure:
                closure.add(successor)
                stack.append(successor)
    return closure


def infeasible(
    stmt: Statement,
    actions: Sequence[Action],
    snapshots: Sequence[DOMNode],
    data: DataSource,
    start: int,
    min_count: int,
    cap: int = SIMULATION_CAP,
) -> bool:
    """Can ``stmt`` provably *not* emit ``min_count`` actions consistent
    with ``actions[start:]`` on their snapshots?

    True means every execution of ``stmt`` over the window diverges
    from (or halts before) the first ``min_count`` reference actions —
    Algorithm 3 must reject, so the candidate can be dropped unrun.
    False is the safe answer everywhere else (including past ``cap``).
    """
    if min_count <= 0:
        return False
    transitions = _compiled(stmt)
    limit = min(min_count, cap, len(actions) - start)
    states = _eps_closure({0}, transitions)
    memo: dict[tuple[int, int], bool] = {}
    for position in range(limit):
        action = actions[start + position]
        snapshot = snapshots[start + position]
        successors: set[int] = set()
        for state in states:
            for label, successor in transitions[state]:
                if label is None or successor in successors:
                    continue
                if isinstance(label, ActionStmt):
                    key = (id(label), position)
                    cached = memo.get(key)
                    if cached is None:
                        cached = _emission_matches(label, action, snapshot, data)
                        memo[key] = cached
                    matched = cached
                else:  # _ANY_CLICK
                    matched = action.kind == CLICK
                if matched:
                    successors.add(successor)
        if not successors:
            # the NFA died after `position` symbols < min_count: no
            # execution can reproduce the required slice
            return True
        states = _eps_closure(successors, transitions)
    return False
