"""Abstract program analysis over the web RPA DSL.

The synthesizer answers "which programs are trace-consistent?"; this
package answers "what will a program *do* when replayed?" — without
executing it.  Four abstract domains, one per module:

:mod:`repro.analysis.effects`
    Effect summaries: does the program only read the page, does it
    navigate, does it mutate state (type keystrokes, enter data,
    download)?  The service accept-path and the future real-browser
    bridge use this to refuse auto-replay of mutating programs.
:mod:`repro.analysis.termination`
    Termination/progress verdicts for the unbounded loop forms: does
    the trailing click of a ``while`` loop plausibly change pagination
    state; is a paginate counter strictly advancing?
:mod:`repro.analysis.fragility`
    Selector fragility scores — how many single-node structural
    perturbations break each selector — the static twin of
    :mod:`repro.browser.repair`'s dynamic drift repair.
:mod:`repro.analysis.cost`
    Symbolic cost intervals: min/max emitted actions as a function of
    loop bounds, a ranking signal for :mod:`repro.synth.ranking`.

:mod:`repro.analysis.feasibility` is the synthesis-hot-path client: a
statically sound refutation of speculated candidates (can this
statement's emission language possibly reproduce the recorded slice it
must cover?), used by :mod:`repro.synth.scheduler` to drop candidates
before the validation waves ever execute them.

:mod:`repro.analysis.report` aggregates the domains into one
:class:`~repro.analysis.report.ProgramAnalysis` with unified findings —
the same machine-readable shape ``repro check`` / ``repro lint`` /
``repro analyze`` all emit under ``--json``.
"""

from repro.analysis.cost import CostInterval, program_cost, statement_cost
from repro.analysis.effects import (
    EffectSummary,
    MUTATE_KINDS,
    NAVIGATE_KINDS,
    READ_KINDS,
    effect_of_program,
    effect_of_statement,
)
from repro.analysis.fragility import (
    SelectorReport,
    fragility_of_program,
    selector_fragility,
)
from repro.analysis.report import (
    Finding,
    ProgramAnalysis,
    analyze_program,
    findings_payload,
)
from repro.analysis.termination import (
    PROGRESS,
    TERMINATING,
    UNKNOWN,
    LoopVerdict,
    termination_of_program,
)

__all__ = [
    "CostInterval",
    "EffectSummary",
    "Finding",
    "LoopVerdict",
    "MUTATE_KINDS",
    "NAVIGATE_KINDS",
    "PROGRESS",
    "ProgramAnalysis",
    "READ_KINDS",
    "SelectorReport",
    "TERMINATING",
    "UNKNOWN",
    "analyze_program",
    "effect_of_program",
    "effect_of_statement",
    "findings_payload",
    "fragility_of_program",
    "program_cost",
    "selector_fragility",
    "statement_cost",
    "termination_of_program",
]
