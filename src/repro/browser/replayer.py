"""Real (side-effectful) execution of web RPA programs.

The replayer is the analogue of running a Selenium script: it executes a
program against a live :class:`~repro.browser.virtual.Browser`, resolving
loops against the *current* page rather than a recorded DOM trace.  It is
used in two roles:

* instrumenting ground-truth programs to record the evaluation traces of
  §7.1 (see :mod:`repro.browser.recorder`), and
* running synthesized programs end-to-end to decide whether they automate
  a benchmark (the "intended program" check and the Q3 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.browser.virtual import Browser
from repro.dom.node import DOMNode
from repro.engine.engine import ExecutionEngine
from repro.lang.actions import Action
from repro.lang.ast import (
    ActionStmt,
    CLICK,
    ChildrenOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)
from repro.semantics.env import Env
from repro.util.errors import DataPathError, ReplayError


@dataclass
class ReplayResult:
    """Outcome of a real execution.

    ``truncated`` is set when the ``max_actions`` cap stopped the run (the
    paper terminates ground-truth programs after 500 actions).  ``error``
    carries the failure for runs with ``raise_errors=False``.
    """

    actions: list[Action] = field(default_factory=list)
    snapshots: list[DOMNode] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    truncated: bool = False
    error: Optional[str] = None

    @property
    def action_count(self) -> int:
        """Number of actions actually performed."""
        return len(self.actions)


class _Stop(Exception):
    """Internal: the action cap was reached."""


class Replayer:
    """Executes programs for real against a browser."""

    def __init__(
        self,
        browser: Browser,
        max_actions: int = 500,
        raise_errors: bool = True,
        engine: Optional[ExecutionEngine] = None,
    ) -> None:
        self.browser = browser
        self.max_actions = max_actions
        self.raise_errors = raise_errors
        self._performed = 0
        self._truncated = False
        # Loop-continuation checks go through the engine seam; live
        # pages are one-shot, so the default engine skips memoization.
        self._engine = engine or ExecutionEngine(browser.data, use_cache=False)

    # ------------------------------------------------------------------
    def run(self, program: Program | Sequence[Statement]) -> ReplayResult:
        """Execute ``program`` to completion (or the action cap).

        Returns the recorded trace: actions (raw-XPath normalised by the
        browser), the snapshot before each action plus the final snapshot,
        and the scraped outputs.
        """
        statements = tuple(program) if isinstance(program, Program) else tuple(program)
        result = ReplayResult()
        try:
            self._run_sequence(statements, Env.empty())
        except _Stop:
            self._truncated = True
        except (ReplayError, DataPathError) as error:
            if self.raise_errors:
                raise
            result.error = str(error)
        actions, snapshots = self.browser.trace()
        result.actions = actions
        result.snapshots = snapshots
        result.outputs = list(self.browser.outputs)
        result.truncated = self._truncated
        return result

    # ------------------------------------------------------------------
    def _perform(self, action: Action) -> None:
        if self._performed >= self.max_actions:
            raise _Stop()
        self.browser.perform(action)
        self._performed += 1

    def _run_sequence(self, statements: Sequence[Statement], env: Env) -> Env:
        for statement in statements:
            env = self._run_statement(statement, env)
        return env

    def _run_statement(self, statement: Statement, env: Env) -> Env:
        if isinstance(statement, ActionStmt):
            selector = (
                env.resolve_selector(statement.target) if statement.target else None
            )
            path = env.resolve_path(statement.value) if statement.value else None
            self._perform(Action(statement.kind, selector, statement.text, path))
            return env
        if isinstance(statement, ForEachSelector):
            return self._run_selector_loop(statement, env)
        if isinstance(statement, ForEachValue):
            return self._run_value_loop(statement, env)
        if isinstance(statement, WhileLoop):
            return self._run_while_loop(statement, env)
        if isinstance(statement, PaginateLoop):
            return self._run_paginate_loop(statement, env)
        raise ReplayError(f"not a statement: {statement!r}")

    def _run_selector_loop(self, loop: ForEachSelector, env: Env) -> Env:
        base = env.resolve_selector(loop.collection.base)
        extend = base.child if isinstance(loop.collection, ChildrenOf) else base.desc
        index = 1
        while True:
            element = extend(loop.collection.pred, index)
            # lazy continuation check against the *live* page, which may
            # have changed while the body executed (S-Cont's rationale)
            if not self._engine.valid(element, self.browser.dom):
                return env
            env = env.bind(loop.var, element)
            env = self._run_sequence(loop.body, env)
            index += 1

    def _run_value_loop(self, loop: ForEachValue, env: Env) -> Env:
        path = env.resolve_path(loop.collection.path)
        for element_path in self.browser.data.value_paths(path):
            env = env.bind(loop.var, element_path)
            env = self._run_sequence(loop.body, env)
        return env

    def _run_while_loop(self, loop: WhileLoop, env: Env) -> Env:
        while True:
            env = self._run_sequence(loop.body, env)
            selector = env.resolve_selector(loop.click.target)
            if not self._engine.valid(selector, self.browser.dom):
                return env
            self._perform(Action(loop.click.kind, selector))

    def _run_paginate_loop(self, loop: PaginateLoop, env: Env) -> Env:
        counter = loop.start
        advance = (
            env.resolve_selector(loop.advance) if loop.advance is not None else None
        )
        while True:
            env = self._run_sequence(loop.body, env)
            numbered = loop.template.instantiate(counter)
            if self._engine.valid(numbered, self.browser.dom):
                self._perform(Action(CLICK, numbered))
            elif advance is not None and self._engine.valid(advance, self.browser.dom):
                self._perform(Action(CLICK, advance))
            else:
                return env
            counter += 1
