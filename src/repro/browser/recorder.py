"""Ground-truth instrumentation (§7.1's experiment setup).

The paper instruments each benchmark's ground-truth program so that it
records every action it executes plus all intermediate DOMs, giving the
full traces ``A_gt`` / ``Π_gt`` that drive the prediction tests.  This
module packages that: run the ground truth on a fresh browser, capture
traces, outputs, and the cap flag.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.replayer import Replayer, ReplayResult
from repro.browser.virtual import Browser, VirtualWebsite
from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.lang.ast import Program
from repro.lang.data import DataSource, EMPTY_DATA


@dataclass
class Recording:
    """A full ground-truth demonstration.

    ``snapshots`` has one more element than ``actions``; ``outputs`` is
    the dataset the run scraped (the benchmark's expected result).
    """

    actions: list[Action]
    snapshots: list[DOMNode]
    outputs: list[str]
    truncated: bool

    @property
    def length(self) -> int:
        """Number of recorded actions (n)."""
        return len(self.actions)

    def prefix(self, count: int) -> tuple[list[Action], list[DOMNode]]:
        """The ``k``-th prediction test's input: k actions, k+1 DOMs."""
        return self.actions[:count], self.snapshots[: count + 1]


def record_ground_truth(
    site: VirtualWebsite,
    program: Program,
    data: DataSource = EMPTY_DATA,
    max_actions: int = 500,
) -> Recording:
    """Execute ``program`` on a fresh browser over ``site``, recording all.

    Mirrors the paper's setup: the recorded selectors are absolute XPaths
    (the browser normalises them), and runs are capped at ``max_actions``
    (500 in the paper).
    """
    browser = Browser(site, data)
    replayer = Replayer(browser, max_actions=max_actions)
    result: ReplayResult = replayer.run(program)
    return Recording(
        actions=result.actions,
        snapshots=result.snapshots,
        outputs=result.outputs,
        truncated=result.truncated,
    )
