"""Virtual browser substrate: sites, real execution, trace recording."""

from repro.browser.virtual import Browser, VirtualWebsite
from repro.browser.replayer import Replayer, ReplayResult
from repro.browser.recorder import Recording, record_ground_truth
from repro.browser.repair import (
    Fingerprint,
    Repair,
    RepairEvent,
    RepairingReplayer,
    best_match,
    fingerprint_node,
    repair_selector,
    similarity,
)

__all__ = [
    "Browser",
    "VirtualWebsite",
    "Replayer",
    "ReplayResult",
    "Recording",
    "record_ground_truth",
    "Fingerprint",
    "Repair",
    "RepairEvent",
    "RepairingReplayer",
    "best_match",
    "fingerprint_node",
    "repair_selector",
    "similarity",
]
