"""Selector repair: keep replaying when the page has drifted.

Synthesized programs address nodes with selectors captured at
demonstration time.  Live sites drift between demonstration and replay:
an inserted banner shifts sibling indices, a redesign renames a class,
a wrapper div deepens the tree.  A plain :class:`~repro.browser.replayer.
Replayer` then either fails (`selector not found`) or — worse — silently
acts on the *wrong* node.  This brittleness is the classic failure mode
of record-and-replay web automation (the paper's §1 critique of
iMacros-style tools), and repairing it is a natural extension of the
reproduced system: the demonstration already contains everything needed
to recognise the intended node again.

The mechanism is *shadow replay*.  A :class:`RepairingReplayer` executes
the program against the live (drifted) browser while mirroring every
action on a *reference* browser running the site as it looked when the
demonstration was recorded.  Whenever the live page disagrees with the
reference — a selector no longer resolves, or (in ``verify`` mode)
resolves to a node that looks wrong — the replayer:

1. resolves the selector on the **reference** page, recovering the node
   the program *intended*;
2. summarises that node as a :class:`Fingerprint` (tag, attributes,
   text, ancestry, sibling position, subtree text);
3. scans the **live** page for the most similar same-tag node
   (:func:`best_match`) and re-targets the action at it, provided the
   similarity clears ``min_score``.

Every substitution is logged as a :class:`RepairEvent` so callers can
audit what the robot changed.  Repair is action-level: loop collections
anchored on drifted selectors are out of scope (anchor them on attribute
predicates, which the synthesizer's selector search prefers anyway).

>>> from repro.browser.repair import repair_selector
>>> from repro.dom import page, E, parse_selector
>>> old = page(E("h3", text="Hours"))
>>> new = page(E("div", cls="ad"), E("h3", text="Hours"))
>>> repair = repair_selector(parse_selector("/html[1]/body[1]/h3[1]"), old, new)
>>> str(repair.replacement)
'/html[1]/body[1]/h3[1]'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.replayer import Replayer, _Stop
from repro.browser.virtual import Browser
from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, raw_path, resolve
from repro.lang.actions import Action
from repro.util.errors import DataPathError, ReplayError

#: Weights of the similarity components (they sum to 1.0).  Attributes
#: dominate: ids and classes are the most stable coordinates across
#: redesigns, which is also why the selector search prefers them.
_W_ATTRS = 0.35
_W_TEXT = 0.20
_W_PARENT = 0.10
_W_ANCESTRY = 0.10
_W_CHILDREN = 0.10
_W_SIBLING = 0.10
_W_SUBTREE = 0.05

#: How many ancestor tags a fingerprint keeps (nearest first).
_ANCESTRY_DEPTH = 4

#: How many characters of subtree text a fingerprint keeps.
_SUBTREE_HEAD = 80


@dataclass(frozen=True)
class Fingerprint:
    """A drift-tolerant summary of one DOM node.

    Captures the coordinates that tend to survive page changes —
    attributes, text, local ancestry — rather than the absolute path,
    which is exactly what drift invalidates.
    """

    tag: str
    attrs: tuple[tuple[str, str], ...]
    text: str
    parent_tag: Optional[str]
    ancestor_tags: tuple[str, ...]
    child_tags: tuple[str, ...]
    sibling_index: int
    subtree_text: str


def fingerprint_node(node: DOMNode) -> Fingerprint:
    """Summarise ``node`` for later re-identification on a changed page."""
    ancestors = []
    for ancestor in node.ancestors():
        ancestors.append(ancestor.tag)
        if len(ancestors) == _ANCESTRY_DEPTH:
            break
    return Fingerprint(
        tag=node.tag,
        attrs=tuple(sorted(node.attrs.items())),
        text=node.text,
        parent_tag=node.parent.tag if node.parent is not None else None,
        ancestor_tags=tuple(ancestors),
        child_tags=tuple(sorted(child.tag for child in node.children)),
        sibling_index=node.child_index_by_tag(),
        subtree_text=node.text_content()[:_SUBTREE_HEAD],
    )


# ----------------------------------------------------------------------
# Similarity
# ----------------------------------------------------------------------
def _jaccard(left: frozenset, right: frozenset) -> float:
    """Set overlap in [0, 1]; two empty sets count as identical."""
    if not left and not right:
        return 1.0
    return len(left & right) / len(left | right)


def _token_sim(left: str, right: str) -> float:
    """Whitespace-token overlap of two strings."""
    return _jaccard(frozenset(left.split()), frozenset(right.split()))


def _ancestry_sim(expected: tuple[str, ...], node: DOMNode) -> float:
    """Fraction of the expected ancestor-tag chain the node matches."""
    if not expected:
        return 1.0
    actual = []
    for ancestor in node.ancestors():
        actual.append(ancestor.tag)
        if len(actual) == len(expected):
            break
    matches = sum(1 for exp, act in zip(expected, actual) if exp == act)
    return matches / len(expected)


def similarity(fingerprint: Fingerprint, node: DOMNode) -> float:
    """Score in [0, 1]: how much ``node`` looks like the fingerprinted one.

    Nodes with a different tag score 0 outright — repair never
    substitutes, say, a div for a button.
    """
    if node.tag != fingerprint.tag:
        return 0.0
    score = _W_ATTRS * _jaccard(
        frozenset(fingerprint.attrs), frozenset(node.attrs.items())
    )
    score += _W_TEXT * _token_sim(fingerprint.text, node.text)
    parent_tag = node.parent.tag if node.parent is not None else None
    if fingerprint.parent_tag == parent_tag:
        score += _W_PARENT
    score += _W_ANCESTRY * _ancestry_sim(fingerprint.ancestor_tags, node)
    score += _W_CHILDREN * _jaccard(
        frozenset(fingerprint.child_tags),
        frozenset(child.tag for child in node.children),
    )
    score += _W_SIBLING / (1 + abs(fingerprint.sibling_index - node.child_index_by_tag()))
    score += _W_SUBTREE * _token_sim(
        fingerprint.subtree_text, node.text_content()[:_SUBTREE_HEAD]
    )
    return score


def best_match(
    fingerprint: Fingerprint, dom: DOMNode, min_score: float = 0.6
) -> Optional[tuple[DOMNode, float]]:
    """The most similar node on ``dom``, or None below ``min_score``.

    Ties break toward document order (the first of equally-good nodes),
    keeping repair deterministic.
    """
    best: Optional[DOMNode] = None
    best_score = min_score
    for candidate in dom.iter_subtree():
        score = similarity(fingerprint, candidate)
        if score > best_score:
            best, best_score = candidate, score
    if best is None:
        return None
    return best, best_score


# ----------------------------------------------------------------------
# One-shot repair
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Repair:
    """A successful selector substitution."""

    original: ConcreteSelector
    replacement: ConcreteSelector
    score: float
    fingerprint: Fingerprint


def repair_selector(
    selector: ConcreteSelector,
    reference_dom: DOMNode,
    live_dom: DOMNode,
    min_score: float = 0.6,
) -> Optional[Repair]:
    """Re-anchor ``selector`` from a reference page onto a drifted one.

    Resolves the selector on ``reference_dom`` (recovering the intended
    node), fingerprints it, and returns the raw path of the most similar
    node on ``live_dom``.  Returns None when the selector does not
    resolve on the reference or no live node clears ``min_score``.
    """
    intended = resolve(selector, reference_dom)
    if intended is None:
        return None
    fingerprint = fingerprint_node(intended)
    match = best_match(fingerprint, live_dom, min_score)
    if match is None:
        return None
    node, score = match
    return Repair(selector, raw_path(node), score, fingerprint)


# ----------------------------------------------------------------------
# Shadow replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairEvent:
    """One audited substitution made during a repairing replay.

    ``reason`` is ``"missing"`` when the original selector did not
    resolve (or its action failed) on the live page, ``"verified"`` when
    paranoid verification re-targeted a resolving-but-wrong selector.
    """

    kind: str
    original: ConcreteSelector
    replacement: ConcreteSelector
    score: float
    reason: str


class RepairingReplayer(Replayer):
    """A replayer that survives page drift by consulting a reference.

    Parameters
    ----------
    browser:
        The live (possibly drifted) browser the program runs against.
    reference:
        A browser over the site as demonstrated.  It is mirrored in
        lockstep and consulted for intended nodes; once it can no longer
        follow (its page lacks a node the live run uses), repair
        degrades gracefully to plain replay.
    min_score:
        Similarity floor below which a substitution is refused.
    verify:
        When True, *every* resolving selector is checked against the
        reference fingerprint and re-targeted if a clearly more similar
        node exists — catching silent wrong-node drift, at the cost of a
        page scan per action.
    verify_margin:
        How much better the alternative must score before verification
        overrides a selector that does resolve.
    """

    def __init__(
        self,
        browser: Browser,
        reference: Browser,
        min_score: float = 0.6,
        verify: bool = False,
        verify_margin: float = 0.05,
        max_actions: int = 500,
        raise_errors: bool = True,
    ) -> None:
        super().__init__(browser, max_actions=max_actions, raise_errors=raise_errors)
        self.reference = reference
        self.min_score = min_score
        self.verify = verify
        self.verify_margin = verify_margin
        #: Substitutions made, in action order.
        self.events: list[RepairEvent] = []
        self._synced = True

    @property
    def synced(self) -> bool:
        """Whether the reference browser is still following the live run."""
        return self._synced

    # ------------------------------------------------------------------
    def _perform(self, action: Action) -> None:
        reference_node = self._reference_node(action)
        live_action = action
        if reference_node is not None and self.verify:
            live_action = self._verified(action, reference_node)
        try:
            super()._perform(live_action)
        except _Stop:
            raise
        except ReplayError:
            repaired = self._repaired(action, reference_node)
            if repaired is None:
                raise
            super()._perform(repaired)
        self._mirror(action, reference_node)

    # ------------------------------------------------------------------
    def _reference_node(self, action: Action) -> Optional[DOMNode]:
        """The node the action intends, per the reference page."""
        if not self._synced or action.selector is None:
            return None
        node = resolve(action.selector, self.reference.dom)
        if node is None:
            # The live run is doing something the demonstrated site
            # cannot express (e.g. iterating items the reference page
            # does not have); stop mirroring rather than guess.
            self._synced = False
        return node

    def _verified(self, action: Action, reference_node: DOMNode) -> Action:
        """Re-target a resolving selector that looks wrong (verify mode)."""
        live_node = resolve(action.selector, self.browser.dom)
        if live_node is None:
            return action  # the missing-selector path will handle it
        fingerprint = fingerprint_node(reference_node)
        resolved_score = similarity(fingerprint, live_node)
        match = best_match(fingerprint, self.browser.dom, self.min_score)
        if match is None:
            return action
        node, score = match
        if node is live_node or score < resolved_score + self.verify_margin:
            return action
        replacement = raw_path(node)
        self.events.append(
            RepairEvent(action.kind, action.selector, replacement, score, "verified")
        )
        return Action(action.kind, replacement, action.text, action.path)

    def _repaired(self, action: Action, reference_node: Optional[DOMNode]) -> Optional[Action]:
        """A substitute action for one that failed on the live page."""
        if reference_node is None or action.selector is None:
            return None
        fingerprint = fingerprint_node(reference_node)
        match = best_match(fingerprint, self.browser.dom, self.min_score)
        if match is None:
            return None
        node, score = match
        replacement = raw_path(node)
        self.events.append(
            RepairEvent(action.kind, action.selector, replacement, score, "missing")
        )
        return Action(action.kind, replacement, action.text, action.path)

    def _mirror(self, action: Action, reference_node: Optional[DOMNode]) -> None:
        """Replay the intended action on the reference browser."""
        if not self._synced:
            return
        if action.selector is not None and reference_node is None:
            return
        mirrored = (
            action
            if reference_node is None
            else Action(action.kind, raw_path(reference_node), action.text, action.path)
        )
        try:
            self.reference.perform(mirrored)
        except (ReplayError, DataPathError):
            # the reference cannot follow (missing node, rejected input,
            # or a reference browser constructed without the data
            # source); degrade to plain replay rather than fail the run
            self._synced = False
