"""The virtual browser: this repo's replacement for Selenium + live sites.

A :class:`VirtualWebsite` is a deterministic state machine: an opaque
hashable *state* renders to a DOM snapshot; clicking a node or typing into
a field transitions the state.  A :class:`Browser` drives one site,
applying actions with real side effects (page transitions, scraped
outputs, history) and *recording* what the paper's front end records:
actions with absolute raw XPaths plus the snapshot each action executed
on.

The synthesizer never sees a site — only recorded traces — so the fidelity
requirement on sites is structural: nested repetition, pagination, data
entry and navigation must produce the same trace shapes real sites do.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable, Optional

from repro.dom.node import DOMNode
from repro.dom.xpath import raw_path, resolve
from repro.lang.actions import Action
from repro.lang.ast import (
    CLICK,
    DOWNLOAD,
    ENTER_DATA,
    EXTRACT_URL,
    GO_BACK,
    SCRAPE_LINK,
    SCRAPE_TEXT,
    SEND_KEYS,
)
from repro.lang.data import DataSource, EMPTY_DATA, as_text
from repro.util.errors import ReplayError

State = Hashable


class VirtualWebsite(ABC):
    """A deterministic website model.

    Subclasses implement rendering and transitions.  States must be
    hashable: rendering is memoised so that revisiting a state yields the
    *same* snapshot object, which keeps recorded DOM traces compact and
    selector-resolution caches warm.
    """

    def __init__(self) -> None:
        self._render_cache: dict[State, DOMNode] = {}

    # ------------------------------------------------------------------
    # Site interface
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_state(self) -> State:
        """The state the browser starts in."""

    @abstractmethod
    def render(self, state: State) -> DOMNode:
        """Build the (frozen) DOM for ``state``.  Called through the memo."""

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        """State after clicking ``node``; ``None`` means the click is inert."""
        return None

    def on_input(
        self, state: State, node: DOMNode, dom: DOMNode, text: str
    ) -> Optional[State]:
        """State after typing ``text`` into ``node``; ``None`` = rejected."""
        return None

    def url(self, state: State) -> str:
        """The address-bar URL for ``state``."""
        return f"virtual://{type(self).__name__}"

    # ------------------------------------------------------------------
    def page(self, state: State) -> DOMNode:
        """Memoised rendering; the snapshot for a state is unique."""
        snapshot = self._render_cache.get(state)
        if snapshot is None:
            snapshot = self.render(state)
            if not snapshot.frozen:
                raise ReplayError(f"{type(self).__name__}.render returned unfrozen DOM")
            self._render_cache[state] = snapshot
        return snapshot


class Browser:
    """A single-tab browser over a virtual website.

    Performs actions with their real side effects and records the trace
    the synthesizer consumes.  Recorded actions are *normalised*: whatever
    selector the caller used, the recording stores the node's absolute raw
    XPath, exactly as the paper's front end does (§7.1).
    """

    def __init__(self, site: VirtualWebsite, data: DataSource = EMPTY_DATA) -> None:
        self.site = site
        self.data = data
        self._state: State = site.initial_state()
        self._history: list[State] = []
        #: Values collected by ScrapeText / ScrapeLink, in action order.
        self.outputs: list[str] = []
        #: URLs collected by Download actions.
        self.downloads: list[str] = []
        #: URLs collected by ExtractURL actions.
        self.urls: list[str] = []
        #: The recorded action trace (raw-XPath normalised).
        self.recorded_actions: list[Action] = []
        #: ``recorded_snapshots[i]`` is the DOM ``recorded_actions[i]`` ran on.
        self.recorded_snapshots: list[DOMNode] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> State:
        """The current page state."""
        return self._state

    @property
    def dom(self) -> DOMNode:
        """The current DOM snapshot."""
        return self.site.page(self._state)

    def current_url(self) -> str:
        """The current URL."""
        return self.site.url(self._state)

    def trace(self) -> tuple[list[Action], list[DOMNode]]:
        """The recorded demonstration: actions plus m+1 snapshots."""
        return list(self.recorded_actions), [*self.recorded_snapshots, self.dom]

    # ------------------------------------------------------------------
    def perform(self, action: Action) -> None:
        """Apply one action with side effects, recording it.

        Raises
        ------
        ReplayError
            If the action's selector does not resolve, typing hits a
            non-input node, or GoBack has no history.
        """
        dom = self.dom
        node: Optional[DOMNode] = None
        if action.selector is not None:
            node = resolve(action.selector, dom)
            if node is None:
                raise ReplayError(f"selector {action.selector} not found on page")
        normalized = Action(
            action.kind,
            raw_path(node) if node is not None else None,
            action.text,
            action.path,
        )
        # Apply before recording: an action that fails mid-application
        # (typing into a non-input, GoBack without history) leaves no
        # trace entry, so callers may retry with a different selector.
        self._apply(normalized, node, dom)
        self.recorded_actions.append(normalized)
        self.recorded_snapshots.append(dom)

    def _apply(self, action: Action, node: Optional[DOMNode], dom: DOMNode) -> None:
        kind = action.kind
        if kind == CLICK:
            next_state = self.site.on_click(self._state, node, dom)
            if next_state is not None and next_state != self._state:
                self._history.append(self._state)
                self._state = next_state
        elif kind == SCRAPE_TEXT:
            self.outputs.append(node.text_content())
        elif kind == SCRAPE_LINK:
            self.outputs.append(node.get("href"))
        elif kind == DOWNLOAD:
            self.downloads.append(node.get("href") or node.text_content())
        elif kind == GO_BACK:
            if not self._history:
                raise ReplayError("GoBack with empty history")
            self._state = self._history.pop()
        elif kind == EXTRACT_URL:
            self.urls.append(self.current_url())
        elif kind in (SEND_KEYS, ENTER_DATA):
            if kind == SEND_KEYS:
                text = action.text or ""
            else:
                text = as_text(self.data.resolve(action.path))
            next_state = self.site.on_input(self._state, node, dom, text)
            if next_state is None:
                raise ReplayError(f"node {action.selector} does not accept input")
            if next_state != self._state:
                # typing edits the page in place: not a navigation, so it
                # does not push history
                self._state = next_state
        else:  # pragma: no cover - exhaustive over ACTION_KINDS
            raise ReplayError(f"unsupported action kind {kind}")
