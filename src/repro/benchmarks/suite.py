"""The 76-benchmark suite (§7 "Benchmarks").

The paper's corpus comes from the iMacros forum; ours is synthetic but
mirrors its *structural statistics* exactly:

* 76 benchmarks, all involving data extraction;
* 29 involve data entry, 60 webpage navigation, 33 pagination;
* 28 involve entry + extraction + navigation simultaneously;
* known-unsupported cases are included: ``b6`` needs a disjunctive
  selector predicate (the paper's match/match-highlight case) and
  ``b9``/``b10`` paginate through numbered page buttons (the paper's
  timesjobs case);
* ``b12``, ``b15``, ``b20``, ``b48``, ``b56``, ``b73``–``b76`` are the
  selector-loop-only benchmarks used for the egg-baseline comparison
  (Table 2), with ``b12`` doubly-nested and ``b56`` three-level.

Every benchmark carries a fresh-site factory, an input data source, a
ground truth (a DSL program, or a scripted demonstration when the task is
not expressible in the DSL), feature tags, and a supported flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.browser.recorder import Recording, record_ground_truth
from repro.browser.virtual import Browser, VirtualWebsite
from repro.dom.xpath import parse_selector
from repro.lang.actions import click, go_back, scrape_text
from repro.lang.ast import Program
from repro.lang.data import DataSource, EMPTY_DATA
from repro.lang.parser import parse_program

from repro.benchmarks.sites.calculator import CalculatorSite
from repro.benchmarks.sites.forum import ForumSite
from repro.benchmarks.sites.job_board import JobBoardSite
from repro.benchmarks.sites.match_list import MatchListSite
from repro.benchmarks.sites.news_list import NewsListSite
from repro.benchmarks.sites.plain_lists import (
    NestedListSite,
    PlainListSite,
    TripleListSite,
)
from repro.benchmarks.sites.product_catalog import ProductCatalogSite
from repro.benchmarks.sites.search_directory import SearchDirectorySite
from repro.benchmarks.sites.sectioned_catalog import SectionedCatalogSite
from repro.benchmarks.sites.store_locator import StoreLocatorSite
from repro.benchmarks.sites.unicorn_namer import UnicornNamerSite
from repro.benchmarks.sites.wiki_table import WikiTableSite

# Feature tags (the paper's benchmark statistics).
EXTRACTION = "extraction"
ENTRY = "entry"
NAVIGATION = "navigation"
PAGINATION = "pagination"


class ScriptedDemo:
    """A ground truth not expressible in the DSL (performed "by hand").

    Subclasses perform actions directly on a browser — the analogue of
    the paper's Selenium ground truths for tasks beyond the DSL.
    """

    def run(self, browser: Browser) -> None:
        raise NotImplementedError


@dataclass
class Benchmark:
    """One suite entry.

    ``make_scaled`` builds a *larger* instance of the same site (more
    pages, rows, items).  The intended-program check replays synthesized
    programs on it: a general program keeps working, while a program
    hard-coded to the demonstrated instance (e.g. one selector loop per
    page) stops matching — the automated stand-in for the paper's manual
    "is this the intended program" judgment.
    """

    bid: str
    title: str
    family: str
    make_site: Callable[[], VirtualWebsite]
    data: DataSource
    ground_truth: Union[Program, ScriptedDemo]
    features: frozenset
    expected_supported: bool = True
    notes: str = ""
    make_scaled: Optional[Callable[[], VirtualWebsite]] = None
    _recording: Optional[Recording] = field(default=None, repr=False)
    _scaled_recording: Optional[Recording] = field(default=None, repr=False)

    def record(self, max_actions: int = 500) -> Recording:
        """The instrumented ground-truth traces (cached, §7.1)."""
        if self._recording is None or self._recording.length > max_actions:
            self._recording = self._record(self.make_site, max_actions)
        return self._recording

    def _record(self, site_factory: Callable[[], VirtualWebsite], max_actions: int) -> Recording:
        if isinstance(self.ground_truth, Program):
            return record_ground_truth(
                site_factory(), self.ground_truth, self.data, max_actions
            )
        browser = Browser(site_factory(), self.data)
        self.ground_truth.run(browser)
        actions, snapshots = browser.trace()
        truncated = False
        if len(actions) > max_actions:
            actions = actions[:max_actions]
            snapshots = snapshots[: max_actions + 1]
            truncated = True
        return Recording(actions, snapshots, list(browser.outputs), truncated)

    def fresh_browser(self) -> Browser:
        """A new browser on a fresh site instance (for end-to-end runs)."""
        return Browser(self.make_site(), self.data)

    def scaled_recording(self, max_actions: int = 500) -> Optional[Recording]:
        """Ground-truth recording on the scaled-up site (cached)."""
        if self.make_scaled is None:
            return None
        if self._scaled_recording is None:
            self._scaled_recording = self._record(self.make_scaled, max_actions)
        return self._scaled_recording

    def fresh_scaled_browser(self) -> Optional[Browser]:
        """A browser on a fresh scaled-up site instance."""
        if self.make_scaled is None:
            return None
        return Browser(self.make_scaled(), self.data)


# ----------------------------------------------------------------------
# Scripted demonstrations for the unsupported benchmarks
# ----------------------------------------------------------------------
class NumberedPagerDemo(ScriptedDemo):
    """Scrape a numbered-pagination job board (the paper's b9 shape).

    After each page the demonstrator clicks the *page-number* button of
    the next page — a different button every time, so no click-terminated
    while loop describes the task.
    """

    def __init__(self, fields: tuple[str, ...]) -> None:
        self.fields = fields

    _FIELD_SELECTORS = {
        "title": "/h2[1]",
        "company": "//h3[@class='joblist-comp-name'][1]",
        "experience": "//li[@class='experience'][1]",
    }

    def run(self, browser: Browser) -> None:
        site = browser.site
        assert isinstance(site, JobBoardSite)
        for page_no in range(1, site.pages + 1):
            for position in range(1, site.jobs_per_page + 1):
                for field_name in self.fields:
                    suffix = self._FIELD_SELECTORS[field_name]
                    browser.perform(scrape_text(parse_selector(
                        f"//li[@class='job-bx'][{position}]{suffix}")))
            if page_no < site.pages:
                next_page = page_no + 1
                same_block = (page_no - 1) // site.PAGE_BLOCK == (next_page - 1) // site.PAGE_BLOCK
                if same_block:
                    browser.perform(click(parse_selector(
                        f"//button[@data-page='{next_page}'][1]")))
                else:
                    browser.perform(click(parse_selector(
                        "//button[@class='nextBlock'][1]")))


class MatchDetailDemo(ScriptedDemo):
    """Open every *match* row (skipping interleaved ads) and scrape it.

    Match rows carry class ``match`` or ``match highlight`` — selecting
    exactly these needs a disjunctive predicate the DSL lacks (the
    paper's b6).
    """

    def run(self, browser: Browser) -> None:
        site = browser.site
        assert isinstance(site, MatchListSite)
        for position in range(1, site.matches + 1):
            browser.perform(click(parse_selector(f"//div[@data-pos='{position}'][1]")))
            browser.perform(scrape_text(parse_selector("//span[@class='score'][1]")))
            browser.perform(scrape_text(parse_selector("//span[@class='star'][1]")))
            browser.perform(go_back())


# ----------------------------------------------------------------------
# Ground-truth program templates
# ----------------------------------------------------------------------
_STORE_FIELD_LINES = {
    "name": "ScrapeText(r//h3[1])",
    "address": "ScrapeText(r//div[@class='locatorAddress'][1])",
    "phone": "ScrapeText(r//div[@class='locatorPhone'][1])",
}

_NEWS_FIELD_LINES = {
    "title": "ScrapeText(s//a[1])",
    "href": "ScrapeLink(s//a[1])",
    "author": "ScrapeText(s//span[@class='author'][1])",
    "date": "ScrapeText(s//span[@class='date'][1])",
}

_FORUM_FIELD_LINES = {
    "title": "ScrapeText(t//a[@class='topictitle'][1])",
    "href": "ScrapeLink(t//a[@class='topictitle'][1])",
    "author": "ScrapeText(t//span[@class='poster'][1])",
    "replies": "ScrapeText(t//span[@class='posts'][1])",
}

_JOB_FIELD_LINES = {
    "title": "ScrapeText(j/h2[1])",
    "company": "ScrapeText(j//h3[@class='joblist-comp-name'][1])",
    "experience": "ScrapeText(j//li[@class='experience'][1])",
}

_CATALOG_FIELD_LINES = {
    "price": "ScrapeText(//span[@class='price'][1])",
    "stock": "ScrapeText(//span[@class='stock'][1])",
    "sku": "ScrapeText(//span[@class='sku'][1])",
}

_WIKI_FIELD_LINES = {
    "name": "ScrapeText(w//td[@class='name'][1])",
    "capital": "ScrapeText(w//td[@class='capital'][1])",
    "population": "ScrapeText(w//td[@class='population'][1])",
}

_SEARCH_FIELD_LINES = {
    "name": "ScrapeText(h/h3[1])",
    "street": "ScrapeText(h//span[@class='street'][1])",
    "rating": "ScrapeText(h//span[@class='rating'][1])",
}

_SECTIONED_FIELD_LINES = {
    "what": "ScrapeText(e//span[@class='what'][1])",
    "when": "ScrapeText(e//span[@class='when'][1])",
}


def _indent(lines: list[str], depth: int) -> str:
    pad = "  " * depth
    return "\n".join(pad + line for line in lines)


def _store_gt(fields: tuple[str, ...], entry_path: str, entry_accessor: str = "") -> Program:
    scrapes = _indent([_STORE_FIELD_LINES[f] for f in fields], 3)
    return parse_program(f"""
foreach z in ValuePaths(x["{entry_path}"]) do
  EnterData(//input[@name='search'][1], z{entry_accessor})
  Click(//button[@class='squareButton btnDoSearch'][1])
  while true do
    foreach r in Dscts(/, div[@class='rightContainer']) do
{scrapes}
    Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


def _store_fixed_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_STORE_FIELD_LINES[f] for f in fields], 2)
    return parse_program(f"""
while true do
  foreach r in Dscts(/, div[@class='rightContainer']) do
{scrapes}
  Click(//button[@class='sprite-next-page-arrow'][1]/span[1])
""")


def _news_static_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_NEWS_FIELD_LINES[f] for f in fields], 1)
    return parse_program(f"""
foreach s in Dscts(/, div[@class='story']) do
{scrapes}
""")


def _news_click_gt() -> Program:
    return parse_program("""
foreach s in Dscts(/, div[@class='story']) do
  Click(s//a[1])
  ScrapeText(//div[@class='articleBody'][1])
  GoBack
""")


def _wiki_gt(fields: tuple[str, ...], header: bool) -> Program:
    pred = "tr[@class='data']" if header else "tr"
    scrapes = _indent([_WIKI_FIELD_LINES[f] for f in fields], 1)
    return parse_program(f"""
foreach w in Dscts(/, {pred}) do
{scrapes}
""")


def _forum_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_FORUM_FIELD_LINES[f] for f in fields], 2)
    return parse_program(f"""
while true do
  foreach t in Dscts(/, li[@class='row']) do
{scrapes}
  Click(//a[@class='olderLink'][1])
""")


def _job_next_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_JOB_FIELD_LINES[f] for f in fields], 2)
    return parse_program(f"""
while true do
  foreach j in Dscts(/, li[@class='job-bx']) do
{scrapes}
  Click(//a[@class='nextLink'][1])
""")


def _catalog_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_CATALOG_FIELD_LINES[f] for f in fields], 1)
    return parse_program(f"""
foreach p in Dscts(/, li[@class='product']) do
  Click(p/a[1])
{scrapes}
  GoBack
""")


def _sectioned_gt(fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_SECTIONED_FIELD_LINES[f] for f in fields], 3)
    return parse_program(f"""
while true do
  foreach v in Dscts(/, div[@class='venue']) do
    foreach e in Dscts(v, li[@class='event']) do
{scrapes}
  Click(//a[@class='moreLink'][1])
""")


def _unicorn_gt(key: str, accessor: str = "") -> Program:
    return parse_program(f"""
foreach c in ValuePaths(x["{key}"]) do
  EnterData(//input[@name='customer'][1], c{accessor})
  Click(//button[@class='generate'][1])
  ScrapeText(//div[@class='unicornName'][1])
""")


def _search_gt(key: str, fields: tuple[str, ...]) -> Program:
    scrapes = _indent([_SEARCH_FIELD_LINES[f] for f in fields], 2)
    return parse_program(f"""
foreach k in ValuePaths(x["{key}"]) do
  EnterData(//input[@name='q'][1], k)
  Click(//button[@class='doSearch'][1])
  foreach h in Dscts(/, div[@class='hit']) do
{scrapes}
""")


_CALCULATOR_GT = """
foreach v in ValuePaths(x["miles"]) do
  EnterData(//input[@name='miles'][1], v)
  Click(//button[@class='convert'][1])
  ScrapeText(//div[@class='converted'][1])
"""

_PLAIN_SINGLE_GT_2 = """
foreach i in Children(/html[1]/body[1]/ul[1], li) do
  ScrapeText(i/span[1])
  ScrapeText(i/b[1])
"""

_PLAIN_SINGLE_GT_1 = """
foreach i in Children(/html[1]/body[1]/ul[1], li) do
  ScrapeText(i/span[1])
"""

_PLAIN_NESTED_GT = """
foreach g in Children(/html[1]/body[1], div) do
  foreach i in Children(g/ul[1], li) do
    ScrapeText(i)
"""

_PLAIN_TRIPLE_GT = """
foreach b in Children(/html[1]/body[1], div) do
  foreach g in Children(b, ul) do
    foreach i in Children(g, li) do
      ScrapeText(i)
"""


# ----------------------------------------------------------------------
# Data sources
# ----------------------------------------------------------------------
def _zips(count: int, start: int = 0) -> list[str]:
    return [f"48{(start + i) % 1000:03d}" for i in range(count)]

_FIRST = ["ada", "bob", "cyd", "dee", "eli", "fay", "gus", "hal", "ivy", "joy"]
_LAST = ["stone", "reyes", "okoye", "lam", "fox", "dorn", "pike", "voss"]


def _customers(count: int) -> list[str]:
    return [f"{_FIRST[i % 10]} {_LAST[(i * 7) % 8]}" for i in range(count)]


def _keywords(count: int) -> list[str]:
    base = ["coffee", "books", "yoga", "vinyl", "ramen", "plants", "cheese",
            "bikes", "maps", "kites"]
    return [f"{base[i % 10]}{'' if i < 10 else i // 10}" for i in range(count)]


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_EXT = frozenset({EXTRACTION})
_EXT_NAV = frozenset({EXTRACTION, NAVIGATION})
_EXT_NAV_PAGE = frozenset({EXTRACTION, NAVIGATION, PAGINATION})
_ENTRY_FULL = frozenset({EXTRACTION, ENTRY, NAVIGATION})
_ENTRY_PAGE = frozenset({EXTRACTION, ENTRY, NAVIGATION, PAGINATION})
_ENTRY_ONLY = frozenset({EXTRACTION, ENTRY})

_suite_cache: Optional[list[Benchmark]] = None


def all_benchmarks() -> list[Benchmark]:
    """The full suite in id order (built once, cached)."""
    global _suite_cache
    if _suite_cache is None:
        _suite_cache = _build_suite()
    return _suite_cache


def benchmark_by_id(bid: str) -> Benchmark:
    """Look one benchmark up by id (``"b1"`` .. ``"b76"``)."""
    for benchmark in all_benchmarks():
        if benchmark.bid == bid:
            return benchmark
    raise KeyError(bid)


def _build_suite() -> list[Benchmark]:
    entries: list[Benchmark] = []

    def add(bid, title, family, make_site, data, gt, features, supported=True,
            notes="", scaled=None):
        entries.append(Benchmark(
            bid=bid, title=title, family=family, make_site=make_site,
            data=data, ground_truth=gt, features=features,
            expected_supported=supported, notes=notes, make_scaled=scaled,
        ))

    # --- news (6): b1, b2, b4, b5 click-through; b3, b13 static ---------
    add("b1", "news click-through (ads, 9 stories)", "news",
        lambda: NewsListSite(9, seed="n1", noisy=True), EMPTY_DATA,
        _news_click_gt(), _EXT_NAV,
        scaled=lambda: NewsListSite(14, seed="n1", noisy=True))
    add("b2", "news click-through (ads, 12 stories)", "news",
        lambda: NewsListSite(12, seed="n2", noisy=True), EMPTY_DATA,
        _news_click_gt(), _EXT_NAV,
        scaled=lambda: NewsListSite(17, seed="n2", noisy=True))
    add("b3", "news headlines+bylines (ads)", "news",
        lambda: NewsListSite(12, seed="n3", noisy=True), EMPTY_DATA,
        _news_static_gt(("title", "author", "date")), _EXT,
        scaled=lambda: NewsListSite(18, seed="n3", noisy=True))
    add("b4", "news click-through (clean, 8 stories)", "news",
        lambda: NewsListSite(8, seed="n4"), EMPTY_DATA,
        _news_click_gt(), _EXT_NAV,
        scaled=lambda: NewsListSite(13, seed="n4"))
    add("b5", "news click-through (clean, 14 stories)", "news",
        lambda: NewsListSite(14, seed="n5"), EMPTY_DATA,
        _news_click_gt(), _EXT_NAV,
        scaled=lambda: NewsListSite(19, seed="n5"))

    # --- b6: disjunctive selectors (unsupported) ------------------------
    add("b6", "match fixtures with highlights", "match",
        lambda: MatchListSite(8, seed="m6"), EMPTY_DATA,
        MatchDetailDemo(), _EXT_NAV, supported=False,
        notes="needs match OR match-highlight predicate (paper b6)",
        scaled=lambda: MatchListSite(13, seed="m6"))

    # --- wiki tables (4): b7, b8, b11, b14 ------------------------------
    add("b7", "tiny headerless table", "wiki",
        lambda: WikiTableSite(4, seed="w7", header=False), EMPTY_DATA,
        _wiki_gt(("name", "capital"), header=False), _EXT,
        scaled=lambda: WikiTableSite(9, seed="w7", header=False),
        notes="short trace: intended program found after most of it (paper b7)")
    add("b8", "headerless table", "wiki",
        lambda: WikiTableSite(8, seed="w8", header=False), EMPTY_DATA,
        _wiki_gt(("name", "capital", "population"), header=False), _EXT,
        scaled=lambda: WikiTableSite(13, seed="w8", header=False))
    add("b11", "headed table (3 columns)", "wiki",
        lambda: WikiTableSite(10, seed="w11"), EMPTY_DATA,
        _wiki_gt(("name", "capital", "population"), header=True), _EXT,
        scaled=lambda: WikiTableSite(15, seed="w11"))
    add("b14", "headed table (2 columns)", "wiki",
        lambda: WikiTableSite(7, seed="w14"), EMPTY_DATA,
        _wiki_gt(("name", "population"), header=True), _EXT,
        scaled=lambda: WikiTableSite(12, seed="w14"))

    # --- b9, b10: numbered pagination (unsupported) ---------------------
    add("b9", "jobs with numbered pager", "job-numbered",
        lambda: JobBoardSite(4, 5, mode="numbered", seed="j9"), EMPTY_DATA,
        NumberedPagerDemo(("title", "company")), _EXT_NAV_PAGE, supported=False,
        notes="page-number pagination (paper b9)",
        scaled=lambda: JobBoardSite(7, 5, mode="numbered", seed="j9"))
    add("b10", "jobs with numbered pager (wide)", "job-numbered",
        lambda: JobBoardSite(5, 4, mode="numbered", seed="j10"), EMPTY_DATA,
        NumberedPagerDemo(("title", "company", "experience")), _EXT_NAV_PAGE,
        supported=False, notes="page-number pagination (paper b9)",
        scaled=lambda: JobBoardSite(8, 4, mode="numbered", seed="j10"))

    # --- plain nested lists (Q4 set) ------------------------------------
    add("b12", "nested lists (4x6)", "plain",
        lambda: NestedListSite(4, 6, seed="p12"), EMPTY_DATA,
        parse_program(_PLAIN_NESTED_GT), _EXT,
        scaled=lambda: NestedListSite(6, 7, seed="p12"))
    add("b13", "news headlines+links (clean)", "news",
        lambda: NewsListSite(10, seed="n13"), EMPTY_DATA,
        _news_static_gt(("title", "href")), _EXT,
        scaled=lambda: NewsListSite(16, seed="n13"))
    add("b15", "nested lists (3x5)", "plain",
        lambda: NestedListSite(3, 5, seed="p15"), EMPTY_DATA,
        parse_program(_PLAIN_NESTED_GT), _EXT,
        scaled=lambda: NestedListSite(5, 6, seed="p15"))

    # --- forum (6): b16-b19, b47, b49 ------------------------------------
    add("b16", "forum titles+authors (pinned)", "forum",
        lambda: ForumSite(3, 6, seed="f16", pinned=True), EMPTY_DATA,
        _forum_gt(("title", "author")), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(5, 8, seed="f16", pinned=True))
    add("b17", "forum full rows (pinned)", "forum",
        lambda: ForumSite(3, 5, seed="f17", pinned=True), EMPTY_DATA,
        _forum_gt(("title", "author", "replies")), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(5, 7, seed="f17", pinned=True))
    add("b18", "forum titles+links", "forum",
        lambda: ForumSite(4, 5, seed="f18"), EMPTY_DATA,
        _forum_gt(("title", "href")), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(6, 7, seed="f18"))
    add("b19", "forum reply counts", "forum",
        lambda: ForumSite(3, 7, seed="f19"), EMPTY_DATA,
        _forum_gt(("title", "replies")), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(5, 9, seed="f19"))

    add("b20", "nested lists (5x4)", "plain",
        lambda: NestedListSite(5, 4, seed="p20"), EMPTY_DATA,
        parse_program(_PLAIN_NESTED_GT), _EXT,
        scaled=lambda: NestedListSite(7, 5, seed="p20"))

    # --- store locator with data entry (12): b21-b32 --------------------
    store_variants = [
        ("b21", ("name", "phone"), 3, 4, "zips", 100, ""),
        ("b22", ("name", "address"), 3, 4, "zips", 100, ""),
        ("b23", ("name", "address", "phone"), 2, 5, "zips", 100, ""),
        ("b24", ("phone",), 4, 3, "zips", 100, ""),
        ("b25", ("name",), 3, 6, "zips", 100, ""),
        ("b26", ("name", "phone"), 2, 8, "zipcodes", 100, ""),
        ("b27", ("address", "phone"), 3, 5, "zipcodes", 100, ""),
        ("b28", ("name", "address"), 4, 4, "zipcodes", 100, ""),
        ("b29", ("name", "phone"), 3, 3, "rows", 100, '["zip"]'),
        ("b30", ("name",), 2, 10, "rows", 100, '["zip"]'),
        ("b31", ("address",), 3, 7, "rows", 100, '["zip"]'),
        ("b32", ("name", "address", "phone"), 2, 4, "rows", 100, '["zip"]'),
    ]
    for bid, fields, pages, stores, key, count, accessor in store_variants:
        if key == "rows":
            data = DataSource({"rows": [{"zip": z} for z in _zips(count, start=int(bid[1:]))]})
        else:
            data = DataSource({key: _zips(count, start=int(bid[1:]))})
        add(bid, f"store locator {'+'.join(fields)} over {key}", "store-entry",
            (lambda p=pages, s=stores: StoreLocatorSite(p, s)), data,
            _store_gt(fields, key, accessor), _ENTRY_PAGE,
            scaled=(lambda p=pages, s=stores: StoreLocatorSite(p + 1, s + 2)))

    # --- store locator, fixed zip (4): b33-b36 ---------------------------
    fixed_variants = [
        ("b33", ("name", "phone"), 4, 5, "48104"),
        ("b34", ("name", "address"), 3, 6, "48185"),
        ("b35", ("address", "phone"), 5, 4, "48220"),
        ("b36", ("name",), 4, 8, "48033"),
    ]
    for bid, fields, pages, stores, zip_code in fixed_variants:
        add(bid, f"store results {'+'.join(fields)} (fixed zip)", "store-fixed",
            (lambda p=pages, s=stores, z=zip_code: StoreLocatorSite(p, s, fixed_zip=z)),
            EMPTY_DATA, _store_fixed_gt(fields), _EXT_NAV_PAGE,
            scaled=(lambda p=pages, s=stores, z=zip_code:
                    StoreLocatorSite(p + 2, s + 2, fixed_zip=z)))

    # --- job board, next-link pagination (4): b37-b40 --------------------
    job_variants = [
        ("b37", ("title", "company"), 4, 5, True),
        ("b38", ("title", "company", "experience"), 3, 6, True),
        ("b39", ("title", "experience"), 5, 4, False),
        ("b40", ("title",), 4, 7, False),
    ]
    for bid, fields, pages, jobs, promoted in job_variants:
        add(bid, f"jobs {'+'.join(fields)}", "job-next",
            (lambda p=pages, j=jobs, pr=promoted:
             JobBoardSite(p, j, mode="next", seed=bid, promoted=pr)),
            EMPTY_DATA, _job_next_gt(fields), _EXT_NAV_PAGE,
            scaled=(lambda p=pages, j=jobs, pr=promoted, s=bid:
                    JobBoardSite(p + 2, j + 2, mode="next", seed=s, promoted=pr)))

    # --- product catalog (6): b41-b46 ------------------------------------
    catalog_variants = [
        ("b41", ("price",), 8, True),
        ("b42", ("price", "stock"), 6, True),
        ("b43", ("sku",), 7, True),
        ("b44", ("price", "stock", "sku"), 6, False),
        ("b45", ("price",), 10, False),
        ("b46", ("stock",), 9, False),
    ]
    for bid, fields, products, featured in catalog_variants:
        add(bid, f"catalog {'+'.join(fields)} via detail pages", "catalog",
            (lambda n=products, f=featured, s=bid: ProductCatalogSite(n, seed=s, featured=f)),
            EMPTY_DATA, _catalog_gt(fields), _EXT_NAV,
            scaled=(lambda n=products, f=featured, s=bid:
                    ProductCatalogSite(n + 5, seed=s, featured=f)))

    add("b47", "forum titles (pinned, long)", "forum",
        lambda: ForumSite(5, 4, seed="f47", pinned=True), EMPTY_DATA,
        _forum_gt(("title",)), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(7, 6, seed="f47", pinned=True))
    add("b48", "nested lists (4x8)", "plain",
        lambda: NestedListSite(4, 8, seed="p48"), EMPTY_DATA,
        parse_program(_PLAIN_NESTED_GT), _EXT,
        scaled=lambda: NestedListSite(6, 9, seed="p48"))
    add("b49", "forum links+authors", "forum",
        lambda: ForumSite(4, 6, seed="f49"), EMPTY_DATA,
        _forum_gt(("href", "author")), _EXT_NAV_PAGE,
        scaled=lambda: ForumSite(6, 8, seed="f49"))

    # --- sectioned catalog (5): b50-b54 ----------------------------------
    sectioned_variants = [
        ("b50", ("what", "when"), 3, 2, 3, True),
        ("b51", ("what",), 4, 2, 3, True),
        ("b52", ("what", "when"), 3, 3, 2, False),
        ("b53", ("when",), 4, 2, 4, False),
        ("b54", ("what", "when"), 2, 4, 2, False),
    ]
    for bid, fields, pages, sections, items, ads in sectioned_variants:
        add(bid, f"events {'+'.join(fields)} by venue", "sectioned",
            (lambda p=pages, s=sections, i=items, a=ads, sd=bid:
             SectionedCatalogSite(p, s, i, seed=sd, inline_ads=a)),
            EMPTY_DATA, _sectioned_gt(fields), _EXT_NAV_PAGE,
            scaled=(lambda p=pages, s=sections, i=items, a=ads, sd=bid:
                    SectionedCatalogSite(p + 1, s + 1, i + 1, seed=sd, inline_ads=a)))

    add("b55", "mile converter", "calculator",
        lambda: CalculatorSite(), DataSource({"miles": [str(i * 3 + 1) for i in range(40)]}),
        parse_program(_CALCULATOR_GT), _ENTRY_ONLY,
        notes="data entry without navigation")
    add("b56", "triple-nested lists", "plain",
        lambda: TripleListSite(3, 3, 4, seed="p56"), EMPTY_DATA,
        parse_program(_PLAIN_TRIPLE_GT), _EXT,
        scaled=lambda: TripleListSite(4, 4, 5, seed="p56"),
        notes="three-level nesting (paper b56)")

    # --- unicorn namer (8): b57-b64 ---------------------------------------
    for index, bid in enumerate(["b57", "b58", "b59", "b60", "b61", "b62", "b63", "b64"]):
        if index % 2 == 0:
            key, accessor = "customers", ""
            data = DataSource({"customers": _customers(100)})
        else:
            key, accessor = "rows", '["name"]'
            data = DataSource({"rows": [{"name": n} for n in _customers(100)]})
        add(bid, f"unicorn names over {key} ({index})", "unicorn",
            (lambda s=bid: UnicornNamerSite(seed=s)), data,
            _unicorn_gt(key, accessor), _ENTRY_FULL)

    # --- search directory (8): b65-b72 ------------------------------------
    search_variants = [
        ("b65", ("name",), 5), ("b66", ("name", "street"), 4),
        ("b67", ("name", "rating"), 5), ("b68", ("street",), 6),
        ("b69", ("name", "street", "rating"), 3), ("b70", ("rating",), 5),
        ("b71", ("name", "street"), 6), ("b72", ("name",), 4),
    ]
    for bid, fields, per_query in search_variants:
        data = DataSource({"keywords": _keywords(100)})
        add(bid, f"directory search {'+'.join(fields)}", "search",
            (lambda n=per_query, s=bid: SearchDirectorySite(n, seed=s)), data,
            _search_gt("keywords", fields), _ENTRY_FULL,
            scaled=(lambda n=per_query, s=bid: SearchDirectorySite(n + 3, seed=s)))

    # --- plain single lists (4): b73-b76 -----------------------------------
    add("b73", "flat list, two fields", "plain",
        lambda: PlainListSite(10, fields=2, seed="p73"), EMPTY_DATA,
        parse_program(_PLAIN_SINGLE_GT_2), _EXT,
        scaled=lambda: PlainListSite(16, fields=2, seed="p73"))
    add("b74", "flat list, one field", "plain",
        lambda: PlainListSite(12, fields=1, seed="p74"), EMPTY_DATA,
        parse_program(_PLAIN_SINGLE_GT_1), _EXT,
        scaled=lambda: PlainListSite(18, fields=1, seed="p74"))
    add("b75", "flat list, two fields (short)", "plain",
        lambda: PlainListSite(8, fields=2, seed="p75"), EMPTY_DATA,
        parse_program(_PLAIN_SINGLE_GT_2), _EXT,
        scaled=lambda: PlainListSite(14, fields=2, seed="p75"))
    add("b76", "flat list, one field (long)", "plain",
        lambda: PlainListSite(16, fields=1, seed="p76"), EMPTY_DATA,
        parse_program(_PLAIN_SINGLE_GT_1), _EXT,
        scaled=lambda: PlainListSite(22, fields=1, seed="p76"))

    entries.sort(key=lambda benchmark: int(benchmark.bid[1:]))
    return entries


#: Benchmark ids used for the Q4 egg-baseline comparison (Table 2): the
#: ground truths involve only selector loops and no alternative selectors.
TABLE2_IDS = ("b12", "b15", "b20", "b48", "b56", "b73", "b74", "b75", "b76")
