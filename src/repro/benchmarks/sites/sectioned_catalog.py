"""Sectioned, paginated catalog — the three-level-nesting stressor.

Every page holds several *sections* (e.g. venues), each with its own item
list; a "more" link pages through.  The intended program is a while loop
over pages containing a loop over sections containing a loop over items —
the shape of the paper's hardest benchmark (b56, three-level nesting),
which the egg baseline cannot solve within its timeout.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_VENUES = ["North Hall", "South Hall", "Annex", "Pavilion", "Rotunda"]
_EVENTS = ["recital", "lecture", "workshop", "matinee", "gala"]


class SectionedCatalogSite(VirtualWebsite):
    """States: ``("page", number)``."""

    def __init__(
        self,
        pages: int = 3,
        sections_per_page: int = 2,
        items_per_section: int = 3,
        seed: str = "venues",
        inline_ads: bool = False,
    ) -> None:
        super().__init__()
        self.pages = pages
        self.sections_per_page = sections_per_page
        self.items_per_section = items_per_section
        self.seed = seed
        #: Ad blocks between venue sections shift raw section indices.
        self.inline_ads = inline_ads

    def initial_state(self) -> State:
        return ("page", 1)

    def url(self, state: State) -> str:
        return f"virtual://venues/page/{state[1]}"

    def item(self, page_no: int, section: int, position: int) -> dict[str, str]:
        """Deterministic event record."""
        rng = DetRng(f"{self.seed}/{page_no}/{section}/{position}")
        return {
            "what": f"{rng.choice(_EVENTS)} #{rng.randint(10, 99)}",
            "when": f"{rng.randint(1, 12)}:{rng.choice(['00', '15', '30', '45'])} pm",
        }

    def section_name(self, page_no: int, section: int) -> str:
        """Deterministic section heading."""
        rng = DetRng(f"{self.seed}/sec/{page_no}/{section}")
        return f"{rng.choice(_VENUES)} ({page_no}-{section})"

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Values a full three-level scrape should produce."""
        return [
            self.item(page_no, section, position)[field]
            for page_no in range(1, self.pages + 1)
            for section in range(1, self.sections_per_page + 1)
            for position in range(1, self.items_per_section + 1)
            for field in fields
        ]

    def render(self, state: State) -> DOMNode:
        _, page_no = state
        sections = []
        for section in range(1, self.sections_per_page + 1):
            items = []
            for position in range(1, self.items_per_section + 1):
                record = self.item(page_no, section, position)
                items.append(
                    E("li", {"class": "event"},
                      E("span", {"class": "what"}, text=record["what"]),
                      E("span", {"class": "when"}, text=record["when"])))
            sections.append(
                E("div", {"class": "venue"},
                  E("h2", text=self.section_name(page_no, section)),
                  E("ul", {"class": "events"}, *items)))
            if self.inline_ads and section < self.sections_per_page:
                sections.append(E("div", {"class": "promo"}, text="advertisement"))
        more = []
        if page_no < self.pages:
            more.append(E("a", {"class": "moreLink", "href": "#more"}, text="more dates"))
        return page(
            E("div", {"class": "masthead"}, E("h2", text="what's on")),
            E("div", {"class": "listing"}, *sections),
            E("div", {"class": "footer"}, *more),
            title=f"events page {page_no}",
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        _, page_no = state
        if node.tag == "a" and "moreLink" in node.get("class"):
            if page_no < self.pages:
                return ("page", page_no + 1)
        return None
