"""Product catalog with detail pages — the click/scrape/GoBack shape.

A category page lists product links; clicking one opens a detail page
with price and availability; ``GoBack`` returns to the list.  The
ground-truth loop clicks *each* product in turn, which exercises selector
loops whose bodies navigate away and back.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_ADJECTIVES = ["Turbo", "Quiet", "Compact", "Deluxe", "Classic", "Featherweight"]
_ITEMS = ["Kettle", "Lamp", "Keyboard", "Chair", "Router", "Blender", "Monitor"]


class ProductCatalogSite(VirtualWebsite):
    """States: ``("list",)`` and ``("detail", position)``."""

    def __init__(self, products: int = 8, seed: str = "catalog", featured: bool = False) -> None:
        super().__init__()
        self.products = products
        self.seed = seed
        #: A featured banner row inside the list shifts raw item indices.
        self.featured = featured

    def initial_state(self) -> State:
        return ("list",)

    def url(self, state: State) -> str:
        if state[0] == "list":
            return "virtual://catalog/category"
        return f"virtual://catalog/item/{state[1]}"

    def product(self, position: int) -> dict[str, str]:
        """Deterministic product record (1-based position)."""
        rng = DetRng(f"{self.seed}/{position}")
        name = f"{rng.choice(_ADJECTIVES)} {rng.choice(_ITEMS)}"
        return {
            "name": name,
            "price": f"${rng.randint(5, 499)}.{rng.randint(0, 99):02d}",
            "stock": rng.choice(["in stock", "2-3 weeks", "sold out"]),
            "sku": f"SKU-{rng.randint(10000, 99999)}",
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Detail-page values a full click-through scrape should produce."""
        return [
            self.product(position)[field]
            for position in range(1, self.products + 1)
            for field in fields
        ]

    def render(self, state: State) -> DOMNode:
        if state[0] == "list":
            rows = []
            if self.featured:
                rows.append(E("li", {"class": "banner"}, text="season sale!"))
            for position in range(1, self.products + 1):
                record = self.product(position)
                rows.append(
                    E("li", {"class": "product"},
                      E("a", {"href": f"/item/{position}"}, text=record["name"])))
            return page(
                E("div", {"class": "crumbs"}, text="home > kitchen"),
                E("ul", {"class": "productList"}, *rows),
                title="category",
            )
        position = state[1]
        record = self.product(position)
        return page(
            E("div", {"class": "crumbs"}, text="home > kitchen > item"),
            E("div", {"class": "productDetail"},
              E("h1", text=record["name"]),
              E("span", {"class": "price"}, text=record["price"]),
              E("span", {"class": "stock"}, text=record["stock"]),
              E("span", {"class": "sku"}, text=record["sku"])),
            title=record["name"],
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        if state[0] == "list" and node.tag == "a":
            href = node.get("href")
            if href.startswith("/item/"):
                return ("detail", int(href.rsplit("/", 1)[1]))
        return None
