"""Single-page unit-converter form — data entry *without* navigation.

Typing a value and clicking *Convert* updates a result element in place;
the URL never changes.  This is the one entry benchmark in the suite that
involves no webpage navigation (the paper reports 29 entry benchmarks but
only 28 combining entry, extraction *and* navigation).
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode


class CalculatorSite(VirtualWebsite):
    """States: ``("calc", typed, result)``; URL is constant."""

    def __init__(self, rate: float = 1.609344) -> None:
        super().__init__()
        self.rate = rate

    def initial_state(self) -> State:
        return ("calc", "", None)

    def url(self, state: State) -> str:
        return "virtual://calculator/"  # never navigates

    def convert(self, text: str) -> str:
        """Miles → kilometres, rendered the way the page shows it."""
        try:
            miles = float(text)
        except ValueError:
            return "?"
        return f"{miles * self.rate:.2f} km"

    def expected_results(self, values: list[str]) -> list[str]:
        """Expected scrape outputs for a full run."""
        return [self.convert(value) for value in values]

    def render(self, state: State) -> DOMNode:
        _, typed, result = state
        parts = [
            E("h1", text="Mile converter"),
            E("div", {"class": "form"},
              E("input", {"name": "miles", "value": typed}),
              E("button", {"class": "convert"}, text="Convert")),
        ]
        if result is not None:
            parts.append(E("div", {"class": "converted"}, text=result))
        return page(*parts, title="converter")

    def on_input(self, state: State, node: DOMNode, dom: DOMNode, text: str) -> Optional[State]:
        if node.tag != "input":
            return None
        return ("calc", text, state[2])

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        if node.tag == "button" and "convert" in node.get("class"):
            _, typed, _ = state
            if typed:
                return ("calc", typed, self.convert(typed))
        return None
