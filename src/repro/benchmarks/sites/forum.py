"""Forum thread index with pagination — the iMacros-forum shape.

Thread rows carry a title link, author, and reply count; an "older
threads" link pages through the archive.  Ground truths combine while
loops with multi-field scraping, including ``ScrapeLink`` benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_SUBJECTS = ["loop help", "selector broken", "extract table", "login macro",
             "csv export", "timeout woes"]
_HANDLES = ["web_wiz", "scrape_cat", "dom_lord", "xpath_fan", "macro_mike"]


class ForumSite(VirtualWebsite):
    """States: ``("index", page_no)``."""

    def __init__(
        self,
        pages: int = 3,
        threads_per_page: int = 6,
        seed: str = "forum",
        pinned: bool = False,
    ) -> None:
        super().__init__()
        self.pages = pages
        self.threads_per_page = threads_per_page
        self.seed = seed
        #: A pinned announcement row at the top of every page shifts the
        #: raw indices of thread rows, forcing attribute selectors.
        self.pinned = pinned

    def initial_state(self) -> State:
        return ("index", 1)

    def url(self, state: State) -> str:
        return f"virtual://forum/index/{state[1]}"

    def thread(self, page_no: int, position: int) -> dict[str, str]:
        """Deterministic thread record."""
        rng = DetRng(f"{self.seed}/{page_no}/{position}")
        number = rng.randint(10000, 99999)
        return {
            "title": f"{rng.choice(_SUBJECTS)} #{number}",
            "href": f"/viewtopic.php?t={number}",
            "author": rng.choice(_HANDLES),
            "replies": str(rng.randint(0, 140)),
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Values a full all-pages scrape should produce."""
        return [
            self.thread(page_no, position)[field]
            for page_no in range(1, self.pages + 1)
            for position in range(1, self.threads_per_page + 1)
            for field in fields
        ]

    def render(self, state: State) -> DOMNode:
        _, page_no = state
        rows = []
        if self.pinned:
            rows.append(
                E("li", {"class": "announce"},
                  E("a", {"class": "announcetitle", "href": "/rules"}, text="READ FIRST: forum rules")))
        for position in range(1, self.threads_per_page + 1):
            record = self.thread(page_no, position)
            rows.append(
                E("li", {"class": "row"},
                  E("a", {"class": "topictitle", "href": record["href"]},
                    text=record["title"]),
                  E("span", {"class": "poster"}, text=record["author"]),
                  E("span", {"class": "posts"}, text=record["replies"])))
        older = []
        if page_no < self.pages:
            older.append(E("a", {"class": "olderLink", "href": "#older"}, text="older →"))
        return page(
            E("div", {"class": "navbar"}, E("span", text="Data Extraction forum")),
            E("ul", {"class": "topiclist"}, *rows),
            E("div", {"class": "pagination"}, *older),
            title=f"forum page {page_no}",
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        _, page_no = state
        if node.tag == "a" and "olderLink" in node.get("class"):
            if page_no < self.pages:
                return ("index", page_no + 1)
        return None
