"""Plain nested-list pages: the selector-loop-only benchmark shapes.

These single-page sites need *no* alternative selectors (items are the
only children of their containers, starting at raw index 1) and no entry
or pagination — the ground truths are pure ``Children``/``Dscts``
selector loops.  They are the Q4 comparison set (Table 2): the paper's
egg baseline "only supports selector loops without alternative
selectors", so these are the benchmarks both engines can express —
b73-76 are single loops, b12/b15/b20/b48 doubly-nested, b56 three-level.
"""

from __future__ import annotations

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_WORDS = ["alpha", "bravo", "cedar", "delta", "ember", "fjord", "gamma", "heron"]


class PlainListSite(VirtualWebsite):
    """One flat list: ``ul > li > (span, b)`` — a single selector loop."""

    def __init__(self, items: int = 8, fields: int = 2, seed: str = "plain") -> None:
        super().__init__()
        self.items = items
        self.fields = max(1, min(fields, 2))
        self.seed = seed

    def initial_state(self) -> State:
        return "list"

    def url(self, state: State) -> str:
        return "virtual://plain/list"

    def item(self, position: int) -> dict[str, str]:
        """Deterministic item record."""
        rng = DetRng(f"{self.seed}/{position}")
        return {
            "label": f"{rng.choice(_WORDS)}-{position}",
            "meta": f"meta {rng.randint(10, 99)}",
        }

    def expected_fields(self) -> list[str]:
        """Row-major values of a full scrape."""
        keys = ("label", "meta")[: self.fields]
        return [
            self.item(position)[key]
            for position in range(1, self.items + 1)
            for key in keys
        ]

    def render(self, state: State) -> DOMNode:
        rows = []
        for position in range(1, self.items + 1):
            record = self.item(position)
            cells = [E("span", text=record["label"])]
            if self.fields > 1:
                cells.append(E("b", text=record["meta"]))
            rows.append(E("li", *cells))
        return page(E("ul", *rows), title="plain list")


class NestedListSite(VirtualWebsite):
    """Groups of items: ``div > (h4, ul > li)`` — a doubly-nested loop."""

    def __init__(self, groups: int = 3, items_per_group: int = 4, seed: str = "nested") -> None:
        super().__init__()
        self.groups = groups
        self.items_per_group = items_per_group
        self.seed = seed

    def initial_state(self) -> State:
        return "groups"

    def url(self, state: State) -> str:
        return "virtual://plain/groups"

    def entry(self, group: int, position: int) -> str:
        """Deterministic item text."""
        rng = DetRng(f"{self.seed}/{group}/{position}")
        return f"{rng.choice(_WORDS)} {group}.{position}"

    def expected_fields(self) -> list[str]:
        """Group-major values of a full scrape."""
        return [
            self.entry(group, position)
            for group in range(1, self.groups + 1)
            for position in range(1, self.items_per_group + 1)
        ]

    def render(self, state: State) -> DOMNode:
        sections = []
        for group in range(1, self.groups + 1):
            items = [
                E("li", text=self.entry(group, position))
                for position in range(1, self.items_per_group + 1)
            ]
            sections.append(E("div", E("ul", *items)))
        return page(*sections, title="nested lists")


class TripleListSite(VirtualWebsite):
    """Blocks of groups of items — the three-level-nesting shape (b56)."""

    def __init__(
        self,
        blocks: int = 2,
        groups_per_block: int = 2,
        items_per_group: int = 3,
        seed: str = "triple",
    ) -> None:
        super().__init__()
        self.blocks = blocks
        self.groups_per_block = groups_per_block
        self.items_per_group = items_per_group
        self.seed = seed

    def initial_state(self) -> State:
        return "blocks"

    def url(self, state: State) -> str:
        return "virtual://plain/blocks"

    def entry(self, block: int, group: int, position: int) -> str:
        """Deterministic item text."""
        rng = DetRng(f"{self.seed}/{block}/{group}/{position}")
        return f"{rng.choice(_WORDS)} {block}.{group}.{position}"

    def expected_fields(self) -> list[str]:
        """Block-major values of a full scrape."""
        return [
            self.entry(block, group, position)
            for block in range(1, self.blocks + 1)
            for group in range(1, self.groups_per_block + 1)
            for position in range(1, self.items_per_group + 1)
        ]

    def render(self, state: State) -> DOMNode:
        blocks = []
        for block in range(1, self.blocks + 1):
            groups = []
            for group in range(1, self.groups_per_block + 1):
                items = [
                    E("li", text=self.entry(block, group, position))
                    for position in range(1, self.items_per_group + 1)
                ]
                groups.append(E("ul", *items))
            blocks.append(E("div", *groups))
        return page(*blocks, title="triple nesting")
