"""Sports match listing — the paper's unsupported selector case (b6).

The fixture list interleaves rows of class ``match`` and
``match highlight`` with ``ad`` rows.  Scraping *exactly the match rows*
needs a disjunctive predicate (``match`` OR ``match highlight``), which
the DSL's single-attribute predicates cannot express; nor does a plain
tag loop work (it would hit the ads).  Clicking a row opens the match
page (navigation), mirroring "scraping players information for matches".
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_TEAMS = ["Rovers", "Athletic", "United", "Wanderers", "City", "Albion"]


class MatchListSite(VirtualWebsite):
    """States: ``("list",)`` and ``("match", position)``.

    ``position`` indexes *match rows only* (1-based), skipping ads.
    """

    def __init__(self, matches: int = 8, seed: str = "matches") -> None:
        super().__init__()
        self.matches = matches
        self.seed = seed

    def initial_state(self) -> State:
        return ("list",)

    def url(self, state: State) -> str:
        if state[0] == "list":
            return "virtual://matches/fixtures"
        return f"virtual://matches/match/{state[1]}"

    def match(self, position: int) -> dict[str, str]:
        """Deterministic match record; every third match is a highlight."""
        rng = DetRng(f"{self.seed}/{position}")
        home = rng.choice(_TEAMS)
        away = rng.choice([team for team in _TEAMS if team != home])
        return {
            "teams": f"{home} vs {away}",
            "score": f"{rng.randint(0, 4)}–{rng.randint(0, 4)}",
            "star": f"{rng.choice('JKLMN')}. {rng.choice(_TEAMS)[:-1]}son",
            "highlight": position % 3 == 0,
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Detail-page values for every match row in order."""
        return [
            self.match(position)[field]
            for position in range(1, self.matches + 1)
            for field in fields
        ]

    def render(self, state: State) -> DOMNode:
        if state[0] == "list":
            rows = []
            for position in range(1, self.matches + 1):
                record = self.match(position)
                cls = "match highlight" if record["highlight"] else "match"
                # the teams span deliberately carries no class of its
                # own: only the row's (disjunctive) class distinguishes
                # fixtures from ads, which is exactly the b6 difficulty
                rows.append(
                    E("div", {"class": cls, "data-pos": str(position)},
                      E("span", text=record["teams"])))
                if position % 2 == 0:
                    rows.append(
                        E("div", {"class": "ad"},
                          E("span", {"class": "pitch"}, text="place your ad here")))
            return page(
                E("h1", text="This week's fixtures"),
                E("div", {"class": "fixtureList"}, *rows),
                title="fixtures",
            )
        position = state[1]
        record = self.match(position)
        return page(
            E("div", {"class": "matchDetail"},
              E("h2", text=record["teams"]),
              E("span", {"class": "score"}, text=record["score"]),
              E("span", {"class": "star"}, text=record["star"])),
            title=record["teams"],
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        if state[0] != "list":
            return None
        row = node
        while row is not None and "match" not in row.get("class", "").split():
            row = row.parent
        if row is not None and row.get("data-pos"):
            return ("match", int(row.get("data-pos")))
        return None
