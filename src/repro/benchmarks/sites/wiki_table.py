"""Wikipedia-style data table — multi-column row scraping.

A single page with a header row (``th`` cells, so it never matches the
data-row loops) and data rows whose cells the ground truth scrapes
column by column.
"""

from __future__ import annotations

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_COUNTRIES = ["Atlantis", "Freedonia", "Genovia", "Elbonia", "Latveria", "Wakanda"]


class WikiTableSite(VirtualWebsite):
    """State is the single value ``"table"``."""

    def __init__(self, rows: int = 10, seed: str = "wiki", header: bool = True) -> None:
        super().__init__()
        self.rows = rows
        self.seed = seed
        #: A ``th`` header row makes data rows start at raw index 2, so
        #: the loop needs the ``tr[@class='data']`` predicate; without a
        #: header the table is solvable from raw XPaths alone.
        self.header = header

    def initial_state(self) -> State:
        return "table"

    def url(self, state: State) -> str:
        return "virtual://wiki/table"

    def row(self, position: int) -> dict[str, str]:
        """Deterministic table row (1-based, data rows only)."""
        rng = DetRng(f"{self.seed}/{position}")
        return {
            "name": f"{rng.choice(_COUNTRIES)}-{position}",
            "capital": f"{rng.choice('KLMNOP')}{rng.randint(100, 999)} City",
            "population": f"{rng.randint(1, 80)}.{rng.randint(0, 9)}M",
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Values a full row-major scrape should produce."""
        return [
            self.row(position)[field]
            for position in range(1, self.rows + 1)
            for field in fields
        ]

    def render(self, state: State) -> DOMNode:
        head_rows = []
        if self.header:
            head_rows.append(
                E("tr", {"class": "head"},
                  E("th", text="Country"), E("th", text="Capital"),
                  E("th", text="Population")))
        body_rows = []
        for position in range(1, self.rows + 1):
            record = self.row(position)
            body_rows.append(
                E("tr", {"class": "data"},
                  E("td", {"class": "name"}, text=record["name"]),
                  E("td", {"class": "capital"}, text=record["capital"]),
                  E("td", {"class": "population"}, text=record["population"])))
        return page(
            E("h1", text="List of countries"),
            E("table", {"class": "wikitable"}, *head_rows, *body_rows),
            title="countries",
        )
