"""The unicorn-name generator — the paper's introduction example.

A form page: type a customer name, click *Generate*, a result page shows
the unicorn name; the input survives so the next customer can be typed.
The ground truth iterates a data source of customer names — the classic
entry + scrape value loop (P4's outer loop without pagination).
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_PREFIXES = ["Sparkle", "Moonbeam", "Glitter", "Thunder", "Velvet", "Nova"]
_SUFFIXES = ["hoof", "mane", "horn", "dancer", "whisper", "gallop"]


class UnicornNamerSite(VirtualWebsite):
    """States: ``("form", typed, result)`` — result is None before the
    first generation; the page URL changes per generated result
    (navigation), as the webinar's generator does."""

    def __init__(self, seed: str = "unicorn") -> None:
        super().__init__()
        self.seed = seed

    def initial_state(self) -> State:
        return ("form", "", None)

    def url(self, state: State) -> str:
        _, _, result = state
        if result is None:
            return "virtual://unicorn/"
        return f"virtual://unicorn/result/{result.replace(' ', '-')}"

    def unicorn_name(self, customer: str) -> str:
        """The deterministic unicorn name for a customer."""
        rng = DetRng(f"{self.seed}/{customer}")
        return f"{rng.choice(_PREFIXES)} {rng.choice(_SUFFIXES)} {rng.randint(1, 99)}"

    def expected_names(self, customers: list[str]) -> list[str]:
        """Expected scrape output for a full run over ``customers``."""
        return [self.unicorn_name(name) for name in customers]

    def render(self, state: State) -> DOMNode:
        _, typed, result = state
        parts = [
            E("div", {"class": "hero"}, E("h1", text="Unicorn Name Generator")),
            E("div", {"class": "form"},
              E("input", {"name": "customer", "value": typed}),
              E("button", {"class": "generate"}, text="Generate!")),
        ]
        if result is not None:
            parts.append(
                E("div", {"class": "outcome"},
                  E("span", text="Your unicorn name is"),
                  E("div", {"class": "unicornName"}, text=result)))
        return page(*parts, title="unicorn namer")

    def on_input(self, state: State, node: DOMNode, dom: DOMNode, text: str) -> Optional[State]:
        if node.tag != "input":
            return None
        return ("form", text, state[2])

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        if node.tag == "button" and "generate" in node.get("class"):
            _, typed, _ = state
            if typed:
                return ("form", typed, self.unicorn_name(typed))
        return None
