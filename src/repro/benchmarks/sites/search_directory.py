"""Keyword-search directory — user-study phase 3's task shape.

Type a keyword, click *Search*, scrape the matching entries (one result
page per keyword, no pagination), repeat for every keyword in the data
source: an entry loop wrapping an extraction loop.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_KINDS = ["clinic", "library", "bakery", "gym", "pharmacy", "museum"]


class SearchDirectorySite(VirtualWebsite):
    """States: ``("search", typed)`` and ``("results", keyword, typed)``."""

    def __init__(self, results_per_query: int = 5, seed: str = "directory") -> None:
        super().__init__()
        self.results_per_query = results_per_query
        self.seed = seed

    def initial_state(self) -> State:
        return ("search", "")

    def url(self, state: State) -> str:
        if state[0] == "search":
            return "virtual://directory/"
        return f"virtual://directory/q={state[1]}"

    def entry(self, keyword: str, position: int) -> dict[str, str]:
        """Deterministic directory entry for a query's result slot."""
        rng = DetRng(f"{self.seed}/{keyword}/{position}")
        return {
            "name": f"{keyword.title()} {rng.choice(_KINDS)} {position}",
            "street": f"{rng.randint(1, 999)} {rng.choice('ABCDE')} street",
            "rating": f"{rng.randint(1, 5)}.{rng.randint(0, 9)}",
        }

    def expected_fields(self, keywords: list[str], fields: tuple[str, ...]) -> list[str]:
        """Values a full multi-keyword scrape should produce."""
        return [
            self.entry(keyword, position)[field]
            for keyword in keywords
            for position in range(1, self.results_per_query + 1)
            for field in fields
        ]

    def _form(self, typed: str) -> DOMNode:
        return E("div", {"class": "searchForm"},
                 E("input", {"name": "q", "value": typed}),
                 E("button", {"class": "doSearch"}, text="Search"))

    def render(self, state: State) -> DOMNode:
        if state[0] == "search":
            return page(
                E("div", {"class": "masthead"}, E("h1", text="City Directory")),
                self._form(state[1]),
                title="directory",
            )
        _, keyword, typed = state
        cards = []
        for position in range(1, self.results_per_query + 1):
            record = self.entry(keyword, position)
            cards.append(
                E("div", {"class": "hit"},
                  E("h3", text=record["name"]),
                  E("span", {"class": "street"}, text=record["street"]),
                  E("span", {"class": "rating"}, text=record["rating"])))
        return page(
            E("div", {"class": "masthead"}, E("h1", text="City Directory")),
            self._form(typed),
            E("div", {"class": "hits"}, *cards),
            title=f"results for {keyword}",
        )

    def on_input(self, state: State, node: DOMNode, dom: DOMNode, text: str) -> Optional[State]:
        if node.tag != "input":
            return None
        if state[0] == "search":
            return ("search", text)
        return ("results", state[1], text)

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        if node.tag == "button" and "doSearch" in node.get("class"):
            typed = state[1] if state[0] == "search" else state[2]
            if typed:
                return ("results", typed, typed)
        return None
