"""Store-locator site: the paper's motivating example (§2, Figure 4).

Given a zip code typed into the search box, the site shows paginated
result pages of store cards.  Structure mirrors the Subway example:

* a sidebar before the results container, so raw card paths don't start
  at index 1 (alternative selectors are required, as in P1);
* each card nests the name in an ``h3`` and the phone in a
  ``div[@class='locatorPhone']`` several levels deep;
* a "next page" button that is *absent on the last page* (the while-loop
  termination condition) and whose raw path shifts on pages ≥ 2 because a
  "prev" button appears (the selector-search requirement for P3's click).
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_STREETS = ["Main St", "Oak Ave", "Maple Rd", "State St", "5th Ave", "Pine Blvd"]
_NAMES = ["Subshop", "Hoagie House", "Grinder Bros", "Torpedo Point", "Hero Hut"]


class StoreLocatorSite(VirtualWebsite):
    """Search + paginated store results.

    States::

        ("home", query)            the landing page, query typed so far
        ("results", zip, page, query)   result page ``page`` for ``zip``
    """

    def __init__(
        self,
        pages_per_zip: int = 5,
        stores_per_page: int = 10,
        fixed_zip: str | None = None,
    ) -> None:
        super().__init__()
        self.pages_per_zip = pages_per_zip
        self.stores_per_page = stores_per_page
        #: When set, the browser starts directly on the results for this
        #: zip — the no-data-entry pagination variants.
        self.fixed_zip = fixed_zip

    # ------------------------------------------------------------------
    def initial_state(self) -> State:
        if self.fixed_zip is not None:
            return ("results", self.fixed_zip, 1, self.fixed_zip)
        return ("home", "")

    def url(self, state: State) -> str:
        if state[0] == "home":
            return "virtual://storelocator/"
        _, zip_code, page_no, _ = state
        return f"virtual://storelocator/search?zip={zip_code}&page={page_no}"

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def store(self, zip_code: str, page_no: int, position: int) -> dict[str, str]:
        """Deterministic store record for one result-card slot."""
        rng = DetRng(f"{zip_code}/{page_no}/{position}")
        name = f"{rng.choice(_NAMES)} #{rng.randint(100, 999)}"
        address = f"{rng.randint(1, 9999)} {rng.choice(_STREETS)}, {zip_code}"
        phone = f"({rng.randint(200, 989)}) 555-{rng.randint(1000, 9999):04d}"
        return {"name": name, "address": address, "phone": phone}

    def expected_fields(self, zip_code: str, fields: tuple[str, ...]) -> list[str]:
        """The values a full scrape of ``zip_code`` should produce."""
        values = []
        for page_no in range(1, self.pages_per_zip + 1):
            for position in range(1, self.stores_per_page + 1):
                record = self.store(zip_code, page_no, position)
                values.extend(record[field] for field in fields)
        return values

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _search_bar(self, query: str) -> list[DOMNode]:
        return [
            E("div", {"class": "sidebar"},
              E("h3", text="Find a store near you"),
              E("a", {"href": "/ads/banner"}, text="sponsored")),
            E("div", {"class": "searchBar"},
              E("input", {"name": "search", "value": query}),
              E("button", {"class": "squareButton btnDoSearch"}, text="GO")),
        ]

    def _card(self, record: dict[str, str]) -> DOMNode:
        return E("div", {"class": "rightContainer"},
                 E("div", {"class": "locatorHeader"},
                   E("div", E("h3", text=record["name"]))),
                 E("div", {"class": "locatorBody"},
                   E("div", {"class": "locatorAddress"}, text=record["address"]),
                   E("div",
                     E("a", {"href": "tel:" + record["phone"]},
                       E("div", {"class": "locatorPhone"}, text=record["phone"])))))

    def render(self, state: State) -> DOMNode:
        if state[0] == "home":
            return page(*self._search_bar(state[1]), title="Store Locator")
        _, zip_code, page_no, query = state
        cards = [
            self._card(self.store(zip_code, page_no, position))
            for position in range(1, self.stores_per_page + 1)
        ]
        pager: list[DOMNode] = []
        if page_no > 1:
            pager.append(
                E("button", {"class": "sprite-prev-page-arrow"},
                  E("span", {"class": "fa-arrow-left"}, text="prev"))
            )
        if page_no < self.pages_per_zip:
            pager.append(
                E("button", {"class": "sprite-next-page-arrow"},
                  E("span", {"class": "fa-arrow-right"}, text="next"))
            )
        return page(
            *self._search_bar(query),
            E("div", {"class": "results"}, *cards),
            E("div", {"class": "pager"}, *pager),
            title=f"Stores near {zip_code} — page {page_no}",
        )

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def on_input(
        self, state: State, node: DOMNode, dom: DOMNode, text: str
    ) -> Optional[State]:
        if node.tag != "input":
            return None
        if state[0] == "home":
            return ("home", text)
        _, zip_code, page_no, _ = state
        return ("results", zip_code, page_no, text)

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        classes = node.get("class")
        if node.tag == "button" and "btnDoSearch" in classes:
            query = state[1] if state[0] == "home" else state[3]
            if not query:
                return None
            return ("results", query, 1, query)
        # pagination arrows: the span inside the button is what users click
        anchor = node if node.tag == "button" else (node.parent or node)
        if anchor.tag == "button" and state[0] == "results":
            _, zip_code, page_no, query = state
            if "sprite-next-page-arrow" in anchor.get("class"):
                if page_no < self.pages_per_zip:
                    return ("results", zip_code, page_no + 1, query)
            if "sprite-prev-page-arrow" in anchor.get("class"):
                if page_no > 1:
                    return ("results", zip_code, page_no - 1, query)
        return None
