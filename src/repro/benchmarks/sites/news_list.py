"""Single-page news/article list — the simplest scraping shape.

One page, a banner above the list (so article raw paths need attribute
selectors), rows with headline link, author and date.  Exercises
single-loop extraction (user-study phase 1's task shape).
"""

from __future__ import annotations

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_TOPICS = ["markets", "science", "sports", "culture", "tech", "weather"]
_SURNAMES = ["Okafor", "Ueda", "Silva", "Novak", "Marsh", "Chen", "Dietrich"]


class NewsListSite(VirtualWebsite):
    """An article list, optionally with click-through article pages.

    States: ``"front"`` and ``("article", position)``.  Headline links
    navigate to the article page (used by the click-through benchmarks);
    the static benchmarks never click them.
    """

    def __init__(self, articles: int = 12, seed: str = "news", noisy: bool = False) -> None:
        super().__init__()
        self.articles = articles
        self.seed = seed
        #: When set, sponsored divs are interleaved *inside* the stories
        #: container, so raw child indices of consecutive stories are not
        #: consecutive — alternative selectors become necessary.
        self.noisy = noisy

    def initial_state(self) -> State:
        return "front"

    def url(self, state: State) -> str:
        if state == "front":
            return "virtual://news/front"
        return f"virtual://news/story/{state[1]}"

    def article(self, position: int) -> dict[str, str]:
        """Deterministic article record for row ``position`` (1-based)."""
        rng = DetRng(f"{self.seed}/{position}")
        topic = rng.choice(_TOPICS)
        return {
            "title": f"{topic.title()} report #{rng.randint(100, 999)}",
            "href": f"/stories/{topic}/{rng.randint(1000, 9999)}",
            "author": f"{rng.choice('ABCDEFG')}. {rng.choice(_SURNAMES)}",
            "date": f"2022-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Values a full scrape should produce, row-major."""
        return [
            self.article(position)[field]
            for position in range(1, self.articles + 1)
            for field in fields
        ]

    def body_text(self, position: int) -> str:
        """Deterministic article body for the click-through variants."""
        record = self.article(position)
        return f"Full story: {record['title']} — filed by {record['author']}."

    def render(self, state: State) -> DOMNode:
        if state != "front":
            position = state[1]
            record = self.article(position)
            return page(
                E("div", {"class": "articlePage"},
                  E("h1", text=record["title"]),
                  E("div", {"class": "articleBody"}, text=self.body_text(position))),
                title=record["title"],
            )
        rows = []
        for position in range(1, self.articles + 1):
            record = self.article(position)
            rows.append(
                E("div", {"class": "story"},
                  E("h2", E("a", {"href": record["href"]}, text=record["title"])),
                  E("div", {"class": "byline"},
                    E("span", {"class": "author"}, text=record["author"]),
                    E("span", {"class": "date"}, text=record["date"]))))
            if self.noisy and position % 3 == 0:
                rows.append(E("div", {"class": "sponsored"}, text="advertisement"))
        return page(
            E("div", {"class": "banner"},
              E("h2", text="The Daily Repro"),
              E("span", text="all the news that fits in a DOM")),
            E("div", {"class": "stories"}, *rows),
            title="front page",
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode):
        if state == "front" and node.tag == "a":
            href = node.get("href")
            for position in range(1, self.articles + 1):
                if self.article(position)["href"] == href:
                    return ("article", position)
        return None
