"""Job board with two pagination mechanisms.

``mode="next"`` paginates with a single "next" link — the supported,
while-loop-friendly shape (timesjobs-like listings of title / company /
experience).

``mode="numbered"`` paginates the paper's unsupported way (b9): a
*fixed block* of page-number buttons plus a "next block" button (the
timesjobs "next 10 pages" mechanism, block size 3 here).  Advancing one
page means clicking a *different* button position each time — clicking
any fixed position eventually hits the current page and goes nowhere —
so no click-terminated while loop describes the task.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.virtual import State, VirtualWebsite
from repro.dom.builder import E, page
from repro.dom.node import DOMNode
from repro.util.rng import DetRng

_ROLES = ["Data Engineer", "QA Analyst", "Site Reliability", "Frontend Dev", "DBA"]
_FIRMS = ["Initech", "Globex", "Umbrella", "Hooli", "Stark Industries", "Wayne Corp"]


class JobBoardSite(VirtualWebsite):
    """States: ``("page", number)``."""

    #: Page numbers shown per block in ``numbered`` mode (the paper's
    #: site shows 10; 3 keeps traces short with the same structure).
    PAGE_BLOCK = 3

    def __init__(
        self,
        pages: int = 4,
        jobs_per_page: int = 5,
        mode: str = "next",
        seed: str = "jobs",
        promoted: bool = False,
    ) -> None:
        super().__init__()
        if mode not in ("next", "numbered"):
            raise ValueError(f"unknown pagination mode {mode!r}")
        self.pages = pages
        self.jobs_per_page = jobs_per_page
        self.mode = mode
        self.seed = seed
        #: A promoted posting inside the list shifts raw row indices.
        self.promoted = promoted

    def initial_state(self) -> State:
        return ("page", 1)

    def url(self, state: State) -> str:
        return f"virtual://jobs/{self.mode}/page/{state[1]}"

    def job(self, page_no: int, position: int) -> dict[str, str]:
        """Deterministic job record."""
        rng = DetRng(f"{self.seed}/{page_no}/{position}")
        return {
            "title": f"{rng.choice(_ROLES)} ({rng.choice(['remote', 'hybrid', 'onsite'])})",
            "company": rng.choice(_FIRMS),
            "experience": f"{rng.randint(0, 9)}+ yrs",
        }

    def expected_fields(self, fields: tuple[str, ...]) -> list[str]:
        """Values a full all-pages scrape should produce."""
        return [
            self.job(page_no, position)[field]
            for page_no in range(1, self.pages + 1)
            for position in range(1, self.jobs_per_page + 1)
            for field in fields
        ]

    # ------------------------------------------------------------------
    def _pager(self, page_no: int) -> DOMNode:
        if self.mode == "next":
            parts = []
            if page_no < self.pages:
                parts.append(E("a", {"class": "nextLink", "href": "#next"}, text="Next »"))
            return E("div", {"class": "pager"}, *parts)
        # numbered: fixed blocks of page numbers + a next-block button
        block = (page_no - 1) // self.PAGE_BLOCK
        first = block * self.PAGE_BLOCK + 1
        last = min(self.pages, first + self.PAGE_BLOCK - 1)
        buttons = []
        for number in range(first, last + 1):
            cls = "pageNo current" if number == page_no else "pageNo"
            buttons.append(E("button", {"class": cls, "data-page": str(number)},
                             text=str(number)))
        if last < self.pages:
            buttons.append(E("button", {"class": "nextBlock"}, text="»"))
        return E("div", {"class": "pager"}, *buttons)

    def render(self, state: State) -> DOMNode:
        _, page_no = state
        rows = []
        if self.promoted:
            rows.append(
                E("li", {"class": "promo"},
                  E("h2", text="Hire with us — promoted")))
        for position in range(1, self.jobs_per_page + 1):
            record = self.job(page_no, position)
            rows.append(
                E("li", {"class": "job-bx"},
                  E("h2", text=record["title"]),
                  E("h3", {"class": "joblist-comp-name"}, text=record["company"]),
                  E("ul",
                    E("li", {"class": "experience"}, text=record["experience"]))))
        return page(
            E("div", {"class": "header"}, E("h2", text="openings")),
            E("ul", {"class": "new-joblist"}, *rows),
            self._pager(page_no),
            title=f"jobs page {page_no}",
        )

    def on_click(self, state: State, node: DOMNode, dom: DOMNode) -> Optional[State]:
        _, page_no = state
        if self.mode == "next":
            if node.tag == "a" and "nextLink" in node.get("class"):
                if page_no < self.pages:
                    return ("page", page_no + 1)
            return None
        if node.tag == "button" and "pageNo" in node.get("class"):
            target = int(node.get("data-page"))
            return ("page", target) if target != page_no else None
        if node.tag == "button" and "nextBlock" in node.get("class"):
            block = (page_no - 1) // self.PAGE_BLOCK
            first_of_next = (block + 1) * self.PAGE_BLOCK + 1
            if first_of_next <= self.pages:
                return ("page", first_of_next)
        return None
