"""The 76-benchmark web RPA suite and its synthetic site families."""

from repro.benchmarks.suite import (
    ENTRY,
    EXTRACTION,
    NAVIGATION,
    PAGINATION,
    TABLE2_IDS,
    Benchmark,
    MatchDetailDemo,
    NumberedPagerDemo,
    ScriptedDemo,
    all_benchmarks,
    benchmark_by_id,
)

__all__ = [
    "ENTRY",
    "EXTRACTION",
    "NAVIGATION",
    "PAGINATION",
    "TABLE2_IDS",
    "Benchmark",
    "MatchDetailDemo",
    "NumberedPagerDemo",
    "ScriptedDemo",
    "all_benchmarks",
    "benchmark_by_id",
]
