"""The machine-readable wire schema, generated from the field specs.

``repro protocol-schema`` prints exactly this document; CI regenerates
it and diffs against the committed ``src/repro/protocol/schema.json``,
so any wire change that is not accompanied by an explicit schema commit
(and, for breaking changes, a ``PROTOCOL_VERSION`` bump) fails the
build.  The document is generated from the same specs that drive the
codec — it cannot drift from actual behavior.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.protocol.codec import CODECS, DEFAULT_CODEC
from repro.protocol.messages import (
    MESSAGE_SPECS,
    PROTOCOL_VERSION,
    STRUCT_SPECS,
)

#: Where the committed schema lives (the protocol-compat CI step's base).
SCHEMA_PATH = Path(__file__).with_name("schema.json")


def _fields(spec) -> list[dict]:
    return [
        {"name": field.name, "kind": field.kind, "optional": field.optional}
        for field in spec.fields
    ]


def schema() -> dict:
    """The wire schema as one JSON-ready document."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "codec": DEFAULT_CODEC.name,
        "codecs": {
            codec.name: codec.content_type for codec in CODECS.values()
        },
        "envelope": ["v", "type", "trace?"],
        "messages": {
            spec.tag: {"class": spec.cls.__name__, "fields": _fields(spec)}
            for spec in MESSAGE_SPECS
        },
        "structs": {
            kind: {"class": spec.cls.__name__, "fields": _fields(spec)}
            for kind, spec in sorted(STRUCT_SPECS.items())
        },
    }


def render_schema() -> str:
    """The schema document as committed: stable, human-diffable JSON."""
    return json.dumps(schema(), indent=2, sort_keys=True) + "\n"


def main() -> int:
    """Entry point of ``repro protocol-schema``."""
    print(render_schema(), end="")
    return 0
