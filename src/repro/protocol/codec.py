"""The protocol codec seam.

A :class:`Codec` turns protocol messages into bytes and back, and —
since the same seam now serves the persistent store — arbitrary
JSON-shaped payload values via :meth:`Codec.encode_payload` /
:meth:`Codec.decode_payload`.

Two implementations ship:

* :class:`JsonCodec` — canonical JSON (sorted keys, compact
  separators), so every message has exactly one encoding and golden
  wire fixtures are byte-stable.  The wire default.
* :class:`BinaryCodec` — the ROADMAP's compact binary payload format:
  length-prefixed values with a string table and a structural list
  table, so the step/selector lists that repeat across a store entry
  encode once and every later occurrence is a two-byte reference.
  The store default.

The session, server, and client layers speak :class:`Codec`, never
``json`` directly.  Payloads are self-describing: a binary payload
always starts with a byte ≥ 0x80, which no JSON document can, so
:func:`sniff_codec` can route mixed stores and wire bodies.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Optional

from repro.obs import metrics as obs_metrics
from repro.protocol.messages import ProtocolError, from_wire, to_wire

_codec_ops = None
_codec_bytes = None


def _publish(codec_name: str, op: str, nbytes: int) -> None:
    """Count one codec operation (lazy family resolution, no-op when
    ``REPRO_OBS=off``).  ``op`` distinguishes message encode/decode
    from the store's payload encode/decode."""
    global _codec_ops, _codec_bytes
    if _codec_ops is None:
        registry = obs_metrics.registry()
        _codec_ops = registry.counter(
            "repro_codec_ops_total",
            "Codec operations by codec and op kind.",
            ("codec", "op"),
        )
        _codec_bytes = registry.counter(
            "repro_codec_bytes_total",
            "Bytes produced (encode) or consumed (decode) per codec and op.",
            ("codec", "op"),
        )
    _codec_ops.labels(codec=codec_name, op=op).inc()
    _codec_bytes.labels(codec=codec_name, op=op).inc(nbytes)


class Codec:
    """Encodes protocol messages (and raw payload values) to bytes."""

    #: Short name surfaced in telemetry and the schema document.
    name: str = "codec"
    #: The HTTP content type of this codec's payloads.
    content_type: str = "application/octet-stream"

    def encode(self, message) -> bytes:
        """The canonical byte encoding of one message."""
        raise NotImplementedError

    def decode(self, payload: bytes):
        """Decode one message; raises :class:`ProtocolError` on bad wire."""
        raise NotImplementedError

    # -- raw payload values (store entries, bare dict replies) ---------
    def encode_payload(self, value) -> bytes:
        """Canonical byte encoding of one JSON-shaped value."""
        raise NotImplementedError

    def decode_payload(self, payload: bytes):
        """Decode one value; raises :class:`ProtocolError` on bad bytes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def roundtrip(self, message):
        """Encode → decode → re-encode; assert byte stability.

        Returns the decoded message.  This is the schema round-trip
        validation used by tests and by ``JsonCodec.selfcheck``-style
        assertions: a message that cannot survive its own wire format
        must never leave the process.
        """
        encoded = self.encode(message)
        decoded = self.decode(encoded)
        again = self.encode(decoded)
        if again != encoded:
            raise ProtocolError(
                f"{type(message).__name__} does not round-trip byte-stably"
            )
        return decoded


class JsonCodec(Codec):
    """Canonical JSON: sorted keys, compact separators, UTF-8."""

    name = "json"
    content_type = "application/json"

    def encode(self, message) -> bytes:
        raw = json.dumps(
            to_wire(message), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        _publish("json", "encode", len(raw))
        return raw

    def decode(self, payload: bytes):
        try:
            wire = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable payload: {exc}") from exc
        _publish("json", "decode", len(payload))
        return from_wire(wire)

    def encode_payload(self, value) -> bytes:
        raw = json.dumps(
            value, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        _publish("json", "encode_payload", len(raw))
        return raw

    def decode_payload(self, payload: bytes):
        try:
            value = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable payload: {exc}") from exc
        _publish("json", "decode_payload", len(payload))
        return value


# ---------------------------------------------------------------------------
# The binary format.
#
# Layout: two header bytes (magic 0xC3, format version) followed by one
# value.  Values are tagged:
#
#   0x00 None          0x01 False           0x02 True
#   0x03 int           zigzag LEB128 varint (small ints, 1–9 bytes)
#   0x04 float         8 bytes, big-endian IEEE-754 double
#   0x05 str inline    varint byte length + UTF-8; appended to the
#                      string table on both encode and decode
#   0x06 str ref       varint index into the string table
#   0x07 list inline   varint count + elements; registered in the list
#                      table *after* its elements (post-order), so
#                      encoder and decoder assign identical indices
#   0x08 dict          varint count + (key, value) pairs, keys sorted
#   0x09 list ref      varint index into the list table
#   0x0A big int       varint byte length + signed big-endian bytes
#                      (the 128-bit snapshot digests: ~19 bytes vs ~39
#                      JSON digit chars, and C-speed via int.to_bytes)
#   0x0B dict ref      varint index into _DICTIONARY, the preset table
#                      below — cross-payload redundancy (step lists,
#                      tag names, action kinds) as two-byte refs with
#                      no per-payload warm-up
#
# Every construct is deterministic for a given object graph (sorted
# dict keys, deterministic intern order, ints ≥ 2**62 always tag 0x0A)
# and encode(decode(b)) == b, so golden fixtures are stable.  The
# magic byte is ≥ 0x80, which no JSON document's first byte can be, so
# payloads self-describe for mixed stores and content sniffing.
#
# The list table is what exploits step/selector redundancy: a selector
# is a list of 6-element step lists, and the same steps recur across
# every action of a loop body, so each repeat costs two bytes.  Intern
# keys must be cheap — this codec races C ``json`` — so only *flat*
# lists intern structurally, keyed as ``(tuple(map(type, v)),
# tuple(v))`` (both C-speed; the type tuple disambiguates
# ``True``/``1``, which hash equal).  Nested lists intern by object
# identity, which shared-construction payload builders hit for free.
#
# _DICTIONARY is the preset half of that table — the zstd-dictionary
# idea applied to the store: the flat step lists and strings that
# recur across *entries* are pre-registered at fixed indices, so each
# payload's first occurrence is already a ref.  The dictionary is part
# of the format: any change to it changes wire bytes and MUST bump
# FORMAT_VERSION (the golden-fixture CI gate enforces this).  Entries
# the dictionary misses just intern per-payload as usual.
# ---------------------------------------------------------------------------

MAGIC = 0xC3
FORMAT_VERSION = 1
HEADER = bytes((MAGIC, FORMAT_VERSION))

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_STR_REF = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_LIST_REF = 0x09
_T_INTBYTES = 0x0A
_T_DREF = 0x0B

#: Ints outside this range use the length-prefixed 0x0A form.
_INT_VARINT_BOUND = 1 << 62

#: Varints longer than this are corrupt, not merely large.
_MAX_VARINT_BYTES = 10
#: Big-int payloads longer than this are corrupt (8 Mbit of integer).
_MAX_INTBYTES = 1 << 20



#: The preset intern table: strings and flat step lists that recur
#: across store entries and wire messages (HTML tag names, DSL action
#: kinds, payload field keys, and the step patterns the virtual suite
#: and real list/table DOMs produce).  Index order is frozen: entry i
#: encodes as ``0x0B varint(i)``.  Changing, reordering, or removing
#: entries changes wire bytes and requires a FORMAT_VERSION bump —
#: append-only growth is the safe evolution.  List entries are stored
#: as tuples; the decoder materializes a fresh list per reference so
#: callers can never mutate the dictionary through a decoded value.
_DICTIONARY: tuple = (
    'v',
    'a',
    'ScrapeText',
    'e',
    'sel',
    'div',
    'html',
    'body',
    'li',
    'ul',
    'Click',
    'GoBack',
    'class',
    'story',
    'h2',
    'span',
    'b',
    'x',
    'ok',
    'ScrapeLink',
    'ExtractURL',
    'SendKeys',
    'EnterData',
    't',
    'table',
    'tbody',
    'tr',
    'td',
    'th',
    'ol',
    'p',
    'h1',
    'h3',
    'section',
    'article',
    'input',
    'button',
    'form',
    'nav',
    'id',
    (False, 'html', None, None, False, 1),
    (False, 'body', None, None, False, 1),
    (False, 'div', None, None, False, 1),
    (False, 'div', None, None, False, 2),
    (False, 'ul', None, None, False, 1),
    (True, 'ul', None, None, False, 1),
    (False, 'li', None, None, False, 1),
    ('GoBack', None, None, None),
    (False, 'li', None, None, False, 2),
    (False, 'li', None, None, False, 3),
    (False, 'li', None, None, False, 4),
    (False, 'li', None, None, False, 5),
    (True, 'a', None, None, False, 1),
    (True, 'li', None, None, False, 3),
    (True, 'li', None, None, False, 4),
    (True, 'li', None, None, False, 5),
    (True, 'li', None, None, False, 2),
    (True, 'div', None, None, False, 1),
    (True, 'div', None, None, False, 2),
    (True, 'ul', None, None, False, 2),
    (True, 'li', None, None, False, 1),
    (True, 'a', None, None, False, 2),
    (True, 'div', 'class', 'story', False, 1),
    (True, 'h2', None, None, False, 1),
    (False, 'a', None, None, False, 1),
    (True, 'div', 'class', 'story', False, 2),
    (False, 'div', 'class', 'story', False, 1),
    (False, 'div', 'class', 'story', False, 2),
    (True, 'a', None, None, False, 3),
    (True, 'div', 'class', 'story', False, 3),
    (False, 'div', 'class', 'story', False, 3),
    (True, 'a', None, None, False, 4),
    (True, 'div', 'class', 'story', False, 4),
    (False, 'div', 'class', 'story', False, 4),
    (True, 'a', None, None, False, 5),
    (True, 'div', 'class', 'story', False, 5),
    (False, 'div', 'class', 'story', False, 5),
    (True, 'a', None, None, False, 6),
    (True, 'div', 'class', 'story', False, 6),
    (False, 'div', 'class', 'story', False, 6),
    (True, 'a', None, None, False, 7),
    (True, 'div', 'class', 'story', False, 7),
    (False, 'div', 'class', 'story', False, 7),
    (True, 'div', None, None, False, 3),
    (True, 'a', None, None, False, 8),
    (True, 'div', 'class', 'story', False, 8),
    (False, 'div', 'class', 'story', False, 8),
    (False, 'div', None, None, False, 3),
    (True, 'a', None, None, False, 9),
    (True, 'div', 'class', 'story', False, 9),
    (False, 'div', 'class', 'story', False, 9),
    (True, 'ul', None, None, False, 3),
    (True, 'a', None, None, False, 10),
    (True, 'div', 'class', 'story', False, 10),
    (False, 'div', 'class', 'story', False, 10),
    (True, 'a', None, None, False, 11),
    (True, 'div', 'class', 'story', False, 11),
    (False, 'div', 'class', 'story', False, 11),
    (True, 'a', None, None, False, 12),
    (True, 'div', 'class', 'story', False, 12),
    (False, 'div', 'class', 'story', False, 12),
    (True, 'a', None, None, False, 13),
    (True, 'div', 'class', 'story', False, 13),
    (False, 'div', 'class', 'story', False, 13),
    (True, 'b', None, None, False, 1),
    (True, 'li', None, None, False, 6),
    (True, 'span', None, None, False, 1),
    (True, 'a', None, None, False, 14),
    (True, 'div', 'class', 'story', False, 14),
    (False, 'div', 'class', 'story', False, 14),
    (True, 'li', None, None, False, 7),
    (False, 'span', None, None, False, 1),
    (True, 'li', None, None, False, 8),
    (True, 'a', None, None, False, 15),
    (True, 'div', 'class', 'story', False, 15),
    (False, 'div', 'class', 'story', False, 15),
    (False, 'b', None, None, False, 1),
    (True, 'li', None, None, False, 9),
    (True, 'a', None, None, False, 16),
    (True, 'div', 'class', 'story', False, 16),
    (False, 'div', 'class', 'story', False, 16),
    (True, 'a', None, None, False, 17),
    (True, 'div', 'class', 'story', False, 17),
    (False, 'div', 'class', 'story', False, 17),
    (True, 'li', None, None, False, 10),
    (True, 'a', None, None, False, 18),
    (True, 'div', 'class', 'story', False, 18),
    (False, 'div', 'class', 'story', False, 18),
    (True, 'li', None, None, False, 11),
    (True, 'li', None, None, False, 12),
    (True, 'a', None, None, False, 19),
    (True, 'div', 'class', 'story', False, 19),
    (False, 'div', 'class', 'story', False, 19),
    (True, 'li', None, None, False, 13),
    (True, 'b', None, None, False, 2),
    (True, 'li', None, None, False, 14),
    (True, 'li', None, None, False, 15),
    (True, 'b', None, None, False, 3),
    ('ExtractURL', None, None, None),)

#: Encode-side lookups: string value -> index, flat-list key -> index.
_DICT_STR: dict = {
    v: i for i, v in enumerate(_DICTIONARY) if type(v) is str
}
_DICT_LIST: dict = {
    (tuple(map(type, v)), v): i
    for i, v in enumerate(_DICTIONARY)
    if type(v) is tuple
}
_DICT_LEN = len(_DICTIONARY)

# The string-ref fast path emits a single index byte; keep all string
# entries in the one-byte varint range (lists may spill past it).
assert max(_DICT_STR.values()) < 0x80

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from




#: Stack-frame marker: the completed container was a dict (no table slot).
_DICT_FRAME = object()


def encode_value(value) -> bytes:
    """One JSON-shaped value as canonical binary bytes (with header).

    A single iterative loop with an explicit stack: this codec races
    the C ``json`` module, so there are no per-element function calls
    and every hot sub-encoding (refs, small ints, varints) is inlined.

    Two intern layers feed the list table.  Identity first: any list
    *object* already encoded — flat or nested — becomes a two-byte ref,
    so payload builders that share sub-lists (``entry_to_payload``
    reuses one list per distinct step) get refs for free.  Then
    structure, for *flat* lists only (no nested containers, no floats):
    those are the redundant ones — selector steps, element paths, env
    triples — and their keys build entirely in C (``tuple(map(type,
    v))`` + ``tuple(v)``; the type tuple disambiguates ``True``/``1``,
    which hash equal but encode differently; floats are excluded
    because ``0.0``/``-0.0`` collide even with the type guard).  The
    output is deterministic for a given object graph, and
    ``encode(decode(b)) == b``: decode aliases exactly where refs were
    emitted, so re-encode takes the identity path to the same slots.
    """
    buf = bytearray(HEADER)
    append = buf.append
    strings: dict = {}
    lists: dict = {}
    idlists: dict = {}
    nlists = 0
    #: Iterators of still-open containers, innermost last.
    stack: list = []
    #: Parallel stack: the intern key to register when a container
    #: closes — None for uninternable lists, _DICT_FRAME for dicts.
    frames: list = []
    items = iter((value,))
    while True:
        # branch order is token frequency on real store corpora: list
        # occurrences (refs + inline) outnumber every scalar kind
        for item in items:
            tp = type(item)
            if tp is list:
                key = None
                dref = None
                ref = idlists.get(id(item))
                if ref is None:
                    types = tuple(map(type, item))
                    if not (
                        list in types or dict in types or float in types
                    ):
                        key = (types, tuple(item))
                        try:
                            dref = _DICT_LIST.get(key)
                            if dref is None:
                                ref = lists.get(key)
                            else:
                                # remember dictionary hits by identity
                                # too: negative slots mean _T_DREF
                                idlists[id(item)] = -dref - 1
                        except TypeError:
                            # hashable-check by use: odd elements fall
                            # through to the inline path and fail there
                            key = None
                elif ref < 0:
                    dref = -ref - 1
                    ref = None
                if dref is not None:
                    append(_T_DREF)
                    if dref < 0x80:
                        append(dref)
                    else:
                        while dref > 0x7F:
                            append((dref & 0x7F) | 0x80)
                            dref >>= 7
                        append(dref)
                elif ref is not None:
                    append(_T_LIST_REF)
                    if ref < 0x80:
                        append(ref)
                    else:
                        while ref > 0x7F:
                            append((ref & 0x7F) | 0x80)
                            ref >>= 7
                        append(ref)
                else:
                    count = len(item)
                    append(_T_LIST)
                    if count < 0x80:
                        append(count)
                    else:
                        while count > 0x7F:
                            append((count & 0x7F) | 0x80)
                            count >>= 7
                        append(count)
                    if count:
                        stack.append(items)
                        frames.append((key, item))
                        items = iter(item)
                        break
                    # an empty list completes at once: register in
                    # stream order, exactly where the decoder appends
                    if key is not None:
                        lists[key] = nlists
                    idlists[id(item)] = nlists
                    nlists += 1
            elif tp is str:
                ref = _DICT_STR.get(item)
                if ref is not None:
                    append(_T_DREF)
                    append(ref)
                elif (ref := strings.get(item)) is not None:
                    append(_T_STR_REF)
                    if ref < 0x80:
                        append(ref)
                    else:
                        while ref > 0x7F:
                            append((ref & 0x7F) | 0x80)
                            ref >>= 7
                        append(ref)
                else:
                    raw = item.encode("utf-8")
                    length = len(raw)
                    append(_T_STR)
                    if length < 0x80:
                        append(length)
                    else:
                        while length > 0x7F:
                            append((length & 0x7F) | 0x80)
                            length >>= 7
                        append(length)
                    buf += raw
                    strings[item] = len(strings)
            elif item is None:
                append(_T_NONE)
            elif tp is int:
                if -_INT_VARINT_BOUND <= item < _INT_VARINT_BOUND:
                    # zigzag: sign in the low bit keeps varints short
                    n = (item << 1) if item >= 0 else ((-item << 1) - 1)
                    append(_T_INT)
                    if n < 0x80:
                        append(n)
                    else:
                        while n > 0x7F:
                            append((n & 0x7F) | 0x80)
                            n >>= 7
                        append(n)
                else:
                    raw = item.to_bytes(
                        (item.bit_length() + 8) // 8, "big", signed=True
                    )
                    length = len(raw)
                    append(_T_INTBYTES)
                    if length < 0x80:
                        append(length)
                    else:
                        while length > 0x7F:
                            append((length & 0x7F) | 0x80)
                            length >>= 7
                        append(length)
                    buf += raw
            elif tp is bool:
                append(_T_TRUE if item else _T_FALSE)
            elif tp is dict:
                for key in item:
                    if type(key) is not str:
                        raise ValueError(
                            "binary codec requires str dict keys, "
                            f"got {type(key).__name__}"
                        )
                count = len(item)
                append(_T_DICT)
                if count < 0x80:
                    append(count)
                else:
                    while count > 0x7F:
                        append((count & 0x7F) | 0x80)
                        count >>= 7
                    append(count)
                if count:
                    stack.append(items)
                    frames.append(_DICT_FRAME)
                    pairs = sorted(item.items())
                    items = iter(
                        [part for pair in pairs for part in pair]
                    )
                    break
            elif tp is float:
                append(_T_FLOAT)
                buf += _pack_double(item)
            else:
                raise ValueError(
                    f"binary codec cannot encode {type(item).__name__}"
                )
        else:
            # items exhausted without a push: the innermost container
            # just closed — register it post-order, mirroring the
            # decoder's completion-time table append
            if not stack:
                return bytes(buf)
            items = stack.pop()
            frame = frames.pop()
            if frame is not _DICT_FRAME:
                key, obj = frame
                if key is not None:
                    lists[key] = nlists
                idlists[id(obj)] = nlists
                nlists += 1


#: Stack-frame sentinel: a dict slot waiting for its next key.
_NEED_KEY = object()


def decode_value(payload: bytes):
    """Decode canonical binary bytes back to the value.

    Raises :class:`ProtocolError` on any corruption — truncation, bad
    refs, unknown tags, trailing garbage — never any other exception.
    The same iterative single-loop shape as :func:`encode_value`, for
    the same reason: refs must cost two byte reads and a table index.
    """
    if len(payload) < 2 or payload[0] != MAGIC:
        raise ProtocolError("not a binary payload (bad magic)")
    if payload[1] != FORMAT_VERSION:
        raise ProtocolError(
            f"unsupported binary format version {payload[1]}"
        )
    data = payload
    end = len(data)
    pos = 2
    strings: list = []
    lists: list = []
    #: Saved *outer* frames: (append_method, remaining, container, key).
    #: The innermost frame lives in locals — ``cappend`` is the bound
    #: ``list.append`` when it is a list (the hot case by far), None
    #: for dicts and the root, so attaching a value to a list costs a
    #: call and a decrement instead of stack indexing.
    stack: list = []
    cappend = None
    ccontainer = None
    cremaining = 1
    ckey = _NEED_KEY
    while True:
        if pos >= end:
            raise ProtocolError(
                f"corrupt binary payload at byte {pos}: truncated value"
            )
        tag = data[pos]
        pos += 1
        if tag == _T_STR_REF or tag == _T_LIST_REF:
            if pos < end and data[pos] < 0x80:
                ref = data[pos]
                pos += 1
            else:
                ref = 0
                shift = 0
                start = pos
                while True:
                    if pos >= end:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "truncated varint"
                        )
                    byte = data[pos]
                    pos += 1
                    ref |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if pos - start > _MAX_VARINT_BYTES:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "varint too long"
                        )
            table = strings if tag == _T_STR_REF else lists
            if ref >= len(table):
                raise ProtocolError(
                    f"corrupt binary payload at byte {pos}: "
                    f"ref {ref} out of range"
                )
            value = table[ref]
        elif tag == _T_DREF:
            if pos < end and data[pos] < 0x80:
                ref = data[pos]
                pos += 1
            else:
                ref = 0
                shift = 0
                start = pos
                while True:
                    if pos >= end:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "truncated varint"
                        )
                    byte = data[pos]
                    pos += 1
                    ref |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if pos - start > _MAX_VARINT_BYTES:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "varint too long"
                        )
            if ref >= _DICT_LEN:
                raise ProtocolError(
                    f"corrupt binary payload at byte {pos}: "
                    f"dictionary ref {ref} out of range"
                )
            value = _DICTIONARY[ref]
            if type(value) is not str:
                # a fresh list per reference: decoded values must never
                # alias the (module-lifetime) dictionary tuples
                value = list(value)
        elif tag == _T_INT:
            if pos < end and data[pos] < 0x80:
                raw = data[pos]
                pos += 1
            else:
                raw = 0
                shift = 0
                start = pos
                while True:
                    if pos >= end:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "truncated varint"
                        )
                    byte = data[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if pos - start > _MAX_VARINT_BYTES:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "varint too long"
                        )
            value = (raw >> 1) ^ -(raw & 1)
        elif tag == _T_NONE:
            value = None
        elif tag == _T_FALSE:
            value = False
        elif tag == _T_TRUE:
            value = True
        elif tag == _T_STR or tag == _T_INTBYTES:
            if pos < end and data[pos] < 0x80:
                length = data[pos]
                pos += 1
            else:
                length = 0
                shift = 0
                start = pos
                while True:
                    if pos >= end:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "truncated varint"
                        )
                    byte = data[pos]
                    pos += 1
                    length |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if pos - start > _MAX_VARINT_BYTES:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "varint too long"
                        )
            if length > end - pos:
                raise ProtocolError(
                    f"corrupt binary payload at byte {pos}: "
                    "length overruns payload"
                )
            if tag == _T_STR:
                try:
                    value = data[pos : pos + length].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(
                        f"corrupt binary payload at byte {pos}: "
                        f"bad UTF-8: {exc}"
                    ) from exc
                strings.append(value)
            else:
                if length > _MAX_INTBYTES:
                    raise ProtocolError(
                        f"corrupt binary payload at byte {pos}: "
                        "big int implausibly long"
                    )
                value = int.from_bytes(
                    data[pos : pos + length], "big", signed=True
                )
            pos += length
        elif tag == _T_LIST or tag == _T_DICT:
            if pos < end and data[pos] < 0x80:
                count = data[pos]
                pos += 1
            else:
                count = 0
                shift = 0
                start = pos
                while True:
                    if pos >= end:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "truncated varint"
                        )
                    byte = data[pos]
                    pos += 1
                    count |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if pos - start > _MAX_VARINT_BYTES:
                        raise ProtocolError(
                            f"corrupt binary payload at byte {pos}: "
                            "varint too long"
                        )
            if count > end - pos:
                raise ProtocolError(
                    f"corrupt binary payload at byte {pos}: "
                    "count overruns payload"
                )
            if tag == _T_LIST:
                value = []
                if count:
                    stack.append((cappend, cremaining, ccontainer, ckey))
                    ccontainer = value
                    cappend = value.append
                    cremaining = count
                    ckey = _NEED_KEY
                    continue
                lists.append(value)
            else:
                value = {}
                if count:
                    stack.append((cappend, cremaining, ccontainer, ckey))
                    ccontainer = value
                    cappend = None
                    cremaining = count
                    ckey = _NEED_KEY
                    continue
        elif tag == _T_FLOAT:
            if end - pos < 8:
                raise ProtocolError(
                    f"corrupt binary payload at byte {pos}: truncated float"
                )
            value = _unpack_double(data, pos)[0]
            pos += 8
        else:
            raise ProtocolError(
                f"corrupt binary payload at byte {pos}: "
                f"unknown tag 0x{tag:02x}"
            )
        # attach the completed value, unwinding containers that filled
        while True:
            if cappend is not None:
                cappend(value)
                cremaining -= 1
                if cremaining:
                    break
                # completion-time registration: the encoder's
                # post-order intern indices line up with this append
                lists.append(ccontainer)
                value = ccontainer
                cappend, cremaining, ccontainer, ckey = stack.pop()
            elif ccontainer is None:
                if pos != end:
                    raise ProtocolError(
                        f"{end - pos} trailing bytes after value"
                    )
                return value
            elif ckey is _NEED_KEY:
                if type(value) is not str:
                    raise ProtocolError(
                        f"corrupt binary payload at byte {pos}: "
                        "non-string dict key"
                    )
                ckey = value
                break
            else:
                ccontainer[ckey] = value
                ckey = _NEED_KEY
                cremaining -= 1
                if cremaining:
                    break
                value = ccontainer
                cappend, cremaining, ccontainer, ckey = stack.pop()


class BinaryCodec(Codec):
    """The compact length-prefixed binary format with intern tables."""

    name = "binary"
    content_type = "application/x-repro-binary"

    def encode(self, message) -> bytes:
        raw = encode_value(to_wire(message))
        _publish("binary", "encode", len(raw))
        return raw

    def decode(self, payload: bytes):
        wire = decode_value(payload)
        _publish("binary", "decode", len(payload))
        return from_wire(wire)

    def encode_payload(self, value) -> bytes:
        raw = encode_value(value)
        _publish("binary", "encode_payload", len(raw))
        return raw

    def decode_payload(self, payload: bytes):
        value = decode_value(payload)
        _publish("binary", "decode_payload", len(payload))
        return value


#: The codec every wire surface uses by default.  JSON stays the wire
#: default so the committed schema and golden fixtures remain stable;
#: the store defaults to binary (see ``service/backends.py``).
DEFAULT_CODEC = JsonCodec()

#: Every codec a peer may negotiate, by name.
CODECS: dict[str, Codec] = {
    codec.name: codec for codec in (JsonCodec(), BinaryCodec())
}


def resolve_codec(name: Optional[str] = None, default: str = "json") -> Codec:
    """The codec selected by ``name``, ``$REPRO_CODEC``, or ``default``."""
    chosen = name or os.environ.get("REPRO_CODEC") or default
    try:
        return CODECS[chosen]
    except KeyError:
        raise ValueError(
            f"unknown codec {chosen!r} (have: {', '.join(sorted(CODECS))})"
        ) from None


def codec_for_content_type(content_type: Optional[str]) -> Optional[Codec]:
    """The codec whose media type matches, or None."""
    if not content_type:
        return None
    media = content_type.split(";", 1)[0].strip().lower()
    for codec in CODECS.values():
        if codec.content_type == media:
            return codec
    return None


def sniff_codec(payload: bytes) -> Codec:
    """The codec that produced ``payload``, by magic byte.

    Binary payloads start with 0xC3; no JSON document's first byte is
    ≥ 0x80, so the sniff is unambiguous.
    """
    if payload[:1] == HEADER[:1]:
        return CODECS["binary"]
    return CODECS["json"]
