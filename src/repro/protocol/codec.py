"""The protocol codec seam.

A :class:`Codec` turns protocol messages into bytes and back.  The
shipped implementation is :class:`JsonCodec` — canonical JSON (sorted
keys, compact separators), so every message has exactly one encoding
and golden wire fixtures are byte-stable.  This seam is where the
ROADMAP's binary payload codec lands later: the session, server, and
client layers speak :class:`Codec`, never ``json`` directly.
"""

from __future__ import annotations

import json

from repro.protocol.messages import ProtocolError, from_wire, to_wire


class Codec:
    """Encodes protocol messages to bytes and decodes them back."""

    #: Short name surfaced in telemetry and the schema document.
    name: str = "codec"
    #: The HTTP content type of this codec's payloads.
    content_type: str = "application/octet-stream"

    def encode(self, message) -> bytes:
        """The canonical byte encoding of one message."""
        raise NotImplementedError

    def decode(self, payload: bytes):
        """Decode one message; raises :class:`ProtocolError` on bad wire."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def roundtrip(self, message):
        """Encode → decode → re-encode; assert byte stability.

        Returns the decoded message.  This is the schema round-trip
        validation used by tests and by ``JsonCodec.selfcheck``-style
        assertions: a message that cannot survive its own wire format
        must never leave the process.
        """
        encoded = self.encode(message)
        decoded = self.decode(encoded)
        again = self.encode(decoded)
        if again != encoded:
            raise ProtocolError(
                f"{type(message).__name__} does not round-trip byte-stably"
            )
        return decoded


class JsonCodec(Codec):
    """Canonical JSON: sorted keys, compact separators, UTF-8."""

    name = "json"
    content_type = "application/json"

    def encode(self, message) -> bytes:
        return json.dumps(
            to_wire(message), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def decode(self, payload: bytes):
        try:
            wire = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable payload: {exc}") from exc
        return from_wire(wire)


#: The codec every surface uses today.
DEFAULT_CODEC = JsonCodec()
