"""The unified session core every surface drives.

One :class:`Session` is one user's interactive PBD loop (the paper's
§5/§6 per-action round trip): a trace of demonstrated actions with
their snapshots, an incremental
:class:`~repro.synth.synthesizer.Synthesizer` carrying the rewrite
store across calls, and the latest proposal.  The three historical
surfaces are all drivers over it:

* the service's :class:`~repro.service.sessions.SessionManager` holds
  one per live demonstration and speaks protocol messages over it;
* the paper-loop simulator (:class:`repro.interact.InteractiveSession`)
  drives one against a virtual browser via :meth:`synthesize_over`;
* worker migration serializes one with :meth:`export_snapshot` and
  resumes it elsewhere with :meth:`Session.from_snapshot`.

Export/import exactness: a snapshot stores the full trace, and import
*replays* it through a fresh synthesizer — the same incremental calls
the original worker made, over value-addressed state — so the resumed
session produces byte-identical subsequent candidate lists.  (As
always, determinism assumes the per-call synthesis budget was not the
binding constraint; the migration tests and bench run with generous
timeouts.)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, fields as dataclass_fields
from typing import Optional, Sequence

from repro.analysis.report import analyze_program
from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.lang.ast import Program
from repro.lang.data import DataSource, EMPTY_DATA
from repro.lang.pretty import format_program
from repro.protocol.messages import (
    Accepted,
    AnalysisSummary,
    CallStats,
    Candidate,
    CandidateList,
    ProgramProposed,
    Rejected,
    SessionClosed,
    SessionSnapshot,
    SessionTotals,
)
from repro.synth.config import DEFAULT_CONFIG, SynthesisConfig
from repro.synth.synthesizer import SynthesisResult, Synthesizer
from repro.util.errors import ReproError


class SessionError(ReproError):
    """Bad trace shape or an operation the session state cannot serve."""


class UnknownSessionError(SessionError):
    """The session id names no live session on this worker."""


class SessionClosedError(SessionError):
    """The session was closed, migrated away, or evicted."""


@dataclass
class SessionStats:
    """Aggregated telemetry of one session (or a whole manager)."""

    calls: int = 0
    actions: int = 0
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cross_session_hits: int = 0
    warm_start_hits: int = 0
    timed_out_calls: int = 0
    rejections: int = 0

    def absorb(self, result: SynthesisResult, elapsed: float) -> None:
        self.calls += 1
        self.elapsed += elapsed
        self.cache_hits += result.stats.cache_hits
        self.cache_misses += result.stats.cache_misses
        self.cross_session_hits += result.stats.cache_cross_session_hits
        self.warm_start_hits += result.stats.cache_warm_hits
        self.timed_out_calls += result.stats.timed_out

    def merge(self, other: "SessionStats") -> None:
        for field in dataclass_fields(SessionStats):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))

    # ------------------------------------------------------------------
    def totals(self) -> SessionTotals:
        """The wire form (:class:`~repro.protocol.messages.SessionTotals`)."""
        return SessionTotals(
            calls=self.calls,
            actions=self.actions,
            elapsed=round(self.elapsed, 6),
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cross_session_hits=self.cross_session_hits,
            warm_start_hits=self.warm_start_hits,
            timed_out_calls=self.timed_out_calls,
            rejections=self.rejections,
        )

    @classmethod
    def from_totals(cls, totals: SessionTotals) -> "SessionStats":
        return cls(
            calls=totals.calls,
            actions=totals.actions,
            elapsed=totals.elapsed,
            cache_hits=totals.cache_hits,
            cache_misses=totals.cache_misses,
            cross_session_hits=totals.cross_session_hits,
            warm_start_hits=totals.warm_start_hits,
            timed_out_calls=totals.timed_out_calls,
            rejections=totals.rejections,
        )

    def to_json(self) -> dict:
        return {
            "calls": self.calls,
            "actions": self.actions,
            "elapsed": round(self.elapsed, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cross_session_hits": self.cross_session_hits,
            "warm_start_hits": self.warm_start_hits,
            "timed_out_calls": self.timed_out_calls,
            "rejections": self.rejections,
        }


def _analysis_summary(program: Program, data: DataSource) -> AnalysisSummary:
    """The wire analysis block for one candidate program.

    Structural domains only — no snapshot-resolution checks: the block
    rides every proposal, so it must stay O(program size), never
    O(trace size).
    """
    analysis = analyze_program(program, data)
    return AnalysisSummary(
        effect=analysis.effect.classification,
        safe_replay=analysis.effect.safe_to_replay,
        termination=analysis.termination,
        cost_min=analysis.cost.lo,
        cost_max=analysis.cost.hi,
        fragility=analysis.fragility,
    )


class Session:
    """One live demonstration: trace so far + the synthesizer serving it."""

    def __init__(
        self,
        sid: str,
        data: DataSource,
        config: SynthesisConfig = DEFAULT_CONFIG,
        timeout: Optional[float] = None,
        synthesizer: Optional[Synthesizer] = None,
    ) -> None:
        self.sid = sid
        self.data = data
        self.config = config
        self.timeout = timeout
        self.lock = threading.Lock()
        self.synthesizer = synthesizer if synthesizer is not None else Synthesizer(data, config)
        self.actions: list[Action] = []
        self.snapshots: list[DOMNode] = []
        self.last_result: Optional[SynthesisResult] = None
        self.accepted_index: Optional[int] = None
        self.stats = SessionStats()
        self.created = time.time()
        # idle tracking is monotonic: a wall-clock step (NTP, VM
        # resume) must not mass-evict live sessions — only `created`
        # (serialized in snapshots) needs wall time
        self.last_used = time.monotonic()
        self.closed = False
        #: Set while a migration is in flight: the session refuses new
        #: work (409) but is not torn down yet — an aborted migration
        #: clears it and the session resumes serving.
        self.migrating = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, snapshot: DOMNode) -> None:
        """Install the initial page snapshot (``π₁``)."""
        if self.snapshots:
            raise SessionError(f"session {self.sid} already has its initial snapshot")
        self.snapshots.append(snapshot)

    def touch(self) -> None:
        """Refresh the idle clock (any successful interaction)."""
        self.last_used = time.monotonic()

    def _require_open(self) -> None:
        if self.closed:
            raise SessionClosedError(f"session {self.sid} is closed")
        if self.migrating:
            raise SessionClosedError(
                f"session {self.sid} is being migrated; retry against its new home"
            )

    def close(self) -> SessionClosed:
        """Close the session; returns its final telemetry."""
        if not self.closed:
            self.closed = True
            self.synthesizer.close()
        return SessionClosed(session=self.sid, stats=self.stats.totals())

    # ------------------------------------------------------------------
    # The per-action round trip
    # ------------------------------------------------------------------
    def record(self, action: Action, snapshot: DOMNode) -> SynthesisResult:
        """Append one demonstrated step and re-synthesize incrementally.

        ``snapshot`` is the page *after* the action (the recorder ships
        ``π_{k+1}``); the initial snapshot arrived via :meth:`start`.
        """
        self._require_open()
        if not self.snapshots:
            raise SessionError(f"session {self.sid} has no initial snapshot")
        self.actions.append(action)
        self.snapshots.append(snapshot)
        started = time.perf_counter()
        try:
            result = self.synthesizer.synthesize(
                self.actions, self.snapshots, timeout=self.timeout
            )
        except Exception:
            # the step was not recorded: roll the trace back so a retry
            # (or the next action) does not synthesize over a
            # demonstration containing a step the caller saw rejected
            self.actions.pop()
            self.snapshots.pop()
            raise
        self._absorb(result, time.perf_counter() - started)
        return result

    def synthesize_over(
        self, actions: Sequence[Action], snapshots: Sequence[DOMNode]
    ) -> SynthesisResult:
        """Adopt an externally grown trace and synthesize over it.

        The browser-driven path (:mod:`repro.interact`): the browser
        owns the recorded trace, the session owns the synthesizer and
        the telemetry.  Called with the same trace twice, it behaves
        exactly like calling the synthesizer twice — which is what the
        paper loop's per-phase re-query does.
        """
        self._require_open()
        started = time.perf_counter()
        result = self.synthesizer.synthesize(actions, snapshots, timeout=self.timeout)
        self.actions = list(actions)
        self.snapshots = list(snapshots)
        self._absorb(result, time.perf_counter() - started)
        return result

    def _absorb(self, result: SynthesisResult, elapsed: float) -> None:
        self.stats.absorb(result, elapsed)
        self.stats.actions = len(self.actions)
        self.last_result = result
        self.touch()

    # ------------------------------------------------------------------
    # Protocol views of the current state
    # ------------------------------------------------------------------
    def proposal(self) -> ProgramProposed:
        """The :class:`ProgramProposed` for the latest synthesis call."""
        result = self.last_result
        stats = result.stats if result is not None else None
        return ProgramProposed(
            session=self.sid,
            actions=len(self.actions),
            programs=len(result.programs) if result is not None else 0,
            predictions=tuple(self.predictions()),
            stats=CallStats(
                elapsed=round(stats.elapsed, 6) if stats else 0.0,
                timed_out=bool(stats.timed_out) if stats else False,
                cache_hits=stats.cache_hits if stats else 0,
                cache_misses=stats.cache_misses if stats else 0,
                cross_session_hits=stats.cache_cross_session_hits if stats else 0,
                warm_start_hits=stats.cache_warm_hits if stats else 0,
                backend=stats.cache_backend if stats else "memory",
            ),
            analysis=(
                _analysis_summary(result.programs[0], self.data)
                if result is not None and result.programs
                else None
            ),
        )

    def candidate_list(self) -> CandidateList:
        """The current ranked candidates as a :class:`CandidateList`."""
        programs = self.last_result.programs if self.last_result is not None else []
        return CandidateList(
            session=self.sid,
            candidates=tuple(
                Candidate(
                    index=index,
                    program=format_program(program),
                    statements=len(program),
                    analysis=_analysis_summary(program, self.data),
                )
                for index, program in enumerate(programs)
            ),
        )

    def predictions(self) -> list[str]:
        """The distinct predicted next actions, rendered, in rank order."""
        if self.last_result is None:
            return []
        return [str(action) for action in self.last_result.predictions]

    def accept(self, index: int = 0, require_safe_replay: bool = False) -> Accepted:
        """Mark one candidate accepted; returns its rendered program.

        With ``require_safe_replay``, a candidate whose static effect
        summary says replay mutates page or user state (keystrokes,
        form entries, downloads) is refused — the caller must replay it
        under explicit supervision instead of accepting it for
        automatic re-runs.
        """
        self._require_open()
        if self.last_result is None or not self.last_result.programs:
            raise SessionError(f"session {self.sid} has no candidate programs")
        programs = self.last_result.programs
        if not 0 <= index < len(programs):
            raise SessionError(
                f"candidate index {index} out of range (0..{len(programs) - 1})"
            )
        if require_safe_replay:
            summary = _analysis_summary(programs[index], self.data)
            if not summary.safe_replay:
                raise SessionError(
                    f"candidate {index} is {summary.effect}: refusing "
                    "auto-replay of a side-effecting program "
                    "(accept without require_safe_replay to override)"
                )
        self.accepted_index = index
        self.touch()
        return Accepted(
            session=self.sid, index=index, program=format_program(programs[index])
        )

    def reject(self) -> Rejected:
        """The user rejected every current proposal (back to demo)."""
        self._require_open()
        self.stats.rejections += 1
        self.touch()
        return Rejected(session=self.sid, rejections=self.stats.rejections)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def export_snapshot(self) -> SessionSnapshot:
        """The session's full serializable state (see module docstring)."""
        return SessionSnapshot(
            session=self.sid,
            created=self.created,
            timeout=self.timeout,
            # only the empty-dict default collapses to null: falsy but
            # meaningful sources ([], 0, "") must survive migration or
            # replay resolves value paths differently
            data=None if self.data.value == {} else self.data.value,
            actions=tuple(self.actions),
            snapshots=tuple(self.snapshots),
            accepted_index=self.accepted_index,
            stats=self.stats.totals(),
        )

    @classmethod
    def from_snapshot(
        cls,
        snapshot: SessionSnapshot,
        sid: str,
        config: SynthesisConfig = DEFAULT_CONFIG,
    ) -> "Session":
        """Resume an exported session under a (possibly new) local id.

        Replays the trace through a fresh synthesizer — the identical
        sequence of incremental calls the exporting worker made — so the
        rewrite store, the latest proposal, and every *subsequent*
        candidate list are byte-identical to never having migrated.
        The imported telemetry is restored as-is; the replay's own
        engine counters are deliberately dropped (they describe
        migration overhead, not the user's demonstration).
        """
        if (snapshot.actions or snapshot.snapshots) and len(
            snapshot.snapshots
        ) != len(snapshot.actions) + 1:
            raise SessionError(
                f"snapshot needs m+1 DOMs for m actions, got "
                f"{len(snapshot.snapshots)} for {len(snapshot.actions)}"
            )
        data = DataSource(snapshot.data) if snapshot.data is not None else EMPTY_DATA
        session = cls(sid, data, config, timeout=snapshot.timeout)
        session.created = snapshot.created
        if snapshot.snapshots:
            session.start(snapshot.snapshots[0])
            for position, action in enumerate(snapshot.actions):
                session.record(action, snapshot.snapshots[position + 1])
        session.stats = SessionStats.from_totals(snapshot.stats)
        session.accepted_index = snapshot.accepted_index
        session.touch()
        return session
