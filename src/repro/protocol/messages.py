"""Protocol message types and their wire field specs.

One dataclass per message, one declarative field spec per dataclass —
the spec drives *everything*: wire encoding, strict decoding, and the
machine-readable schema (:mod:`repro.protocol.schema`).  A message can
therefore never encode differently from what the committed schema says
without CI noticing.

Wire shape: every message is a JSON object carrying ``"v"``
(:data:`PROTOCOL_VERSION`) and ``"type"`` (the message tag) plus one
key per field.  All fields are always present (``null`` for an absent
optional), so encodings are canonical and byte-stable.  One envelope
key is conditional: ``"trace"`` (added in v3) carries the sender's
``trace_id-span_id`` pair and appears only while a
:mod:`repro.obs.context` trace context is active — with observability
off, encodings are unchanged from v2 modulo the version integer.  DOM snapshots
and actions reuse the recorded-demonstration shapes of
:mod:`repro.io`; a :class:`SessionSnapshot` stores its DOM trace as a
deduplicated pool plus per-position references, exactly like a stored
recording.

Versioning policy: ``PROTOCOL_VERSION`` is a single integer; a decoder
accepts exactly its own version and rejects everything else with
:class:`ProtocolError` — version negotiation is the client's job (the
server advertises its version on ``/healthz``).  Any field addition,
removal, or retyping bumps the version and must land together with a
regenerated ``schema.json`` (the ``protocol-compat`` CI step diffs it).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Optional

from repro import io as repro_io
from repro.dom.node import DOMNode
from repro.lang.actions import Action
from repro.obs import context as obs_context
from repro.util.errors import ParseError, ReproError

#: The wire version every message carries.  Bump on any wire change.
PROTOCOL_VERSION = 3


class ProtocolError(ReproError):
    """A malformed, unknown, or version-incompatible wire message."""


# ----------------------------------------------------------------------
# Message dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallStats:
    """Per-call synthesis telemetry riding a :class:`ProgramProposed`."""

    elapsed: float = 0.0
    timed_out: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cross_session_hits: int = 0
    warm_start_hits: int = 0
    backend: str = "memory"


@dataclass(frozen=True)
class SessionTotals:
    """Aggregated session telemetry (rides closes and snapshots)."""

    calls: int = 0
    actions: int = 0
    elapsed: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cross_session_hits: int = 0
    warm_start_hits: int = 0
    timed_out_calls: int = 0
    rejections: int = 0


@dataclass(frozen=True)
class AnalysisSummary:
    """The static-analysis verdict block riding proposals and candidates.

    The wire form of :meth:`repro.analysis.report.ProgramAnalysis.summary_json`:
    effect classification (``read-only`` / ``navigating`` / ``mutating``),
    whether auto-replay is side-effect-safe, the termination verdict
    (``terminating`` / ``progress`` / ``unknown``), the symbolic
    replay-cost interval (``cost_max`` null = unbounded), and the worst
    selector fragility score.  Added in protocol v2.
    """

    effect: str
    safe_replay: bool
    termination: str
    cost_min: int
    cost_max: Optional[int]
    fragility: int


@dataclass(frozen=True)
class Candidate:
    """One ranked candidate program, rendered for the wire."""

    index: int
    program: str
    statements: int
    analysis: Optional[AnalysisSummary] = None


@dataclass(frozen=True)
class CreateSession:
    """Open a session on the initial page snapshot (client → server)."""

    snapshot: DOMNode
    data: Optional[Any] = None  # raw JSON value of the DataSource
    timeout: Optional[float] = None


@dataclass(frozen=True)
class SessionCreated:
    """A session id minted for a :class:`CreateSession` (server → client)."""

    session: str


@dataclass(frozen=True)
class ActionRecorded:
    """One demonstrated step: the action plus the snapshot it produced."""

    session: str
    action: Action
    snapshot: DOMNode


@dataclass(frozen=True)
class ProgramProposed:
    """The synthesizer's answer to one recorded action."""

    session: str
    actions: int
    programs: int
    predictions: tuple[str, ...]
    stats: CallStats
    #: Static analysis of the top-ranked program (None when no program).
    analysis: Optional[AnalysisSummary] = None


@dataclass(frozen=True)
class CandidateList:
    """The session's ranked candidate programs."""

    session: str
    candidates: tuple[Candidate, ...]


@dataclass(frozen=True)
class Accept:
    """The user fixes one candidate program (client → server)."""

    session: str
    index: int = 0


@dataclass(frozen=True)
class Accepted:
    """Acknowledges an :class:`Accept` with the rendered program."""

    session: str
    index: int
    program: str


@dataclass(frozen=True)
class Reject:
    """The user rejects every current proposal (client → server)."""

    session: str


@dataclass(frozen=True)
class Rejected:
    """Acknowledges a :class:`Reject`; carries the running count."""

    session: str
    rejections: int


@dataclass(frozen=True)
class CloseSession:
    """End a session (client → server)."""

    session: str


@dataclass(frozen=True)
class SessionClosed:
    """A closed session's final aggregated telemetry."""

    session: str
    stats: SessionTotals


@dataclass(frozen=True)
class MigrateSession:
    """Move a session off this worker.

    With ``target`` the worker pushes the snapshot to the target
    worker's import endpoint; without, it answers with the
    :class:`SessionSnapshot` for the caller to place.
    """

    session: str
    target: Optional[str] = None


@dataclass(frozen=True)
class Migrated:
    """A session now lives on another worker."""

    session: str
    target: str
    target_session: str


@dataclass(frozen=True)
class ErrorEnvelope:
    """Every non-2xx response: a machine code, a message, the session."""

    code: str
    message: str
    session: Optional[str] = None


@dataclass(frozen=True)
class SessionSnapshot:
    """A session's full serializable state (worker migration).

    ``snapshots`` is the recorded DOM trace (``len(actions) + 1``
    entries); on the wire it is stored as a deduplicated pool plus
    references, since scrape-heavy traces repeat the same page object.
    Importing replays the trace through a fresh synthesizer — the
    rewrite store is value-addressed end to end, so the resumed session
    produces byte-identical subsequent candidates.
    """

    session: str
    created: float
    timeout: Optional[float]
    data: Optional[Any]  # raw JSON value of the DataSource
    actions: tuple[Action, ...]
    snapshots: tuple[DOMNode, ...]
    accepted_index: Optional[int]
    stats: SessionTotals  # carries the rejection count too


# ----------------------------------------------------------------------
# Wire field specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldSpec:
    """One wire field: its name, value kind, and nullability."""

    name: str
    kind: str
    optional: bool = False


def _spec(cls, tag: Optional[str], *fields: FieldSpec) -> "_MessageSpec":
    declared = tuple(field.name for field in dataclass_fields(cls))
    spec_names = tuple(field.name for field in fields)
    if declared != spec_names:  # pragma: no cover - definition-time guard
        raise AssertionError(f"{cls.__name__} spec fields {spec_names} != dataclass {declared}")
    return _MessageSpec(cls, tag, fields)


@dataclass(frozen=True)
class _MessageSpec:
    cls: type
    tag: Optional[str]  # None = struct (nested value, not a top-level message)
    fields: tuple[FieldSpec, ...]


_CALL_STATS_SPEC = _spec(
    CallStats,
    None,
    FieldSpec("elapsed", "float"),
    FieldSpec("timed_out", "bool"),
    FieldSpec("cache_hits", "int"),
    FieldSpec("cache_misses", "int"),
    FieldSpec("cross_session_hits", "int"),
    FieldSpec("warm_start_hits", "int"),
    FieldSpec("backend", "str"),
)

_TOTALS_SPEC = _spec(
    SessionTotals,
    None,
    FieldSpec("calls", "int"),
    FieldSpec("actions", "int"),
    FieldSpec("elapsed", "float"),
    FieldSpec("cache_hits", "int"),
    FieldSpec("cache_misses", "int"),
    FieldSpec("cross_session_hits", "int"),
    FieldSpec("warm_start_hits", "int"),
    FieldSpec("timed_out_calls", "int"),
    FieldSpec("rejections", "int"),
)

_ANALYSIS_SPEC = _spec(
    AnalysisSummary,
    None,
    FieldSpec("effect", "str"),
    FieldSpec("safe_replay", "bool"),
    FieldSpec("termination", "str"),
    FieldSpec("cost_min", "int"),
    FieldSpec("cost_max", "int", optional=True),
    FieldSpec("fragility", "int"),
)

_CANDIDATE_SPEC = _spec(
    Candidate,
    None,
    FieldSpec("index", "int"),
    FieldSpec("program", "str"),
    FieldSpec("statements", "int"),
    FieldSpec("analysis", "analysis", optional=True),
)

_MESSAGE_SPECS: tuple[_MessageSpec, ...] = (
    _spec(
        CreateSession,
        "create_session",
        FieldSpec("snapshot", "dom"),
        FieldSpec("data", "json", optional=True),
        FieldSpec("timeout", "float", optional=True),
    ),
    _spec(SessionCreated, "session_created", FieldSpec("session", "str")),
    _spec(
        ActionRecorded,
        "action_recorded",
        FieldSpec("session", "str"),
        FieldSpec("action", "action"),
        FieldSpec("snapshot", "dom"),
    ),
    _spec(
        ProgramProposed,
        "program_proposed",
        FieldSpec("session", "str"),
        FieldSpec("actions", "int"),
        FieldSpec("programs", "int"),
        FieldSpec("predictions", "str_list"),
        FieldSpec("stats", "call_stats"),
        FieldSpec("analysis", "analysis", optional=True),
    ),
    _spec(
        CandidateList,
        "candidate_list",
        FieldSpec("session", "str"),
        FieldSpec("candidates", "candidate_list"),
    ),
    _spec(Accept, "accept", FieldSpec("session", "str"), FieldSpec("index", "int")),
    _spec(
        Accepted,
        "accepted",
        FieldSpec("session", "str"),
        FieldSpec("index", "int"),
        FieldSpec("program", "str"),
    ),
    _spec(Reject, "reject", FieldSpec("session", "str")),
    _spec(
        Rejected,
        "rejected",
        FieldSpec("session", "str"),
        FieldSpec("rejections", "int"),
    ),
    _spec(CloseSession, "close_session", FieldSpec("session", "str")),
    _spec(
        SessionClosed,
        "session_closed",
        FieldSpec("session", "str"),
        FieldSpec("stats", "totals"),
    ),
    _spec(
        MigrateSession,
        "migrate_session",
        FieldSpec("session", "str"),
        FieldSpec("target", "str", optional=True),
    ),
    _spec(
        Migrated,
        "migrated",
        FieldSpec("session", "str"),
        FieldSpec("target", "str"),
        FieldSpec("target_session", "str"),
    ),
    _spec(
        ErrorEnvelope,
        "error",
        FieldSpec("code", "str"),
        FieldSpec("message", "str"),
        FieldSpec("session", "str", optional=True),
    ),
    _spec(
        SessionSnapshot,
        "session_snapshot",
        FieldSpec("session", "str"),
        FieldSpec("created", "float"),
        FieldSpec("timeout", "float", optional=True),
        FieldSpec("data", "json", optional=True),
        FieldSpec("actions", "action_list"),
        FieldSpec("snapshots", "dom_trace"),
        FieldSpec("accepted_index", "int", optional=True),
        FieldSpec("stats", "totals"),
    ),
)

_SPEC_BY_TAG = {spec.tag: spec for spec in _MESSAGE_SPECS}
_SPEC_BY_CLASS = {spec.cls: spec for spec in _MESSAGE_SPECS}
_STRUCT_SPECS = {
    "call_stats": _CALL_STATS_SPEC,
    "totals": _TOTALS_SPEC,
    "candidate": _CANDIDATE_SPEC,
    "analysis": _ANALYSIS_SPEC,
}

#: Public view for the schema generator and tests.
MESSAGE_SPECS = _MESSAGE_SPECS
STRUCT_SPECS = _STRUCT_SPECS


def message_types() -> tuple[type, ...]:
    """Every top-level message class, in registry order."""
    return tuple(spec.cls for spec in _MESSAGE_SPECS)


# ----------------------------------------------------------------------
# Value (en|de)coders per field kind
# ----------------------------------------------------------------------
def _encode_dom_trace(snapshots: tuple[DOMNode, ...]) -> dict:
    pool: list[dict] = []
    refs: list[int] = []
    seen: dict = {}
    for snapshot in snapshots:
        # dedup structurally (content_key), not by object identity: on
        # the service path every snapshot was freshly decoded from its
        # own request, so identical pages are distinct objects — yet a
        # scrape-heavy trace must still pool them once
        key = snapshot.content_key() if snapshot.frozen else id(snapshot)
        if key not in seen:
            seen[key] = len(pool)
            pool.append(repro_io.dom_to_json(snapshot))
        refs.append(seen[key])
    return {"pool": pool, "refs": refs}


def _decode_dom_trace(payload) -> tuple[DOMNode, ...]:
    if not isinstance(payload, dict) or "pool" not in payload or "refs" not in payload:
        raise ProtocolError("dom trace requires 'pool' and 'refs'")
    pool = [repro_io.dom_from_json(item) for item in payload["pool"]]
    try:
        return tuple(pool[ref] for ref in payload["refs"])
    except (IndexError, TypeError) as exc:
        raise ProtocolError("dom trace reference out of range") from exc


def _check(value, types, kind: str):
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ProtocolError(f"expected {kind}, got a bool")
    if not isinstance(value, types):
        raise ProtocolError(f"expected {kind}, got {type(value).__name__}")
    return value


def _encode_value(kind: str, value):
    if kind == "str" or kind == "json":
        return value
    if kind == "int" or kind == "bool":
        return value
    if kind == "float":
        return float(value)
    if kind == "dom":
        return repro_io.dom_to_json(value)
    if kind == "action":
        return repro_io.action_to_json(value)
    if kind == "action_list":
        return [repro_io.action_to_json(action) for action in value]
    if kind == "dom_trace":
        return _encode_dom_trace(value)
    if kind == "str_list":
        return list(value)
    if kind == "candidate_list":
        return [_encode_struct(_CANDIDATE_SPEC, item) for item in value]
    if kind in _STRUCT_SPECS:
        return _encode_struct(_STRUCT_SPECS[kind], value)
    raise AssertionError(f"unknown field kind {kind!r}")  # pragma: no cover


def _decode_value(kind: str, value):
    if kind == "str":
        return _check(value, str, "a string")
    if kind == "json":
        return value
    if kind == "int":
        return _check(value, int, "an integer")
    if kind == "bool":
        return _check(value, bool, "a boolean")
    if kind == "float":
        return float(_check(value, (int, float), "a number"))
    if kind == "dom":
        return repro_io.dom_from_json(_check(value, dict, "a snapshot object"))
    if kind == "action":
        return repro_io.action_from_json(_check(value, dict, "an action object"))
    if kind == "action_list":
        _check(value, list, "an action list")
        return tuple(repro_io.action_from_json(item) for item in value)
    if kind == "dom_trace":
        return _decode_dom_trace(value)
    if kind == "str_list":
        _check(value, list, "a string list")
        return tuple(_check(item, str, "a string") for item in value)
    if kind == "candidate_list":
        _check(value, list, "a candidate list")
        return tuple(_decode_struct(_CANDIDATE_SPEC, item) for item in value)
    if kind in _STRUCT_SPECS:
        return _decode_struct(_STRUCT_SPECS[kind], value)
    raise AssertionError(f"unknown field kind {kind!r}")  # pragma: no cover


def _encode_struct(spec: _MessageSpec, value) -> dict:
    return {
        field.name: (
            None
            if getattr(value, field.name) is None
            else _encode_value(field.kind, getattr(value, field.name))
        )
        for field in spec.fields
    }


def _decode_struct(spec: _MessageSpec, payload):
    _check(payload, dict, f"a {spec.cls.__name__} object")
    return spec.cls(**_decode_fields(spec, payload, ()))


def _decode_fields(spec: _MessageSpec, payload: dict, reserved: tuple) -> dict:
    known = {field.name for field in spec.fields}
    unknown = set(payload) - known - set(reserved)
    if unknown:
        raise ProtocolError(
            f"{spec.cls.__name__}: unknown field(s) {sorted(unknown)}"
        )
    values = {}
    for field in spec.fields:
        if field.name not in payload:
            raise ProtocolError(f"{spec.cls.__name__}: missing field {field.name!r}")
        raw = payload[field.name]
        if raw is None:
            if not field.optional:
                raise ProtocolError(
                    f"{spec.cls.__name__}: field {field.name!r} must not be null"
                )
            values[field.name] = None
        else:
            try:
                values[field.name] = _decode_value(field.kind, raw)
            except (ProtocolError, ParseError) as exc:
                raise ProtocolError(f"{spec.cls.__name__}.{field.name}: {exc}") from None
    return values


# ----------------------------------------------------------------------
# Top-level wire conversion
# ----------------------------------------------------------------------
def to_wire(message) -> dict:
    """The JSON-ready wire object for a message."""
    spec = _SPEC_BY_CLASS.get(type(message))
    if spec is None:
        raise ProtocolError(f"{type(message).__name__} is not a protocol message")
    wire: dict = {"v": PROTOCOL_VERSION, "type": spec.tag}
    for field in spec.fields:
        value = getattr(message, field.name)
        if value is None:
            if not field.optional:
                raise ProtocolError(
                    f"{spec.cls.__name__}: field {field.name!r} must not be None"
                )
            wire[field.name] = None
        else:
            wire[field.name] = _encode_value(field.kind, value)
    ctx = obs_context.current()
    if ctx is not None:
        wire[obs_context.WIRE_KEY] = ctx.wire_value()
    return wire


def from_wire(wire) -> object:
    """Decode one wire object into its message dataclass (strict)."""
    if not isinstance(wire, dict):
        raise ProtocolError("a wire message must be a JSON object")
    version = wire.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this side speaks {PROTOCOL_VERSION})"
        )
    tag = wire.get("type")
    spec = _SPEC_BY_TAG.get(tag)
    if spec is None:
        raise ProtocolError(f"unknown message type {tag!r}")
    trace = obs_context.parse(wire.get(obs_context.WIRE_KEY))
    if trace is not None:
        obs_context.note_received(trace)
    return spec.cls(**_decode_fields(spec, wire, ("v", "type", obs_context.WIRE_KEY)))


def wire_type(message) -> str:
    """The wire tag of a message instance."""
    spec = _SPEC_BY_CLASS.get(type(message))
    if spec is None:
        raise ProtocolError(f"{type(message).__name__} is not a protocol message")
    return spec.tag
