"""The typed, versioned interaction protocol: the single session API.

Every surface that speaks about demonstration sessions — the paper-loop
simulator (:mod:`repro.interact`), the session service
(:mod:`repro.service`), its HTTP server and thin client, and the
migration tooling — speaks the message types defined here:

* :mod:`repro.protocol.messages` — the message dataclasses
  (``CreateSession``, ``ActionRecorded``, ``ProgramProposed``,
  ``CandidateList``, ``Accept``/``Reject``, ``SessionClosed``,
  ``ErrorEnvelope``, ``SessionSnapshot``, …) plus
  ``PROTOCOL_VERSION`` and the wire field specs they encode by.
* :mod:`repro.protocol.codec` — the codec seam (``JsonCodec`` today;
  a binary payload codec slots in here later) with round-trip
  validation.
* :mod:`repro.protocol.schema` — the machine-readable wire schema
  (``repro protocol-schema``), diffed against the committed
  ``schema.json`` in CI so wire changes are always explicit.
* :mod:`repro.protocol.session` — the unified :class:`Session` core
  that both the interactive loop and the service drive, including
  ``export_snapshot`` / ``from_snapshot`` for worker migration.

Only the dependency-light message/codec layers are imported here; the
session core pulls in the synthesizer stack and is imported explicitly
by its users.
"""

from repro.protocol.messages import (  # noqa: F401
    PROTOCOL_VERSION,
    Accept,
    Accepted,
    ActionRecorded,
    CallStats,
    Candidate,
    CandidateList,
    CloseSession,
    CreateSession,
    ErrorEnvelope,
    Migrated,
    MigrateSession,
    ProgramProposed,
    ProtocolError,
    Reject,
    Rejected,
    SessionClosed,
    SessionCreated,
    SessionSnapshot,
    SessionTotals,
    message_types,
)
from repro.protocol.codec import DEFAULT_CODEC, Codec, JsonCodec  # noqa: F401
