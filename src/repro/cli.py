"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``
    Print the benchmark-suite statistics (§7).
``record <bid> [-o FILE]``
    Instrument a benchmark's ground truth and write the recorded
    demonstration as JSON.
``synthesize <FILE> [--cut K] [--data JSON] [--stats] [--workers N] [--shared-cache]``
    Load a recorded demonstration, synthesize at prefix ``K`` (default:
    all but the last action), print the best program and prediction.
    ``--stats`` also prints synthesis + execution-engine telemetry
    (worklist activity, cache hits/misses, DOM index builds, worker and
    shared-cache counters).  ``--workers N`` validates candidates on an
    N-thread pool (output stays byte-identical to serial);
    ``--shared-cache`` joins the process-level execution cache so
    repeated invocations in one process share executions.
    ``--trace-out FILE`` records spans for the run and writes a Chrome
    trace-event JSON loadable in Perfetto / ``chrome://tracing``.
``metrics [--url URL]``
    Print Prometheus text-format metrics: scraped from a running
    service's ``GET /v1/metrics`` when ``--url`` is given, rendered
    from this process's registry otherwise.
``replay <PROGRAM-FILE> --benchmark <bid>``
    Run a serialized program for real against a benchmark's site and
    print the scraped outputs.
``check <PROGRAM-FILE> [--data JSON] [--json]``
    Statically check a serialized program: variable scoping, loop-
    variable usage, and (with ``--data``) value-path typing.
``lint <PROGRAM-FILE> [--disable RULE,...] [--json]``
    Flag robustness/intent smells: brittle selectors, mis-parametrized
    data entry, unrolled repetition, mergeable loops, and more.
``analyze <PROGRAM-FILE> [--recording FILE] [--data JSON] [--json]``
    Run the abstract-analysis layer over a program: effect summary
    (read-only / navigating / mutating), termination verdict per loop,
    symbolic replay-cost interval, and per-selector fragility scores
    (with ``--recording``, also whether each concrete selector
    resolves on any demonstrated snapshot).

``check``, ``lint``, and ``analyze`` form one diagnostics pipeline:
all three emit the same versioned findings document under ``--json``
(``{"version", "tool", "findings": [...], "errors", "warnings"}``),
differing only in the ``tool`` tag and the rules that can appear.
``export <PROGRAM-FILE> [--target selenium|playwright|imacros] [-o FILE]``
    Generate a standalone Selenium, Playwright, or iMacros script from
    a serialized program.
``explain <PROGRAM-FILE> --recording <FILE> [--summary]``
    Execute a program against a recorded demonstration under the trace
    semantics and print per-action provenance (which statement and
    loop iteration produced each action).
``serve [--host H] [--port P] [--workers N] [--backend memory|file]``
    Run the multi-process session service: concurrent demonstration
    sessions over the typed ``/v1`` protocol routes (create /
    record-action / get-candidates / accept / reject / close / migrate
    / import), sharing the process-level execution cache — and, with
    ``--backend file``, a persistent store that outlives processes and
    is shared between workers.  ``--session-ttl`` evicts idle sessions.
    See :mod:`repro.service.server`.
``protocol-schema``
    Print the interaction protocol's machine-readable wire schema
    (message types, field specs, ``PROTOCOL_VERSION``).  CI diffs this
    output against the committed ``src/repro/protocol/schema.json`` so
    wire changes are always explicit.
``q1|q2|q3|q4``
    Regenerate the corresponding evaluation artifact (same as
    ``python -m repro.harness.qN``).
``ablations``
    Run the design-choice ablation reports (search caps, ranking
    strategies, published-failure-case extensions).
``scaling``
    Run the incremental-vs-from-scratch trace-length scaling
    comparison.
``drift``
    Run the drift-robustness study (raw paths vs. synthesized
    programs, plain vs. repaired replay).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro import io as repro_io
from repro.benchmarks.suite import all_benchmarks, benchmark_by_id
from repro.browser.replayer import Replayer
from repro.lang.data import DataSource, EMPTY_DATA
from repro.lang.pretty import format_program
from repro.synth.config import DEFAULT_CONFIG
from repro.synth.synthesizer import Synthesizer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WebRobot reproduction: record, synthesize, replay, evaluate.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="print benchmark-suite statistics")

    record = commands.add_parser("record", help="record a benchmark ground truth")
    record.add_argument("bid", help="benchmark id, e.g. b21")
    record.add_argument("-o", "--output", default=None, help="output JSON file")
    record.add_argument("--max-actions", type=int, default=500)

    synth = commands.add_parser("synthesize", help="synthesize from a recording")
    synth.add_argument("recording", help="JSON file produced by 'record'")
    synth.add_argument("--cut", type=int, default=None,
                       help="prefix length (default: all but the last action)")
    synth.add_argument("--data", default=None,
                       help="JSON file with the input data source")
    synth.add_argument("--timeout", type=float, default=1.0)
    synth.add_argument("--stats", action="store_true",
                       help="print synthesis + execution-engine telemetry")
    synth.add_argument("--workers", type=int, default=None,
                       help="validation worker threads (default: "
                            "$REPRO_VALIDATION_WORKERS or serial)")
    synth.add_argument("--shared-cache", action="store_true",
                       help="join the process-level shared execution cache")
    synth.add_argument("--backend", default=None, metavar="BACKEND",
                       help="execution-cache persistence backend: memory, "
                            "file, or remote://host:port (default: "
                            "$REPRO_CACHE_BACKEND or memory)")
    synth.add_argument("--codec", default=None, choices=("json", "binary"),
                       help="payload codec of the persistent store "
                            "(default: $REPRO_CODEC or binary)")
    synth.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record spans and write a Chrome trace-event "
                            "JSON (open in Perfetto)")

    metrics = commands.add_parser(
        "metrics", help="print Prometheus text-format metrics"
    )
    metrics.add_argument("--url", default=None,
                         help="scrape a running service's /v1/metrics "
                              "instead of this process's registry")
    metrics.add_argument("--fleet", default=None, metavar="URL,URL,...",
                         help="scrape every listed worker/cache server and "
                              "merge the dumps, each sample tagged with an "
                              "instance label")

    serve = commands.add_parser("serve", help="run the session service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="base port (default 8738; 0 = OS-assigned)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes on consecutive ports, all "
                            "sharing one cache store")
    serve.add_argument("--backend", default=None, metavar="BACKEND",
                       help="execution-cache persistence backend: memory, "
                            "file, or remote://host:port (default: "
                            "$REPRO_CACHE_BACKEND or memory)")
    serve.add_argument("--cache-dir", default=None,
                       help="directory of the file backend's store "
                            "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    serve.add_argument("--codec", default=None, choices=("json", "binary"),
                       help="payload codec of the persistent store "
                            "(default: $REPRO_CODEC or binary)")
    serve.add_argument("--timeout", type=float, default=1.0,
                       help="per-action synthesis budget in seconds")
    serve.add_argument("--synth-workers", type=int, default=None,
                       help="validation worker threads per session")
    serve.add_argument("--session-ttl", type=float, default=None,
                       help="evict sessions idle longer than this many "
                            "seconds (default: $REPRO_SESSION_TTL or never)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request to stderr")

    cache_serve = commands.add_parser(
        "cache-serve",
        help="run the execution cache as a standalone fleet server",
    )
    cache_serve.add_argument("--host", default="127.0.0.1")
    cache_serve.add_argument("--port", type=int, default=None,
                             help="port (default 8799; 0 = OS-assigned)")
    cache_serve.add_argument("--cache-dir", default=None,
                             help="directory of the backing store "
                                  "(default: $REPRO_CACHE_DIR or "
                                  "~/.cache/repro)")
    cache_serve.add_argument("--max-bytes", type=int, default=None,
                             help="store size budget before eviction "
                                  "(default: $REPRO_CACHE_MAX_BYTES)")
    cache_serve.add_argument("--codec", default=None,
                             choices=("json", "binary"),
                             help="payload codec of the store "
                                  "(default: binary)")
    cache_serve.add_argument("--verbose", action="store_true",
                             help="log every request to stderr")

    rebalance = commands.add_parser(
        "rebalance", help="drain hot workers toward the fleet average"
    )
    rebalance.add_argument("--fleet", required=True, metavar="URL,URL,...",
                           help="worker base URLs to balance across")
    rebalance.add_argument("--interval", type=float, default=None,
                           help="seconds between rounds (default: one shot)")
    rebalance.add_argument("--skew", type=int, default=None,
                           help="tolerated session-count spread (default 2)")
    rebalance.add_argument("--dry-run", action="store_true",
                           help="plan and print moves without migrating")
    rebalance.add_argument("--timeout", type=float, default=10.0,
                           help="per-request timeout when polling/migrating")

    loadtest = commands.add_parser(
        "loadtest", help="replay concurrent demonstrations against a fleet"
    )
    loadtest.add_argument("--fleet", default=None, metavar="URL,URL,...",
                          help="worker base URLs (default: spawn a local "
                               "cache server + workers and tear them down)")
    loadtest.add_argument("--workers", type=int, default=2,
                          help="workers to spawn when no --fleet is given")
    loadtest.add_argument("--subjects", default=None, metavar="BID,BID,...",
                          help="benchmark demonstrations to replay "
                               "(default: b1,b4; --quick: b1)")
    loadtest.add_argument("--sessions", type=int, default=None,
                          help="sessions per wave (default 6; --quick: 2)")
    loadtest.add_argument("--concurrency", type=int, default=None,
                          help="sessions in flight at once (default 4)")
    loadtest.add_argument("--timeout", type=float, default=None,
                          help="per-action synthesis budget (default 10)")
    loadtest.add_argument("--quick", action="store_true",
                          help="CI preset: one subject, two sessions/wave")
    loadtest.add_argument("--out", default="BENCH_fleet_load.json",
                          help="trajectory artifact path")
    loadtest.add_argument("--max-p99-ms", type=float, default=None,
                          help="fail (exit 1) when p99 exceeds this bound")
    loadtest.add_argument("--min-warm-rate", type=float, default=None,
                          help="fail (exit 1) when the remote warm rate "
                               "falls below this fraction")
    loadtest.add_argument("--no-verify", action="store_true",
                          help="skip the in-process byte-identity check")

    commands.add_parser("protocol-schema",
                        help="print the interaction protocol wire schema")

    replay = commands.add_parser("replay", help="run a serialized program")
    replay.add_argument("program", help="JSON file with a serialized program")
    replay.add_argument("--benchmark", required=True, help="benchmark id for the site")

    check = commands.add_parser("check", help="statically check a program")
    check.add_argument("program", help="JSON file with a serialized program")
    check.add_argument("--data", default=None,
                       help="JSON file with the input data source")
    check.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the shared findings document as JSON")

    lint = commands.add_parser("lint", help="flag robustness/intent smells")
    lint.add_argument("program", help="JSON file with a serialized program")
    lint.add_argument("--disable", default="",
                      help="comma-separated lint rule ids to suppress")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the shared findings document as JSON")

    analyze = commands.add_parser(
        "analyze", help="abstract analysis: effects, termination, cost, fragility"
    )
    analyze.add_argument("program", help="JSON file with a serialized program")
    analyze.add_argument("--recording", default=None,
                         help="JSON recording whose snapshots selectors are "
                              "checked against")
    analyze.add_argument("--data", default=None,
                         help="JSON file with the input data source")
    analyze.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the analysis + findings document as JSON")

    export = commands.add_parser("export", help="generate an automation script")
    export.add_argument("program", help="JSON file with a serialized program")
    export.add_argument("--target", default="selenium",
                        choices=("selenium", "playwright", "imacros"))
    export.add_argument("--start-url", default="", help="URL baked into main()")
    export.add_argument("-o", "--output", default=None,
                        help="output .py file (default: stdout)")

    explain = commands.add_parser("explain", help="trace a program's provenance")
    explain.add_argument("program", help="JSON file with a serialized program")
    explain.add_argument("--recording", required=True,
                         help="JSON recording the program runs against")
    explain.add_argument("--data", default=None,
                         help="JSON file with the input data source")
    explain.add_argument("--summary", action="store_true",
                         help="print per-statement totals instead of per-action lines")

    for experiment in ("q1", "q2", "q3", "q4"):
        commands.add_parser(experiment, help=f"regenerate the {experiment} artifact")
    commands.add_parser("ablations", help="run the design-choice ablation reports")
    commands.add_parser("scaling", help="run the trace-length scaling comparison")
    commands.add_parser("drift", help="run the drift-robustness replay study")
    return parser


def _cmd_stats() -> int:
    from repro.harness.stats import render_statistics

    print(render_statistics())
    return 0


def _cmd_record(bid: str, output: Optional[str], max_actions: int) -> int:
    try:
        benchmark = benchmark_by_id(bid)
    except KeyError:
        known = ", ".join(b.bid for b in all_benchmarks()[:5])
        print(f"unknown benchmark {bid!r} (try one of {known}, ...)", file=sys.stderr)
        return 2
    recording = benchmark.record(max_actions=max_actions)
    destination = output or f"{bid}.recording.json"
    with open(destination, "w", encoding="utf-8") as handle:
        repro_io.dump(recording, handle)
    print(f"recorded {recording.length} actions "
          f"({len(recording.outputs)} outputs) -> {destination}")
    return 0


def _cmd_synthesize(path: str, cut: Optional[int], data_path: Optional[str],
                    timeout: float, show_stats: bool = False,
                    workers: Optional[int] = None,
                    shared_cache: bool = False,
                    backend: Optional[str] = None,
                    codec: Optional[str] = None,
                    trace_out: Optional[str] = None) -> int:
    if codec is not None:
        import os

        # resolve_codec reads this when the file backend opens its store
        os.environ["REPRO_CODEC"] = codec
    if trace_out is not None:
        from repro.obs import tracing as obs_tracing

        obs_tracing.enable(path=trace_out)
    with open(path, encoding="utf-8") as handle:
        recording = repro_io.load(handle)
    data = EMPTY_DATA
    if data_path is not None:
        with open(data_path, encoding="utf-8") as handle:
            data = DataSource(json.load(handle))
    prefix = cut if cut is not None else recording.length - 1
    prefix = max(1, min(prefix, recording.length - 1))
    actions, snapshots = recording.prefix(prefix)
    config = DEFAULT_CONFIG
    if workers is not None or shared_cache or backend is not None:
        from dataclasses import replace

        config = replace(
            config,
            validation_workers=workers,
            shared_cache=True if shared_cache else None,
            cache_backend=backend,
        )
    from contextlib import nullcontext

    trace_scope = nullcontext()
    if trace_out is not None:
        from repro.obs import context as obs_context

        # one root context for the run, so every span shares a trace_id
        trace_scope = obs_context.use(obs_context.new_root())
    synthesizer = Synthesizer(data, config)
    try:
        with trace_scope:
            result = synthesizer.synthesize(actions, snapshots, timeout=timeout)
    finally:
        synthesizer.close()
    if trace_out is not None:
        from repro.obs import tracing as obs_tracing

        obs_tracing.write(trace_out)
        print(f"wrote trace -> {trace_out}", file=sys.stderr)
    if show_stats:
        from repro.harness.report import render_synthesis_stats

        print(render_synthesis_stats(result.stats))
        print()
    if result.best_program is None:
        print(f"no generalizing program after {prefix} actions")
        return 1
    print(f"programs found: {len(result.programs)} "
          f"(in {result.stats.elapsed * 1000:.0f} ms)")
    print(format_program(result.best_program))
    print(f"\npredicted next action: {result.best_prediction}")
    return 0


def _cmd_metrics(url: Optional[str], fleet: Optional[str] = None) -> int:
    """Prometheus text metrics: scrape a server/fleet, or render locally."""
    if fleet is not None:
        from repro.fleet.metrics import merge_exposition, scrape_text, split_host_port

        scrapes = []
        failures = 0
        for member in (part.strip() for part in fleet.split(",")):
            if not member:
                continue
            host, port = split_host_port(member)
            try:
                scrapes.append((f"{host}:{port}", scrape_text(member)))
            except (OSError, ValueError) as error:
                failures += 1
                print(f"cannot scrape {member}: {error}", file=sys.stderr)
        sys.stdout.write(merge_exposition(scrapes))
        return 1 if failures else 0
    if url is None:
        from repro.obs import metrics as obs_metrics

        sys.stdout.write(obs_metrics.registry().render())
        return 0
    from http.client import HTTPConnection
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.hostname is None:
        print(f"bad service URL {url!r}", file=sys.stderr)
        return 2
    connection = HTTPConnection(parts.hostname, parts.port or 80, timeout=10.0)
    try:
        connection.request("GET", "/v1/metrics")
        response = connection.getresponse()
        body = response.read()
    except OSError as error:
        print(f"cannot scrape {url}: {error}", file=sys.stderr)
        return 1
    finally:
        connection.close()
    if response.status != 200:
        print(f"GET /v1/metrics -> {response.status}", file=sys.stderr)
        return 1
    sys.stdout.write(body.decode("utf-8"))
    return 0


def _cmd_serve(arguments) -> int:
    import os
    from dataclasses import replace

    from repro.service.server import DEFAULT_PORT, serve

    if arguments.cache_dir is not None:
        # resolve_backend reads this when building the store path
        os.environ["REPRO_CACHE_DIR"] = arguments.cache_dir
    if arguments.codec is not None:
        # resolve_codec reads this when the file backend opens its store
        os.environ["REPRO_CODEC"] = arguments.codec
    config = replace(
        DEFAULT_CONFIG,
        shared_cache=True,
        cache_backend=arguments.backend,
        validation_workers=arguments.synth_workers,
    )
    port = arguments.port if arguments.port is not None else DEFAULT_PORT
    return serve(
        host=arguments.host,
        port=port,
        workers=max(1, arguments.workers),
        config=config,
        timeout=arguments.timeout,
        quiet=not arguments.verbose,
        max_idle_s=arguments.session_ttl,
    )


def _cmd_cache_serve(arguments) -> int:
    from repro.fleet.cache_server import DEFAULT_CACHE_PORT, serve_cache

    if arguments.cache_dir is not None:
        # default_store_path reads this when naming the store file
        os.environ["REPRO_CACHE_DIR"] = arguments.cache_dir
    return serve_cache(
        host=arguments.host,
        port=arguments.port if arguments.port is not None else DEFAULT_CACHE_PORT,
        max_bytes=arguments.max_bytes,
        codec=arguments.codec,
        quiet=not arguments.verbose,
    )


def _cmd_rebalance(arguments) -> int:
    from repro.fleet.rebalance import DEFAULT_SKEW, run_rebalancer

    urls = [
        url if "//" in url else f"http://{url}"
        for url in (part.strip() for part in arguments.fleet.split(","))
        if url
    ]
    if len(urls) < 2:
        print("rebalance: need at least two --fleet URLs", file=sys.stderr)
        return 2
    return run_rebalancer(
        urls,
        interval=arguments.interval,
        skew=arguments.skew if arguments.skew is not None else DEFAULT_SKEW,
        dry_run=arguments.dry_run,
        timeout=arguments.timeout,
    )


def _cmd_loadtest(arguments) -> int:
    from repro.fleet.loadtest import run_cli_loadtest

    return run_cli_loadtest(
        fleet=arguments.fleet,
        workers=arguments.workers,
        subjects_spec=arguments.subjects,
        sessions=arguments.sessions,
        concurrency=arguments.concurrency,
        timeout=arguments.timeout,
        quick=arguments.quick,
        out=arguments.out,
        max_p99_ms=arguments.max_p99_ms,
        min_warm_rate=arguments.min_warm_rate,
        verify=not arguments.no_verify,
    )


def _cmd_replay(program_path: str, bid: str) -> int:
    with open(program_path, encoding="utf-8") as handle:
        program = repro_io.load(handle)
    benchmark = benchmark_by_id(bid)
    browser = benchmark.fresh_browser()
    outcome = Replayer(browser, raise_errors=False).run(program)
    if outcome.error is not None:
        print(f"replay failed: {outcome.error}", file=sys.stderr)
        return 1
    for value in outcome.outputs:
        print(value)
    return 0


def _load_data(data_path: Optional[str]) -> DataSource:
    if data_path is None:
        return EMPTY_DATA
    with open(data_path, encoding="utf-8") as handle:
        return DataSource(json.load(handle))


def _load_program(path: str):
    try:
        with open(path, encoding="utf-8") as handle:
            loaded = repro_io.load(handle)
    except OSError as error:
        print(f"cannot read {path}: {error.strerror or error}", file=sys.stderr)
        return None
    from repro.lang.ast import Program

    if not isinstance(loaded, Program):
        print(f"{path} does not contain a serialized program", file=sys.stderr)
        return None
    return loaded


def _cmd_check(program_path: str, data_path: Optional[str],
               as_json: bool = False) -> int:
    from repro.analysis.report import findings_from_check, findings_payload
    from repro.lang.check import check_program, errors_only

    program = _load_program(program_path)
    if program is None:
        return 2
    data = _load_data(data_path) if data_path is not None else None
    diagnostics = check_program(program, data)
    if as_json:
        payload = findings_payload("check", findings_from_check(diagnostics))
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if errors_only(diagnostics) else 0
    for diagnostic in diagnostics:
        print(diagnostic)
    if errors_only(diagnostics):
        return 1
    print(f"ok: {len(diagnostics)} warning(s)" if diagnostics else "ok")
    return 0


def _cmd_lint(program_path: str, disable: str, as_json: bool = False) -> int:
    from repro.analysis.report import findings_from_lint, findings_payload
    from repro.lang.lint import lint_program, warnings_only

    program = _load_program(program_path)
    if program is None:
        return 2
    disabled = {rule.strip() for rule in disable.split(",") if rule.strip()}
    try:
        findings = lint_program(program, disable=disabled or None)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if as_json:
        payload = findings_payload("lint", findings_from_lint(findings))
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if warnings_only(findings) else 0
    for finding in findings:
        print(finding)
    if warnings_only(findings):
        return 1
    print(f"ok: {len(findings)} info finding(s)" if findings else "ok")
    return 0


def _cmd_analyze(program_path: str, recording_path: Optional[str],
                 data_path: Optional[str], as_json: bool = False) -> int:
    from repro.analysis.report import ERROR, analyze_program, findings_payload

    program = _load_program(program_path)
    if program is None:
        return 2
    snapshots = ()
    if recording_path is not None:
        with open(recording_path, encoding="utf-8") as handle:
            snapshots = tuple(repro_io.load(handle).snapshots)
    data = _load_data(data_path)
    analysis = analyze_program(program, data, snapshots)
    errors = sum(1 for f in analysis.findings if f.severity == ERROR)
    if as_json:
        payload = findings_payload(
            "analyze", analysis.findings, extra={"analysis": analysis.to_json()}
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if errors else 0
    replay = "safe to auto-replay" if analysis.effect.safe_to_replay else "side-effecting"
    print(f"effect:      {analysis.effect.classification} ({replay})")
    print(f"termination: {analysis.termination}")
    print(f"cost:        {analysis.cost} actions")
    print(f"fragility:   {analysis.fragility}")
    for verdict in analysis.loops:
        print(f"  {verdict}")
    for report in analysis.selectors:
        print(f"  {report}")
    for finding in analysis.findings:
        print(finding)
    if errors:
        return 1
    print(f"ok: {len(analysis.findings)} finding(s)" if analysis.findings else "ok")
    return 0


def _cmd_export(program_path: str, target: str, start_url: str,
                output: Optional[str]) -> int:
    from repro.export import export_program

    program = _load_program(program_path)
    if program is None:
        return 2
    source = export_program(program, target=target, start_url=start_url)
    if output is None:
        print(source, end="")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {target} script -> {output}")
    return 0


def _cmd_explain(program_path: str, recording_path: str,
                 data_path: Optional[str], summary: bool) -> int:
    from repro.semantics.provenance import explain, render_explanation, render_summary
    from repro.semantics.trace import DOMTrace

    program = _load_program(program_path)
    if program is None:
        return 2
    with open(recording_path, encoding="utf-8") as handle:
        recording = repro_io.load(handle)
    data = _load_data(data_path)
    result = explain(program, DOMTrace(recording.snapshots), data)
    if summary:
        print(render_summary(program, result))
    else:
        print(render_explanation(program, result))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "stats":
        return _cmd_stats()
    if arguments.command == "record":
        return _cmd_record(arguments.bid, arguments.output, arguments.max_actions)
    if arguments.command == "synthesize":
        return _cmd_synthesize(
            arguments.recording, arguments.cut, arguments.data,
            arguments.timeout, arguments.stats,
            arguments.workers, arguments.shared_cache, arguments.backend,
            arguments.codec, arguments.trace_out,
        )
    if arguments.command == "metrics":
        return _cmd_metrics(arguments.url, arguments.fleet)
    if arguments.command == "serve":
        return _cmd_serve(arguments)
    if arguments.command == "cache-serve":
        return _cmd_cache_serve(arguments)
    if arguments.command == "rebalance":
        return _cmd_rebalance(arguments)
    if arguments.command == "loadtest":
        return _cmd_loadtest(arguments)
    if arguments.command == "protocol-schema":
        from repro.protocol.schema import main as protocol_schema_main

        return protocol_schema_main()
    if arguments.command == "replay":
        return _cmd_replay(arguments.program, arguments.benchmark)
    if arguments.command == "check":
        return _cmd_check(arguments.program, arguments.data, arguments.as_json)
    if arguments.command == "lint":
        return _cmd_lint(arguments.program, arguments.disable, arguments.as_json)
    if arguments.command == "analyze":
        return _cmd_analyze(arguments.program, arguments.recording,
                            arguments.data, arguments.as_json)
    if arguments.command == "export":
        return _cmd_export(arguments.program, arguments.target,
                           arguments.start_url, arguments.output)
    if arguments.command == "explain":
        return _cmd_explain(arguments.program, arguments.recording,
                            arguments.data, arguments.summary)
    if arguments.command in ("q1", "q2", "q3", "q4", "ablations", "scaling", "drift"):
        module = __import__(f"repro.harness.{arguments.command}",
                            fromlist=["main"])
        module.main()
        return 0
    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
