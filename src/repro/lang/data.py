"""Input data sources (the ``I`` of the paper, §3.1).

A data source is any JSON-like value built from dicts, lists, strings and
integers.  Concrete value paths θ (``x["zips"][3]``) address values inside
it; integer indices are **1-based**, matching the paper's trace language
where ``ValuePaths(θ)`` evaluates to ``[θ[1], ··, θ[|arr|]]``.
"""

from __future__ import annotations

from typing import Any, Union

from repro.lang.ast import ValuePath
from repro.util.errors import DataPathError

JSONValue = Union[str, int, list["JSONValue"], dict[str, "JSONValue"]]


class DataSource:
    """Wraps a JSON-like value and resolves concrete value paths against it."""

    def __init__(self, value: JSONValue) -> None:
        self._value = value

    @property
    def value(self) -> JSONValue:
        """The wrapped JSON-like value."""
        return self._value

    def resolve(self, path: ValuePath) -> JSONValue:
        """Resolve a concrete value path to the value it denotes.

        Raises
        ------
        DataPathError
            If the path mentions a variable, indexes out of range, or uses
            a key absent from the data.
        """
        if not path.is_concrete:
            raise DataPathError(f"cannot resolve symbolic path {path}")
        current: JSONValue = self._value
        for accessor in path.accessors:
            current = self._step(current, accessor, path)
        return current

    def get_array(self, path: ValuePath) -> list[JSONValue]:
        """The paper's ``GetArray``: resolve ``path`` and require a list."""
        value = self.resolve(path)
        if not isinstance(value, list):
            raise DataPathError(f"path {path} denotes a {type(value).__name__}, not an array")
        return value

    def value_paths(self, path: ValuePath) -> list[ValuePath]:
        """Evaluate ``ValuePaths(path)``: ``[path[1], ··, path[len]]``."""
        array = self.get_array(path)
        return [path.extend(index) for index in range(1, len(array) + 1)]

    def contains(self, path: ValuePath) -> bool:
        """True when the path resolves without error."""
        try:
            self.resolve(path)
        except DataPathError:
            return False
        return True

    @staticmethod
    def _step(current: JSONValue, accessor: Union[str, int], path: ValuePath) -> JSONValue:
        if isinstance(accessor, int):
            if not isinstance(current, list):
                raise DataPathError(f"integer index on non-array in {path}")
            if not 1 <= accessor <= len(current):
                raise DataPathError(f"index {accessor} out of range in {path}")
            return current[accessor - 1]
        if not isinstance(current, dict):
            raise DataPathError(f"key access on non-object in {path}")
        if accessor not in current:
            raise DataPathError(f"missing key {accessor!r} in {path}")
        return current[accessor]


#: A data source with no content; ``EnterData`` fails against it.
EMPTY_DATA = DataSource({})


def as_text(value: JSONValue) -> str:
    """Render a scalar data value the way the browser would type it."""
    if isinstance(value, (dict, list)):
        raise DataPathError("cannot enter a composite value into a field")
    return str(value)
