"""Pretty-printer for web RPA programs.

Produces the line-oriented concrete syntax used throughout this repo (and
accepted back by :mod:`repro.lang.parser`)::

    EnterData(/html[1]/body[1]//input[@name='search'][1], x["zips"][1])
    Click(//button[@class='go'][1])
    while true do
      foreach r1 in Dscts(/, div[@class='card']) do
        ScrapeText(r1//h3[1])
      Click(//button[@class='next'][1])

Loop variables are displayed with names assigned in binding order (``r1``,
``r2``, ... for selector variables; ``d1``, ``d2``, ... for value-path
variables), so printing is stable under re-parsing even though internal
variable uids are globally fresh.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    SEL_VAR,
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Selector,
    Statement,
    ValuePath,
    Var,
    WhileLoop,
)

INDENT = "  "


class _Namer:
    """Assigns stable display names to loop variables in binding order."""

    def __init__(self) -> None:
        self._names: dict[Var, str] = {}
        self._counts = {SEL_VAR: 0, "val": 0}

    def bind(self, var: Var) -> str:
        self._counts[var.kind] += 1
        prefix = "r" if var.kind == SEL_VAR else "d"
        name = f"{prefix}{self._counts[var.kind]}"
        self._names[var] = name
        return name

    def name(self, var: Var) -> str:
        return self._names.get(var, str(var))


def _format_selector(selector: Selector, namer: _Namer) -> str:
    prefix = namer.name(selector.base) if selector.base is not None else ""
    suffix = "".join(str(step) for step in selector.steps)
    return (prefix + suffix) or "/"


def _format_path(path: ValuePath, namer: _Namer) -> str:
    prefix = namer.name(path.base) if path.base is not None else "x"
    parts = [
        f"[{acc}]" if isinstance(acc, int) else f'["{acc}"]' for acc in path.accessors
    ]
    return prefix + "".join(parts)


def _format_action(stmt: ActionStmt, namer: _Namer) -> str:
    if stmt.kind in ("GoBack", "ExtractURL"):
        return stmt.kind
    target = _format_selector(stmt.target, namer)
    if stmt.kind == "SendKeys":
        return f'{stmt.kind}({target}, "{stmt.text}")'
    if stmt.kind == "EnterData":
        return f"{stmt.kind}({target}, {_format_path(stmt.value, namer)})"
    return f"{stmt.kind}({target})"


def _format_stmt(stmt: Statement, depth: int, namer: _Namer) -> str:
    pad = INDENT * depth
    if isinstance(stmt, ActionStmt):
        return pad + _format_action(stmt, namer)
    if isinstance(stmt, ForEachSelector):
        base = _format_selector(stmt.collection.base, namer)
        coll_name = type(stmt.collection).__name__
        keyword = "Children" if coll_name == "ChildrenOf" else "Dscts"
        var_name = namer.bind(stmt.var)
        head = f"{pad}foreach {var_name} in {keyword}({base}, {stmt.collection.pred}) do"
        body = [_format_stmt(child, depth + 1, namer) for child in stmt.body]
        return "\n".join([head, *body])
    if isinstance(stmt, ForEachValue):
        path = _format_path(stmt.collection.path, namer)
        var_name = namer.bind(stmt.var)
        head = f"{pad}foreach {var_name} in ValuePaths({path}) do"
        body = [_format_stmt(child, depth + 1, namer) for child in stmt.body]
        return "\n".join([head, *body])
    if isinstance(stmt, WhileLoop):
        head = f"{pad}while true do"
        body = [_format_stmt(child, depth + 1, namer) for child in stmt.body]
        body.append(_format_stmt(stmt.click, depth + 1, namer))
        return "\n".join([head, *body])
    if isinstance(stmt, PaginateLoop):
        head = f"{pad}paginate k from {stmt.start} do"
        body = [_format_stmt(child, depth + 1, namer) for child in stmt.body]
        inner = INDENT * (depth + 1)
        body.append(f"{inner}Click({stmt.template.hole_text('{k}')})")
        if stmt.advance is not None:
            body.append(f"{inner}Advance({_format_selector(stmt.advance, namer)})")
        return "\n".join([head, *body])
    raise TypeError(f"not a statement: {stmt!r}")


def format_statement(stmt: Statement, depth: int = 0, namer: Optional[_Namer] = None) -> str:
    """Render one statement (and its body, for loops) at ``depth``."""
    return _format_stmt(stmt, depth, namer or _Namer())


def format_program(program: Program) -> str:
    """Render a whole program as newline-joined statements."""
    namer = _Namer()
    return "\n".join(_format_stmt(stmt, 0, namer) for stmt in program.statements)
