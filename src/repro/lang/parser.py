"""Parser for the line-oriented web RPA concrete syntax.

This is the inverse of :mod:`repro.lang.pretty`.  Benchmarks write their
ground-truth programs as text, which keeps them readable and close to the
paper's figures.

Grammar (indentation-sensitive, two spaces per level)::

    stmt    := action | foreach | while
    action  := Kind '(' args ')' | GoBack | ExtractURL
    foreach := 'foreach' NAME 'in' collection 'do' NEWLINE block
    while   := 'while true do' NEWLINE block       -- last stmt must be Click
    collection := ('Children'|'Dscts') '(' selector ',' predicate ')'
                | 'ValuePaths' '(' valuepath ')'
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.dom.xpath import Predicate, Step, parse_selector
from repro.lang.ast import (
    ACTION_KINDS,
    CLICK,
    SEL_VAR,
    VAL_VAR,
    ActionStmt,
    ChildrenOf,
    CounterTemplate,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Selector,
    Statement,
    ValuePath,
    ValuePathsOf,
    Var,
    WhileLoop,
    fresh_var,
)
from repro.util.errors import ParseError

#: A parsed block line: a statement, or the ("advance", selector)
#: sentinel a paginate block's Advance line parses into.
_BlockItem = Union[Statement, tuple[str, Selector]]

_FOREACH_RE = re.compile(r"^foreach\s+(\w+)\s+in\s+(.+)\s+do$")
_WHILE_RE = re.compile(r"^while\s+true\s+do$")
_PAGINATE_RE = re.compile(r"^paginate\s+(\w+)\s+from\s+(\d+)\s+do$")
_CALL_RE = re.compile(r"^(\w+)\((.*)\)$")


def _split_args(text: str) -> list[str]:
    """Split on top-level commas, respecting quotes and brackets."""
    parts: list[str] = []
    depth = 0
    quote: Optional[str] = None
    current: list[str] = []
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "([":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class _Scope:
    """Maps surface variable names to :class:`Var` objects during parsing.

    Bindings shadow lexically: a loop re-using a sibling loop's variable
    name gets a fresh :class:`Var`, and the old binding is restored once
    the loop body has been parsed.
    """

    def __init__(self) -> None:
        self._vars: dict[str, Var] = {}

    def bind(self, name: str, kind: str) -> tuple[Var, Optional[Var]]:
        """Bind ``name``; returns ``(new_var, shadowed_var_or_None)``."""
        if name == "x":
            raise ParseError("'x' is reserved for the input data source")
        previous = self._vars.get(name)
        var = fresh_var(kind)
        self._vars[name] = var
        return var, previous

    def restore(self, name: str, previous: Optional[Var]) -> None:
        """Undo a :meth:`bind` after its block has been parsed."""
        if previous is None:
            del self._vars[name]
        else:
            self._vars[name] = previous

    def lookup(self, name: str) -> Var:
        if name not in self._vars:
            raise ParseError(f"unbound variable {name!r}")
        return self._vars[name]


def _parse_symbolic_selector(text: str, scope: _Scope) -> Selector:
    text = text.strip()
    if text.startswith("/"):
        return Selector(None, parse_selector(text).steps)
    match = re.match(r"^(\w+)(.*)$", text)
    if not match:
        raise ParseError(f"bad selector {text!r}")
    name, rest = match.groups()
    var = scope.lookup(name)
    if var.kind != SEL_VAR:
        raise ParseError(f"{name!r} is not a selector variable")
    steps = parse_selector(rest).steps if rest else ()
    return Selector(var, steps)


_ACCESSOR_RE = re.compile(r"\[\s*(?:\"([^\"]*)\"|'([^']*)'|(\d+))\s*\]")


def _parse_value_path(text: str, scope: _Scope) -> ValuePath:
    text = text.strip()
    match = re.match(r"^(\w+)", text)
    if not match:
        raise ParseError(f"bad value path {text!r}")
    name = match.group(1)
    rest = text[match.end():]
    if name == "x":
        base: Optional[Var] = None
    else:
        base = scope.lookup(name)
        if base.kind != VAL_VAR:
            raise ParseError(f"{name!r} is not a value-path variable")
    accessors: list[Union[str, int]] = []
    pos = 0
    while pos < len(rest):
        acc = _ACCESSOR_RE.match(rest, pos)
        if not acc:
            raise ParseError(f"bad accessor syntax in {text!r}")
        key_dq, key_sq, index = acc.groups()
        if index is not None:
            accessors.append(int(index))
        else:
            accessors.append(key_dq if key_dq is not None else key_sq)
        pos = acc.end()
    return ValuePath(base, tuple(accessors))


def _parse_predicate(text: str) -> Predicate:
    text = text.strip()
    match = re.match(r"^(\w+)(?:\[@(\w+)\s*=\s*(?:'([^']*)'|\"([^\"]*)\")\])?$", text)
    if not match:
        raise ParseError(f"bad predicate {text!r}")
    tag, attr, value_sq, value_dq = match.groups()
    if attr is None:
        return Predicate(tag)
    return Predicate(tag, attr, value_sq if value_sq is not None else value_dq)


def _parse_action(line: str, scope: _Scope) -> ActionStmt:
    if line in ("GoBack", "ExtractURL"):
        return ActionStmt(line)
    match = _CALL_RE.match(line)
    if not match:
        raise ParseError(f"cannot parse statement {line!r}")
    kind, raw_args = match.groups()
    if kind not in ACTION_KINDS:
        raise ParseError(f"unknown statement {kind!r}")
    args = _split_args(raw_args)
    shape = ACTION_KINDS[kind]
    if shape == "node":
        if len(args) != 1:
            raise ParseError(f"{kind} expects 1 argument, got {len(args)}")
        return ActionStmt(kind, _parse_symbolic_selector(args[0], scope))
    if shape == "node+text":
        if len(args) != 2:
            raise ParseError(f"{kind} expects 2 arguments, got {len(args)}")
        text = args[1].strip()
        if len(text) < 2 or text[0] not in "'\"" or text[-1] != text[0]:
            raise ParseError(f"{kind} text argument must be quoted: {text!r}")
        return ActionStmt(kind, _parse_symbolic_selector(args[0], scope), text=text[1:-1])
    if shape == "node+value":
        if len(args) != 2:
            raise ParseError(f"{kind} expects 2 arguments, got {len(args)}")
        return ActionStmt(
            kind,
            _parse_symbolic_selector(args[0], scope),
            value=_parse_value_path(args[1], scope),
        )
    raise ParseError(f"{kind} takes no arguments")


def _parse_collection(
    text: str, scope: _Scope, var_name: str
) -> tuple[Var, Union[ChildrenOf, DescendantsOf, ValuePathsOf], Optional[Var]]:
    match = _CALL_RE.match(text.strip())
    if not match:
        raise ParseError(f"bad collection {text!r}")
    name, raw_args = match.groups()
    args = _split_args(raw_args)
    if name in ("Children", "Dscts"):
        if len(args) != 2:
            raise ParseError(f"{name} expects 2 arguments")
        base = _parse_symbolic_selector(args[0], scope)
        pred = _parse_predicate(args[1])
        var, previous = scope.bind(var_name, SEL_VAR)
        cls = ChildrenOf if name == "Children" else DescendantsOf
        return var, cls(base, pred), previous
    if name == "ValuePaths":
        if len(args) != 1:
            raise ParseError("ValuePaths expects 1 argument")
        path = _parse_value_path(args[0], scope)
        var, previous = scope.bind(var_name, VAL_VAR)
        return var, ValuePathsOf(path), previous
    raise ParseError(f"unknown collection {name!r}")


def _template_from_steps(steps: tuple[Step, ...], marker: str) -> CounterTemplate:
    """Build a template from concrete steps with one ``marker`` hole.

    The marker must appear exactly once, inside an attribute value, e.g.
    ``//button[@data-page='{k}'][1]``.
    """
    hole_positions = [
        position
        for position, step in enumerate(steps)
        if step.pred.value is not None and marker in step.pred.value
    ]
    if len(hole_positions) != 1:
        rendered = "".join(str(step) for step in steps)
        raise ParseError(
            f"paginate template needs exactly one {marker} hole in an "
            f"attribute value: {rendered!r}"
        )
    hole = hole_positions[0]
    step = steps[hole]
    value_prefix, _, value_suffix = step.pred.value.partition(marker)
    return CounterTemplate(
        prefix_steps=tuple(steps[:hole]),
        axis=step.axis,
        tag=step.pred.tag,
        attr=step.pred.attr,
        value_prefix=value_prefix,
        value_suffix=value_suffix,
        index=step.index,
        suffix_steps=tuple(steps[hole + 1 :]),
    )


def _finish_paginate(counter_name: str, start: int,
                     body: list[_BlockItem]) -> PaginateLoop:
    """Assemble a paginate loop from its parsed block.

    The block must end with a Click whose selector carries the counter
    hole, optionally followed by one ``Advance(selector)`` line (parsed
    into a sentinel by :func:`_parse_block`).
    """
    marker = "{" + counter_name + "}"
    advance: Optional[Selector] = None
    if body and isinstance(body[-1], tuple) and body[-1][0] == "advance":
        advance = body[-1][1]
        body = body[:-1]
    if not body:
        raise ParseError("paginate block needs a templated Click line")
    click = body[-1]
    if not (
        isinstance(click, ActionStmt)
        and click.kind == CLICK
        and click.target is not None
        and click.target.is_concrete
        and any(
            step.pred.value is not None and marker in step.pred.value
            for step in click.target.steps
        )
    ):
        raise ParseError(
            "paginate block must end with a Click whose selector contains "
            f"the counter hole {marker} (then optionally Advance)"
        )
    template = _template_from_steps(click.target.steps, marker)
    statements = body[:-1]
    if not statements:
        raise ParseError("paginate body must contain at least one statement")
    if any(isinstance(stmt, tuple) for stmt in statements):
        raise ParseError("Advance must be the last line of a paginate block")
    return PaginateLoop(tuple(statements), template, advance, start)


def _parse_block(
    lines: list[tuple[int, str]],
    pos: int,
    depth: int,
    scope: _Scope,
    counter: Optional[str] = None,
) -> tuple[list[_BlockItem], int]:
    """Parse statements at ``depth``.

    ``counter`` names the active paginate counter: inside such a block,
    an ``Advance(selector)`` line parses into an ``("advance", sel)``
    sentinel (resolved by :func:`_finish_paginate`) and Click selectors
    may carry the counter hole.
    """
    statements: list[_BlockItem] = []
    while pos < len(lines):
        indent, content = lines[pos]
        if indent < depth:
            break
        if indent > depth:
            raise ParseError(f"unexpected indentation at line {content!r}")
        foreach = _FOREACH_RE.match(content)
        if foreach:
            var_name, coll_text = foreach.groups()
            var, collection, previous = _parse_collection(coll_text, scope, var_name)
            body, pos = _parse_block(lines, pos + 1, depth + 1, scope)
            scope.restore(var_name, previous)
            if not body:
                raise ParseError(f"empty loop body for {content!r}")
            if isinstance(collection, ValuePathsOf):
                statements.append(ForEachValue(var, collection, tuple(body)))
            else:
                statements.append(ForEachSelector(var, collection, tuple(body)))
            continue
        if _WHILE_RE.match(content):
            body, pos = _parse_block(lines, pos + 1, depth + 1, scope)
            if not body:
                raise ParseError("empty while body")
            last = body[-1]
            if not isinstance(last, ActionStmt) or last.kind != CLICK:
                raise ParseError("while body must end with a Click statement")
            statements.append(WhileLoop(tuple(body[:-1]), last))
            continue
        paginate = _PAGINATE_RE.match(content)
        if paginate:
            counter_name, start_text = paginate.groups()
            body, pos = _parse_block(
                lines, pos + 1, depth + 1, scope, counter=counter_name
            )
            statements.append(
                _finish_paginate(counter_name, int(start_text), body)
            )
            continue
        if counter is not None and content.startswith("Advance("):
            match = _CALL_RE.match(content)
            if not match or match.group(1) != "Advance":
                raise ParseError(f"cannot parse {content!r}")
            selector = _parse_symbolic_selector(match.group(2), scope)
            if selector.base is not None:
                raise ParseError("Advance selector must be concrete")
            statements.append(("advance", selector))
            pos += 1
            continue
        statements.append(_parse_action(content, scope))
        pos += 1
    return statements, pos


def parse_program(text: str) -> Program:
    """Parse program text into a :class:`Program`.

    Raises :class:`ParseError` on malformed input.
    """
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        leading = len(raw) - len(raw.lstrip(" "))
        if leading % 2:
            raise ParseError(f"odd indentation in line {raw!r}")
        lines.append((leading // 2, stripped))
    statements, pos = _parse_block(lines, 0, 0, _Scope())
    if pos != len(lines):
        raise ParseError(f"unparsed trailing line {lines[pos][1]!r}")
    return Program(tuple(statements))
