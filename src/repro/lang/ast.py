"""Abstract syntax of the web RPA language (Figure 6 of the paper).

A :class:`Program` is a sequence of statements.  Loop-free statements are
all represented by :class:`ActionStmt` with a ``kind`` drawn from
:data:`ACTION_KINDS`; the three loop forms get their own classes:

* :class:`ForEachSelector` — ``foreach ϱ in Children/Dscts(n, φ) do P``
* :class:`ForEachValue`    — ``foreach ϑ in ValuePaths(v) do P``
* :class:`WhileLoop`       — ``while true do { P ; Click(n) }``

Symbolic selectors (:class:`Selector`) extend concrete selectors with an
optional variable base ϱ; symbolic value paths (:class:`ValuePath`) extend
concrete data paths with an optional variable base ϑ.  Everything is a
frozen dataclass, hence hashable, which the synthesizer relies on for
worklist deduplication.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.dom.xpath import CHILD, DESC, ConcreteSelector, Predicate, Step

# ----------------------------------------------------------------------
# Variables
# ----------------------------------------------------------------------
SEL_VAR = "sel"
VAL_VAR = "val"

_fresh_counter = itertools.count(1)


@dataclass(frozen=True)
class Var:
    """A loop variable: ϱ (``kind == SEL_VAR``) or ϑ (``kind == VAL_VAR``)."""

    kind: str
    uid: int

    def __str__(self) -> str:
        prefix = "r" if self.kind == SEL_VAR else "d"
        return f"{prefix}{self.uid}"


def fresh_var(kind: str) -> Var:
    """Allocate a globally fresh variable of the given kind."""
    return Var(kind, next(_fresh_counter))


# ----------------------------------------------------------------------
# Selectors and value paths
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Selector:
    """A symbolic selector ``n ::= ε | ϱ | n/φ[i] | n//φ[i]``.

    ``base is None`` encodes ε (the document); otherwise the selector is
    rooted at the node a loop variable is bound to.
    """

    base: Optional[Var] = None
    steps: tuple[Step, ...] = ()

    def __post_init__(self) -> None:
        if self.base is not None and self.base.kind != SEL_VAR:
            raise ValueError("selector base must be a selector variable")

    @property
    def is_concrete(self) -> bool:
        """True when the selector mentions no variable."""
        return self.base is None

    def __str__(self) -> str:
        prefix = str(self.base) if self.base is not None else ""
        suffix = "".join(str(step) for step in self.steps)
        if not prefix and not suffix:
            return "/"
        return prefix + suffix


def selector_of(concrete: ConcreteSelector) -> Selector:
    """Lift a concrete selector into the symbolic syntax."""
    return Selector(None, concrete.steps)


@dataclass(frozen=True)
class ValuePath:
    """A symbolic value path ``v ::= x | ϑ | v[key] | v[i]``.

    ``base is None`` encodes the input variable ``x``; accessors are string
    keys or 1-based integer indices.  A value path with ``base is None`` is
    also a *concrete* value path θ as used inside actions.
    """

    base: Optional[Var] = None
    accessors: tuple[Union[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.base is not None and self.base.kind != VAL_VAR:
            raise ValueError("value path base must be a value variable")

    @property
    def is_concrete(self) -> bool:
        """True when the path is rooted at ``x`` rather than a variable."""
        return self.base is None

    def extend(self, accessor: Union[str, int]) -> "ValuePath":
        """Append one accessor."""
        return ValuePath(self.base, self.accessors + (accessor,))

    def __str__(self) -> str:
        prefix = str(self.base) if self.base is not None else "x"
        parts = []
        for accessor in self.accessors:
            if isinstance(accessor, int):
                parts.append(f"[{accessor}]")
            else:
                parts.append(f'["{accessor}"]')
        return prefix + "".join(parts)


#: The bare input value path ``x``.
X = ValuePath(None, ())


# ----------------------------------------------------------------------
# Collections (N and V in Figure 6)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChildrenOf:
    """``Children(n, φ)``: the matching children of ``n`` in order."""

    base: Selector
    pred: Predicate

    def __str__(self) -> str:
        return f"Children({self.base}, {self.pred})"


@dataclass(frozen=True)
class DescendantsOf:
    """``Dscts(n, φ)``: the matching descendants of ``n`` in doc order."""

    base: Selector
    pred: Predicate

    def __str__(self) -> str:
        return f"Dscts({self.base}, {self.pred})"


@dataclass(frozen=True)
class ValuePathsOf:
    """``ValuePaths(v)``: one path per element of the array ``v`` denotes."""

    path: ValuePath

    def __str__(self) -> str:
        return f"ValuePaths({self.path})"


SelectorCollection = Union[ChildrenOf, DescendantsOf]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
CLICK = "Click"
SCRAPE_TEXT = "ScrapeText"
SCRAPE_LINK = "ScrapeLink"
DOWNLOAD = "Download"
GO_BACK = "GoBack"
EXTRACT_URL = "ExtractURL"
SEND_KEYS = "SendKeys"
ENTER_DATA = "EnterData"

#: Loop-free statement kinds, with the argument shape of each.
ACTION_KINDS = {
    CLICK: "node",
    SCRAPE_TEXT: "node",
    SCRAPE_LINK: "node",
    DOWNLOAD: "node",
    GO_BACK: "none",
    EXTRACT_URL: "none",
    SEND_KEYS: "node+text",
    ENTER_DATA: "node+value",
}


@dataclass(frozen=True)
class ActionStmt:
    """A loop-free statement: one browser/data interaction.

    ``target`` is present for all node-addressing kinds, ``text`` only for
    ``SendKeys`` and ``value`` only for ``EnterData``.
    """

    kind: str
    target: Optional[Selector] = None
    text: Optional[str] = None
    value: Optional[ValuePath] = None

    def __post_init__(self) -> None:
        shape = ACTION_KINDS.get(self.kind)
        if shape is None:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if shape == "none" and self.target is not None:
            raise ValueError(f"{self.kind} takes no selector")
        if shape != "none" and self.target is None:
            raise ValueError(f"{self.kind} requires a selector")
        if (self.text is not None) != (shape == "node+text"):
            raise ValueError(f"bad text argument for {self.kind}")
        if (self.value is not None) != (shape == "node+value"):
            raise ValueError(f"bad value argument for {self.kind}")

    def __str__(self) -> str:
        if self.kind in (GO_BACK, EXTRACT_URL):
            return self.kind
        if self.kind == SEND_KEYS:
            return f'{self.kind}({self.target}, "{self.text}")'
        if self.kind == ENTER_DATA:
            return f"{self.kind}({self.target}, {self.value})"
        return f"{self.kind}({self.target})"


@dataclass(frozen=True)
class ForEachSelector:
    """``foreach ϱ in N do P`` over a selector collection."""

    var: Var
    collection: SelectorCollection
    body: tuple["Statement", ...]

    def __post_init__(self) -> None:
        if self.var.kind != SEL_VAR:
            raise ValueError("selector loop variable must have kind SEL_VAR")
        if not self.body:
            raise ValueError("loop body must be non-empty")


@dataclass(frozen=True)
class ForEachValue:
    """``foreach ϑ in ValuePaths(v) do P`` over input-data paths."""

    var: Var
    collection: ValuePathsOf
    body: tuple["Statement", ...]

    def __post_init__(self) -> None:
        if self.var.kind != VAL_VAR:
            raise ValueError("value loop variable must have kind VAL_VAR")
        if not self.body:
            raise ValueError("loop body must be non-empty")


@dataclass(frozen=True)
class WhileLoop:
    """``while true do { P ; Click(n) }`` — click-terminated pagination."""

    body: tuple["Statement", ...]
    click: ActionStmt

    def __post_init__(self) -> None:
        if self.click.kind != CLICK:
            raise ValueError("while loops terminate with a Click statement")


@dataclass(frozen=True)
class CounterTemplate:
    """A concrete selector with an integer hole in one attribute value.

    ``instantiate(k)`` produces the selector whose hole step carries the
    predicate ``tag[@attr='{value_prefix}{k}{value_suffix}']``.  This is
    the selector family of numbered pagination controls: page-number
    buttons differing only in a counter-bearing attribute
    (``data-page='2'`` / ``data-page='3'``, ``href='?page=4'``, ...).

    Part of the numbered-pagination extension (beyond the paper — §7.1
    names this mechanism as unsupported).
    """

    prefix_steps: tuple[Step, ...]
    axis: str
    tag: str
    attr: str
    value_prefix: str
    value_suffix: str
    index: int = 1
    suffix_steps: tuple[Step, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("template step indices are 1-based")

    def instantiate(self, counter: int) -> ConcreteSelector:
        """The concrete selector addressing page-control ``counter``."""
        if self.axis not in (CHILD, DESC):
            raise ValueError(f"unknown axis {self.axis!r}")
        value = f"{self.value_prefix}{counter}{self.value_suffix}"
        hole = Step(self.axis, Predicate(self.tag, self.attr, value), self.index)
        return ConcreteSelector(self.prefix_steps + (hole,) + self.suffix_steps)

    def hole_text(self, marker: str = "{k}") -> str:
        """The template rendered with ``marker`` in the hole."""
        value = f"{self.value_prefix}{marker}{self.value_suffix}"
        hole = Step(self.axis, Predicate(self.tag, self.attr, value), self.index)
        steps = self.prefix_steps + (hole,) + self.suffix_steps
        return "".join(str(step) for step in steps)

    def __str__(self) -> str:
        return self.hole_text()


@dataclass(frozen=True)
class PaginateLoop:
    """Numbered pagination (extension): counter-templated page clicks.

    Executes ``body`` once per page.  After each round, the counter κ
    (starting at ``start``) addresses the next page control through
    ``template``: if ``template(κ)`` denotes a node it is clicked;
    otherwise the optional ``advance`` control (a "next block of pages"
    button) is clicked when present — landing on page κ, so the counter
    keeps advancing uniformly; when neither resolves, the loop ends.

    This covers the paper's b9 failure case (timesjobs-style numbered
    pagers with a "next 10 pages" button), which no click-terminated
    while loop can express: advancing one page means clicking a
    *different* button every iteration.
    """

    body: tuple["Statement", ...]
    template: CounterTemplate
    advance: Optional[Selector] = None
    start: int = 2

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("paginate body must be non-empty")
        if self.advance is not None and self.advance.base is not None:
            raise ValueError("paginate advance selector must be concrete")
        if self.start < 0:
            raise ValueError("paginate counter must start at a non-negative page")


Statement = Union[ActionStmt, ForEachSelector, ForEachValue, WhileLoop, PaginateLoop]


@dataclass(frozen=True)
class Program:
    """A web RPA program: a statement sequence."""

    statements: tuple[Statement, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)


# ----------------------------------------------------------------------
# Size and alpha-equivalence
# ----------------------------------------------------------------------
def selector_size(selector: Selector) -> int:
    """AST size of a symbolic selector (base + steps)."""
    return 1 + len(selector.steps)


def statement_size(stmt: Statement) -> int:
    """AST node count of one statement (used by the smallest-program rank)."""
    if isinstance(stmt, ActionStmt):
        size = 1
        if stmt.target is not None:
            size += selector_size(stmt.target)
        if stmt.value is not None:
            size += 1 + len(stmt.value.accessors)
        if stmt.text is not None:
            size += 1
        return size
    if isinstance(stmt, ForEachSelector):
        return 2 + selector_size(stmt.collection.base) + sum(
            statement_size(child) for child in stmt.body
        )
    if isinstance(stmt, ForEachValue):
        return 2 + len(stmt.collection.path.accessors) + sum(
            statement_size(child) for child in stmt.body
        )
    if isinstance(stmt, WhileLoop):
        return 1 + statement_size(stmt.click) + sum(
            statement_size(child) for child in stmt.body
        )
    if isinstance(stmt, PaginateLoop):
        template_size = 2 + len(stmt.template.prefix_steps) + len(stmt.template.suffix_steps)
        advance_size = 0 if stmt.advance is None else selector_size(stmt.advance)
        return (
            1
            + template_size
            + advance_size
            + sum(statement_size(child) for child in stmt.body)
        )
    raise TypeError(f"not a statement: {stmt!r}")


def program_size(program: Program) -> int:
    """Total AST node count of a program."""
    return sum(statement_size(stmt) for stmt in program.statements)


def statement_depth(stmt: Statement) -> int:
    """Loop-nesting depth of one statement (0 for loop-free)."""
    if isinstance(stmt, (ForEachSelector, ForEachValue, WhileLoop, PaginateLoop)):
        return 1 + max((statement_depth(child) for child in stmt.body), default=0)
    return 0


def program_depth(program: Program) -> int:
    """Maximum loop-nesting depth across a program's statements."""
    return max((statement_depth(stmt) for stmt in program.statements), default=0)


def _canon_var(var: Var, names: dict[Var, int]) -> tuple:
    """Bound variables get de Bruijn-style numbers; free ones keep their uid."""
    if var in names:
        return ("var", names[var])
    return ("free", var.kind, var.uid)


def _canon_selector(selector: Selector, names: dict[Var, int]) -> tuple:
    base = _canon_var(selector.base, names) if selector.base is not None else ("eps",)
    return (base, selector.steps)


def _canon_path(path: ValuePath, names: dict[Var, int]) -> tuple:
    base = _canon_var(path.base, names) if path.base is not None else ("x",)
    return (base, path.accessors)


def _canon_stmt(stmt: Statement, names: dict[Var, int]) -> tuple[object, ...]:
    if isinstance(stmt, ActionStmt):
        return (
            stmt.kind,
            _canon_selector(stmt.target, names) if stmt.target else None,
            stmt.text,
            _canon_path(stmt.value, names) if stmt.value else None,
        )
    if isinstance(stmt, ForEachSelector):
        inner = dict(names)
        inner[stmt.var] = len(names)
        coll_tag = "children" if isinstance(stmt.collection, ChildrenOf) else "dscts"
        return (
            "foreach-sel",
            coll_tag,
            _canon_selector(stmt.collection.base, names),
            stmt.collection.pred,
            tuple(_canon_stmt(child, inner) for child in stmt.body),
        )
    if isinstance(stmt, ForEachValue):
        inner = dict(names)
        inner[stmt.var] = len(names)
        return (
            "foreach-val",
            _canon_path(stmt.collection.path, names),
            tuple(_canon_stmt(child, inner) for child in stmt.body),
        )
    if isinstance(stmt, WhileLoop):
        return (
            "while",
            tuple(_canon_stmt(child, names) for child in stmt.body),
            _canon_stmt(stmt.click, names),
        )
    if isinstance(stmt, PaginateLoop):
        return (
            "paginate",
            stmt.template,
            _canon_selector(stmt.advance, names) if stmt.advance is not None else None,
            stmt.start,
            tuple(_canon_stmt(child, names) for child in stmt.body),
        )
    raise TypeError(f"not a statement: {stmt!r}")


def canonical_statement(stmt: Statement) -> tuple[object, ...]:
    """A hashable key identifying ``stmt`` up to bound-variable renaming.

    The key is cached on the statement object itself: statements are
    frozen (hence immutable) dataclasses, so the digest can never go
    stale, and the synthesizer re-canonicalizes the same shared
    statement objects constantly — worklist dedup keys, speculation
    dedup, ranking ties — making this the cheapest possible memo: no
    table, no eviction, no pinning.
    """
    cached: Optional[tuple[object, ...]] = stmt.__dict__.get("_canonical")
    if cached is None:
        cached = _canon_stmt(stmt, {})
        object.__setattr__(stmt, "_canonical", cached)
    return cached


def canonical_program(program: Program) -> tuple[tuple[object, ...], ...]:
    """A hashable key identifying ``program`` up to alpha-equivalence."""
    return tuple(canonical_statement(stmt) for stmt in program.statements)


def alpha_equivalent(a: Statement, b: Statement) -> bool:
    """Alpha-equivalence of statements (Figure 10 rule (2) side condition)."""
    return canonical_statement(a) == canonical_statement(b)


def alpha_equivalent_bodies(
    body_a: tuple[Statement, ...],
    var_a: Var,
    body_b: tuple[Statement, ...],
    var_b: Var,
) -> bool:
    """Alpha-equivalence of two loop bodies relative to their loop variables.

    Used by the anti-unification rule for nested selector loops, where the
    bodies mention *different* loop variables that must correspond.
    """
    if len(body_a) != len(body_b):
        return False
    names_a: dict[Var, int] = {var_a: 0}
    names_b: dict[Var, int] = {var_b: 0}
    return all(
        _canon_stmt(sa, names_a) == _canon_stmt(sb, names_b)
        for sa, sb in zip(body_a, body_b)
    )
