"""Robustness and intent lints for web RPA programs.

:mod:`repro.lang.check` answers "is this program well-formed?"; this
module answers "will this robot do what its author meant, and keep
doing it?".  Each rule flags a pattern that is legal but usually wrong
in practice:

``brittle-selector``
    An action addresses a node by a long absolute tag-indexed path —
    exactly the selector shape that breaks when the page drifts.  The
    fix is an attribute-anchored alternative selector (what the
    synthesizer's selector search produces) or replay with
    :class:`repro.browser.repair.RepairingReplayer`.
``constant-entry-in-loop``
    ``SendKeys`` with constant text inside a value-path loop: every
    iteration types the same string, which almost always means the
    demonstration's drag-and-drop was recorded as a keystroke — the
    author wanted ``EnterData`` with the loop variable.
``loop-invariant-entry``
    ``EnterData`` inside a value-path loop whose value path ignores the
    loop variable: each iteration re-enters the same datum.
``duplicate-extraction``
    The same scrape statement appears twice in one body — the output
    will contain every value twice.
``mergeable-loops``
    Two consecutive loops over the *same* collection.  A single pass is
    smaller, faster, and likelier the intended program; the paper's b9
    discussion shows exactly this shape arising as a mis-generalization
    (a sequence of per-page loops instead of one pagination loop).
``unrolled-repetition``
    Three or more consecutive actions identical up to one selector
    index counting 1, 2, 3, … — an unrolled loop.  The synthesizer
    would roll it; a hand-written program should use ``foreach``.
``deep-nesting``
    Loop nesting beyond three levels.  The paper's 76-benchmark corpus
    tops out at three; deeper almost always indicates an accidental
    nesting during manual editing.
``no-extraction``
    The program performs no ``ScrapeText``/``ScrapeLink``/``Download``/
    ``ExtractURL`` — the robot runs and produces nothing observable.

:func:`lint_program` runs every rule (minus an optional ``disable``
set) and returns findings sorted by position.

>>> from repro.lang.parser import parse_program
>>> [f.rule for f in lint_program(parse_program("Click(//a[1])"))]
['no-extraction']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.lang.ast import (
    ActionStmt,
    DOWNLOAD,
    ENTER_DATA,
    EXTRACT_URL,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    SCRAPE_LINK,
    SCRAPE_TEXT,
    SEND_KEYS,
    Selector,
    Statement,
    Var,
    WhileLoop,
    program_depth,
)

INFO = "info"
WARNING = "warning"

#: Kinds whose execution yields an observable output.
_EXTRACTING_KINDS = (SCRAPE_TEXT, SCRAPE_LINK, DOWNLOAD, EXTRACT_URL)

#: Absolute selectors at least this long with no attribute anchor are
#: considered brittle.
_BRITTLE_STEPS = 4

#: Minimum run length for the unrolled-repetition rule.
_UNROLL_RUN = 3


@dataclass(frozen=True)
class LintFinding:
    """One lint result: rule id, severity, statement path, message."""

    rule: str
    severity: str
    path: tuple[int, ...]
    message: str

    def __str__(self) -> str:
        where = ".".join(str(index) for index in self.path) or "<top>"
        return f"{self.severity}[{self.rule}] at {where}: {self.message}"


# ----------------------------------------------------------------------
# Walking
# ----------------------------------------------------------------------
def _walk_bodies(
    body: tuple[Statement, ...], path: tuple[int, ...], loops: tuple[Statement, ...]
) -> Iterator[tuple[tuple[int, ...], tuple[Statement, ...], tuple[Statement, ...]]]:
    """Yield every statement sequence with its path prefix and loop stack.

    The while loop's terminating click participates in its body sequence
    (it executes after the body every iteration), so rules over bodies
    see it at index ``len(body)``.
    """
    yield path, body, loops
    for index, stmt in enumerate(body):
        inner_path = path + (index,)
        if isinstance(stmt, (ForEachSelector, ForEachValue, PaginateLoop)):
            yield from _walk_bodies(stmt.body, inner_path, loops + (stmt,))
        elif isinstance(stmt, WhileLoop):
            yield from _walk_bodies(
                stmt.body + (stmt.click,), inner_path, loops + (stmt,)
            )


def _walk_statements(
    program: Program,
) -> Iterator[tuple[tuple[int, ...], Statement, tuple[Statement, ...]]]:
    """Yield ``(path, statement, enclosing loops)`` for every statement."""
    for path, body, loops in _walk_bodies(program.statements, (), ()):
        for index, stmt in enumerate(body):
            yield path + (index,), stmt, loops


def _value_loop_vars(loops: tuple[Statement, ...]) -> list[Var]:
    """The value-path loop variables bound by the enclosing loop stack."""
    return [loop.var for loop in loops if isinstance(loop, ForEachValue)]


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _rule_brittle_selector(program: Program) -> Iterator[LintFinding]:
    for path, stmt, _loops in _walk_statements(program):
        if not isinstance(stmt, ActionStmt) or stmt.target is None:
            continue
        selector = stmt.target
        if selector.base is not None or len(selector.steps) < _BRITTLE_STEPS:
            continue
        if any(step.pred.attr is not None for step in selector.steps):
            continue
        yield LintFinding(
            "brittle-selector",
            INFO,
            path,
            f"{stmt.kind} addresses {selector} by absolute position only; "
            "an attribute-anchored selector (or repair-mode replay) survives "
            "page drift",
        )


def _rule_constant_entry(program: Program) -> Iterator[LintFinding]:
    for path, stmt, loops in _walk_statements(program):
        if not isinstance(stmt, ActionStmt):
            continue
        value_vars = _value_loop_vars(loops)
        if not value_vars:
            continue
        if stmt.kind == SEND_KEYS:
            yield LintFinding(
                "constant-entry-in-loop",
                WARNING,
                path,
                f'SendKeys types the constant "{stmt.text}" on every iteration '
                f"of the loop over {value_vars[-1]}; EnterData with the loop "
                "variable is almost always what was demonstrated",
            )
        elif stmt.kind == ENTER_DATA and stmt.value is not None and stmt.value.base is None:
            yield LintFinding(
                "loop-invariant-entry",
                WARNING,
                path,
                f"EnterData re-enters {stmt.value} on every iteration of the "
                f"loop over {value_vars[-1]}; did you mean a path rooted at "
                "the loop variable?",
            )


def _rule_duplicate_extraction(program: Program) -> Iterator[LintFinding]:
    for path, body, _loops in _walk_bodies(program.statements, (), ()):
        seen: dict[ActionStmt, int] = {}
        for index, stmt in enumerate(body):
            if not isinstance(stmt, ActionStmt) or stmt.kind not in _EXTRACTING_KINDS:
                continue
            if stmt in seen:
                yield LintFinding(
                    "duplicate-extraction",
                    WARNING,
                    path + (index,),
                    f"{stmt} already extracted at position {seen[stmt]} of the "
                    "same body; outputs will repeat",
                )
            else:
                seen[stmt] = index


def _same_collection(a: Statement, b: Statement) -> bool:
    return (
        isinstance(a, ForEachSelector)
        and isinstance(b, ForEachSelector)
        and a.collection == b.collection
    ) or (
        isinstance(a, ForEachValue)
        and isinstance(b, ForEachValue)
        and a.collection == b.collection
    )


def _rule_mergeable_loops(program: Program) -> Iterator[LintFinding]:
    for path, body, _loops in _walk_bodies(program.statements, (), ()):
        for index in range(len(body) - 1):
            if _same_collection(body[index], body[index + 1]):
                yield LintFinding(
                    "mergeable-loops",
                    INFO,
                    path + (index + 1,),
                    "consecutive loops over the same collection; one pass is "
                    "smaller and likelier intended (the paper's b9 reports this "
                    "shape arising as a mis-generalization)",
                )


def _index_successor(first: Selector, second: Selector) -> bool:
    """Do the selectors differ in exactly one step index, counting up by 1?"""
    if first.base != second.base or len(first.steps) != len(second.steps):
        return False
    deltas = [
        position
        for position, (a, b) in enumerate(zip(first.steps, second.steps))
        if a != b
    ]
    if len(deltas) != 1:
        return False
    a, b = first.steps[deltas[0]], second.steps[deltas[0]]
    return a.axis == b.axis and a.pred == b.pred and b.index == a.index + 1


def _is_successor(first: Statement, second: Statement) -> bool:
    return (
        isinstance(first, ActionStmt)
        and isinstance(second, ActionStmt)
        and first.kind == second.kind
        and first.text == second.text
        and first.value == second.value
        and first.target is not None
        and second.target is not None
        and _index_successor(first.target, second.target)
    )


def _rule_unrolled_repetition(program: Program) -> Iterator[LintFinding]:
    for path, body, _loops in _walk_bodies(program.statements, (), ()):
        run_start = 0
        index = 1
        # a run of k statements covers k occurrences; report once per run
        while index <= len(body):
            extending = index < len(body) and _is_successor(body[index - 1], body[index])
            if not extending:
                if index - run_start >= _UNROLL_RUN:
                    yield LintFinding(
                        "unrolled-repetition",
                        WARNING,
                        path + (run_start,),
                        f"{index - run_start} consecutive {body[run_start].kind} "
                        "statements step through indices 1, 2, 3, …; a foreach "
                        "loop expresses this in one statement",
                    )
                run_start = index
            index += 1


def _rule_deep_nesting(program: Program) -> Iterator[LintFinding]:
    depth = program_depth(program)
    if depth > 3:
        yield LintFinding(
            "deep-nesting",
            INFO,
            (),
            f"loop nesting reaches depth {depth}; the paper's corpus tops out "
            "at 3 — check for accidental nesting",
        )


def _rule_no_extraction(program: Program) -> Iterator[LintFinding]:
    for _path, stmt, _loops in _walk_statements(program):
        if isinstance(stmt, ActionStmt) and stmt.kind in _EXTRACTING_KINDS:
            return
    yield LintFinding(
        "no-extraction",
        WARNING,
        (),
        "the program extracts nothing (no ScrapeText/ScrapeLink/Download/"
        "ExtractURL); the robot will run and produce no output",
    )


#: Registered rules, in reporting-priority order.
RULES: dict[str, Callable[[Program], Iterator[LintFinding]]] = {
    "constant-entry-in-loop": _rule_constant_entry,
    "loop-invariant-entry": _rule_constant_entry,
    "duplicate-extraction": _rule_duplicate_extraction,
    "unrolled-repetition": _rule_unrolled_repetition,
    "mergeable-loops": _rule_mergeable_loops,
    "brittle-selector": _rule_brittle_selector,
    "deep-nesting": _rule_deep_nesting,
    "no-extraction": _rule_no_extraction,
}


def lint_program(
    program: Program, disable: Optional[set[str]] = None
) -> list[LintFinding]:
    """All lint findings for ``program``, sorted by statement position.

    ``disable`` suppresses rules by id (both entry-rule ids map to the
    same checker, so disabling one still reports the other).
    """
    disabled = disable or set()
    unknown = disabled - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rules: {', '.join(sorted(unknown))}")
    findings: list[LintFinding] = []
    seen_rules: set[Callable[[Program], Iterator[LintFinding]]] = set()
    for name, rule in RULES.items():
        if name in disabled or rule in seen_rules:
            continue
        seen_rules.add(rule)
        findings.extend(
            finding for finding in rule(program) if finding.rule not in disabled
        )
    findings.sort(key=lambda finding: (finding.path, finding.rule))
    return findings


def warnings_only(findings: list[LintFinding]) -> list[LintFinding]:
    """Filter findings down to warning severity."""
    return [finding for finding in findings if finding.severity == WARNING]
