"""Concrete actions — the trace alphabet (§3.2 of the paper).

An action is a loop-free interaction with *concrete* arguments: a concrete
selector ρ for node-addressing actions, a literal string for ``SendKeys``,
and a concrete value path θ (rooted at ``x``) for ``EnterData``.  User
demonstrations, recorded executions, and the trace semantics all speak in
actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dom.xpath import ConcreteSelector
from repro.lang.ast import (
    ACTION_KINDS,
    CLICK,
    DOWNLOAD,
    ENTER_DATA,
    EXTRACT_URL,
    GO_BACK,
    SCRAPE_LINK,
    SCRAPE_TEXT,
    SEND_KEYS,
    ActionStmt,
    Selector,
    ValuePath,
    selector_of,
)


@dataclass(frozen=True)
class Action:
    """One concrete action ``a`` (see the action grammar in §3.2)."""

    kind: str
    selector: Optional[ConcreteSelector] = None
    text: Optional[str] = None
    path: Optional[ValuePath] = None

    def __post_init__(self) -> None:
        shape = ACTION_KINDS.get(self.kind)
        if shape is None:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if (self.selector is not None) != (shape != "none"):
            raise ValueError(f"bad selector argument for {self.kind}")
        if (self.text is not None) != (shape == "node+text"):
            raise ValueError(f"bad text argument for {self.kind}")
        if shape == "node+value":
            if self.path is None or not self.path.is_concrete:
                raise ValueError(f"{self.kind} requires a concrete value path")
        elif self.path is not None:
            raise ValueError(f"bad value argument for {self.kind}")

    def __str__(self) -> str:
        if self.kind in (GO_BACK, EXTRACT_URL):
            return self.kind
        if self.kind == SEND_KEYS:
            return f'{self.kind}({self.selector}, "{self.text}")'
        if self.kind == ENTER_DATA:
            return f"{self.kind}({self.selector}, {self.path})"
        return f"{self.kind}({self.selector})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def click(selector: ConcreteSelector) -> Action:
    """Build a ``Click`` action."""
    return Action(CLICK, selector)


def scrape_text(selector: ConcreteSelector) -> Action:
    """Build a ``ScrapeText`` action."""
    return Action(SCRAPE_TEXT, selector)


def scrape_link(selector: ConcreteSelector) -> Action:
    """Build a ``ScrapeLink`` action."""
    return Action(SCRAPE_LINK, selector)


def download(selector: ConcreteSelector) -> Action:
    """Build a ``Download`` action."""
    return Action(DOWNLOAD, selector)


def go_back() -> Action:
    """Build a ``GoBack`` action."""
    return Action(GO_BACK)


def extract_url() -> Action:
    """Build an ``ExtractURL`` action."""
    return Action(EXTRACT_URL)


def send_keys(selector: ConcreteSelector, text: str) -> Action:
    """Build a ``SendKeys`` action."""
    return Action(SEND_KEYS, selector, text=text)


def enter_data(selector: ConcreteSelector, path: ValuePath) -> Action:
    """Build an ``EnterData`` action."""
    return Action(ENTER_DATA, selector, path=path)


# ----------------------------------------------------------------------
# Bridging actions and statements
# ----------------------------------------------------------------------
def action_to_statement(action: Action) -> ActionStmt:
    """Lift a concrete action into a (variable-free) statement.

    Algorithm 1 initializes its worklist with the program ``a1; ··; am``:
    this is the lifting it uses.
    """
    target: Optional[Selector] = None
    if action.selector is not None:
        target = selector_of(action.selector)
    return ActionStmt(action.kind, target, action.text, action.path)


def statement_to_action(stmt: ActionStmt) -> Action:
    """Drop a *concrete* statement back to an action.

    Raises ``ValueError`` if the statement still mentions a variable.
    """
    selector: Optional[ConcreteSelector] = None
    if stmt.target is not None:
        if not stmt.target.is_concrete:
            raise ValueError(f"statement is not concrete: {stmt}")
        selector = ConcreteSelector(stmt.target.steps)
    if stmt.value is not None and not stmt.value.is_concrete:
        raise ValueError(f"statement is not concrete: {stmt}")
    return Action(stmt.kind, selector, stmt.text, stmt.value)
