"""Static well-formedness checking for web RPA programs.

The dataclass constructors in :mod:`repro.lang.ast` enforce *local*
shape invariants (a while loop ends in a Click, action arguments match
their kind).  This module adds the *global* checks a user-written or
deserialized program needs before it can be executed or exported:

* every selector/value variable is bound by an enclosing loop of the
  right kind (no free variables, no cross-kind capture);
* no loop shadows a variable that is still in scope (the synthesizer
  never produces shadowing, and the pretty-printer's display names
  assume it);
* loop variables are *used* somewhere in their body (an unused loop
  variable almost always indicates a mis-parametrized program — the
  paper's rules always produce at least one use);
* value paths type-check against a concrete :class:`DataSource` when
  one is supplied: keys exist, integer indices fall inside arrays,
  ``ValuePaths`` ranges over an actual array, and ``EnterData`` enters
  a scalar.

Diagnostics are collected, not raised, so a front end can show all of
them at once; :func:`check_program` returns the list and
:func:`assert_well_formed` raises :class:`CheckError` on the first
error for programmatic use.

>>> from repro.lang.parser import parse_program
>>> check_program(parse_program("ScrapeText(//h3[1])"))
[]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lang.ast import (
    ActionStmt,
    ChildrenOf,
    DescendantsOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    SEL_VAR,
    Selector,
    Statement,
    ValuePath,
    Var,
    WhileLoop,
)
from repro.lang.data import DataSource
from repro.util.errors import CheckError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: severity, a statement path, and a message.

    ``path`` locates the statement inside the program: a sequence of
    0-based body indices from the top level down (a while loop's
    terminating click is addressed by its body length).
    """

    severity: str
    path: tuple[int, ...]
    message: str

    def __str__(self) -> str:
        where = ".".join(str(index) for index in self.path) or "<top>"
        return f"{self.severity} at {where}: {self.message}"


class _Scope:
    """The variables in scope, with the statement path binding each."""

    def __init__(self) -> None:
        self._bound: dict[Var, tuple[int, ...]] = {}

    def bind(self, var: Var, path: tuple[int, ...]) -> Optional[tuple[int, ...]]:
        """Bind ``var``; returns the previous binding path when shadowing."""
        previous = self._bound.get(var)
        self._bound[var] = path
        return previous

    def unbind(self, var: Var, previous: Optional[tuple[int, ...]]) -> None:
        """Restore the scope on loop exit."""
        if previous is None:
            del self._bound[var]
        else:
            self._bound[var] = previous

    def __contains__(self, var: Var) -> bool:
        return var in self._bound


class _Checker:
    """Single-pass walker collecting diagnostics."""

    def __init__(self, data: Optional[DataSource]) -> None:
        self.data = data
        self.diagnostics: list[Diagnostic] = []
        self.scope = _Scope()

    # ------------------------------------------------------------------
    def error(self, path: tuple[int, ...], message: str) -> None:
        self.diagnostics.append(Diagnostic(ERROR, path, message))

    def warning(self, path: tuple[int, ...], message: str) -> None:
        self.diagnostics.append(Diagnostic(WARNING, path, message))

    # ------------------------------------------------------------------
    def check_program(self, program: Program) -> None:
        for index, stmt in enumerate(program.statements):
            self.check_statement(stmt, (index,))

    def check_statement(self, stmt: Statement, path: tuple[int, ...]) -> None:
        if isinstance(stmt, ActionStmt):
            self.check_action(stmt, path)
        elif isinstance(stmt, ForEachSelector):
            self.check_selector_loop(stmt, path)
        elif isinstance(stmt, ForEachValue):
            self.check_value_loop(stmt, path)
        elif isinstance(stmt, WhileLoop):
            self.check_while(stmt, path)
        elif isinstance(stmt, PaginateLoop):
            self.check_paginate(stmt, path)
        else:  # pragma: no cover - exhaustive over Statement
            self.error(path, f"unknown statement type {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def check_action(self, stmt: ActionStmt, path: tuple[int, ...]) -> None:
        if stmt.target is not None:
            self.check_selector(stmt.target, path)
        if stmt.value is not None:
            self.check_value_path(stmt.value, path, entering=True)

    def check_selector(self, selector: Selector, path: tuple[int, ...]) -> None:
        if selector.base is not None and selector.base not in self.scope:
            self.error(path, f"free selector variable {selector.base}")

    def check_value_path(
        self, value: ValuePath, path: tuple[int, ...], entering: bool = False
    ) -> None:
        if value.base is not None:
            if value.base not in self.scope:
                self.error(path, f"free value variable {value.base}")
            return  # symbolic: data typing is checked at the binding loop
        if self.data is None:
            return
        if not self.data.contains(value):
            self.error(path, f"value path {value} does not resolve in the data source")
            return
        if entering:
            resolved = self.data.resolve(value)
            if isinstance(resolved, (dict, list)):
                self.error(
                    path,
                    f"EnterData needs a scalar but {value} denotes a "
                    f"{type(resolved).__name__}",
                )

    # ------------------------------------------------------------------
    def check_selector_loop(self, stmt: ForEachSelector, path: tuple[int, ...]) -> None:
        self.check_selector(stmt.collection.base, path)
        if not isinstance(stmt.collection, (ChildrenOf, DescendantsOf)):
            self.error(path, f"bad selector collection {stmt.collection!r}")
        self._check_loop_body(stmt.var, stmt.body, path)

    def check_value_loop(self, stmt: ForEachValue, path: tuple[int, ...]) -> None:
        source = stmt.collection.path
        if source.base is not None:
            if source.base not in self.scope:
                self.error(path, f"free value variable {source.base}")
        elif self.data is not None:
            try:
                self.data.get_array(source)
            except Exception as exc:
                self.error(path, f"ValuePaths({source}): {exc}")
        self._check_loop_body(stmt.var, stmt.body, path)

    def check_while(self, stmt: WhileLoop, path: tuple[int, ...]) -> None:
        if not stmt.body:
            self.warning(path, "while loop with empty body clicks forever")
        for index, child in enumerate(stmt.body):
            self.check_statement(child, path + (index,))
        self.check_action(stmt.click, path + (len(stmt.body),))

    def check_paginate(self, stmt: PaginateLoop, path: tuple[int, ...]) -> None:
        if stmt.template.attr is None:
            self.error(path, "paginate template hole must sit in an attribute value")
        if stmt.start == 0:
            self.warning(path, "paginate counter starts at 0 — pagers usually count from 1")
        if stmt.advance is not None:
            self.check_selector(stmt.advance, path)
        for index, child in enumerate(stmt.body):
            self.check_statement(child, path + (index,))

    def _check_loop_body(
        self,
        var: Var,
        body: tuple[Statement, ...],
        path: tuple[int, ...],
    ) -> None:
        previous = self.scope.bind(var, path)
        if previous is not None:
            self.error(path, f"loop variable {var} shadows an enclosing binding")
        for index, child in enumerate(body):
            self.check_statement(child, path + (index,))
        if not _uses_var(body, var):
            self.warning(path, f"loop variable {var} is never used in the body")
        self.scope.unbind(var, previous)


# ----------------------------------------------------------------------
# Variable-usage analysis
# ----------------------------------------------------------------------
def _selector_uses(selector: Optional[Selector], var: Var) -> bool:
    return selector is not None and selector.base == var


def _path_uses(value: Optional[ValuePath], var: Var) -> bool:
    return value is not None and value.base == var


def _stmt_uses(stmt: Statement, var: Var) -> bool:
    if isinstance(stmt, ActionStmt):
        return _selector_uses(stmt.target, var) or _path_uses(stmt.value, var)
    if isinstance(stmt, ForEachSelector):
        return _selector_uses(stmt.collection.base, var) or _uses_var(stmt.body, var)
    if isinstance(stmt, ForEachValue):
        return _path_uses(stmt.collection.path, var) or _uses_var(stmt.body, var)
    if isinstance(stmt, WhileLoop):
        return _uses_var(stmt.body, var) or _stmt_uses(stmt.click, var)
    if isinstance(stmt, PaginateLoop):
        return _uses_var(stmt.body, var)
    return False


def _uses_var(body: tuple[Statement, ...], var: Var) -> bool:
    """True when any statement in ``body`` mentions ``var``."""
    return any(_stmt_uses(stmt, var) for stmt in body)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def check_program(
    program: Program, data: Optional[DataSource] = None
) -> list[Diagnostic]:
    """All diagnostics for ``program`` (empty list = well-formed).

    With ``data`` supplied, value paths are additionally type-checked
    against the concrete data source.
    """
    checker = _Checker(data)
    checker.check_program(program)
    return checker.diagnostics


def errors_only(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Filter diagnostics down to hard errors."""
    return [diag for diag in diagnostics if diag.severity == ERROR]


def assert_well_formed(program: Program, data: Optional[DataSource] = None) -> None:
    """Raise :class:`CheckError` on the first error-severity diagnostic."""
    problems = errors_only(check_program(program, data))
    if problems:
        raise CheckError(str(problems[0]))
