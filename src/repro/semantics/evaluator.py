"""The trace semantics of the web RPA language (Figure 7 of the paper).

This module implements the simulated execution judgment::

    Π, Σ ⊢ P ⇝ A′, Π′, Σ′

A program runs against a *recorded* DOM trace instead of a live browser:
every emitted action consumes the head snapshot ("angelic" transition), and
loop continuation is decided by ``valid(ρ, π₁)`` checks against the current
head snapshot only.  Executing a program this way is side-effect free, which
is what lets the synthesizer evaluate candidate programs that would be
dangerous to run for real.

Rule correspondence
-------------------
========================  =============================================
Paper rule                Implementation
========================  =============================================
Term                      the ``doms.is_empty`` guards
Seq                       :func:`_eval_sequence`
Click/EnterData/...       :func:`_eval_action`
S-Init / S-Cont / S-Term  :func:`_eval_selector_loop`
VP-Loop                   :func:`_eval_value_loop`
While-Init/Cont/Term      :func:`_eval_while_loop`
Figure 8 (1)-(8)          :meth:`repro.semantics.env.Env.resolve_selector`
                          / ``resolve_path``
Figure 8 (9)-(11)         collection expansion inside the loop rules
========================  =============================================

One point where the paper's prose and its figure diverge: Example 3.1 says
that executing ``Click(ϱ/b)`` when ``//a[1]/b`` does not denote a node in
π₁ "produces a shorter action trace", while the Click rule in Figure 7
emits unconditionally.  We follow the example: node-addressing actions
check ``valid(ρ, π₁)`` (and ``EnterData`` checks that its value path
resolves in ``I``) before emitting, and execution halts when the check
fails.  For any program that actually corresponds to the recorded trace
the check never fires — it only makes wrong candidates fail earlier, so
satisfaction (Definition 4.1) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import valid
from repro.lang.actions import Action
from repro.lang.ast import (
    ActionStmt,
    CLICK,
    ChildrenOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)
from repro.lang.data import DataSource
from repro.semantics.env import Env
from repro.semantics.trace import DOMTrace
from repro.util.errors import DataPathError


@dataclass
class EvalResult:
    """Outcome of a simulated execution: A′, Π′ and Σ′.

    ``env_at_last_action`` is Σ as of the final emitted action (the
    initial Σ when nothing was emitted).  Once the action budget is
    exhausted every loop/sequence checks ``halted`` before binding, so
    this is exactly the final environment of a run whose budget equals
    the action count — the execution cache uses ``env_at_last_action is
    env`` to decide whether a memoized outcome may serve such a run.
    """

    actions: list[Action]
    remaining: DOMTrace
    env: Env
    env_at_last_action: Optional[Env] = None


class _Context:
    """Per-execution configuration: data source, action budget, halt flag.

    ``last_env`` tracks Σ as of the most recent emitted action (see
    :class:`EvalResult.env_at_last_action`).
    """

    __slots__ = ("data", "budget", "stuck", "last_env")

    def __init__(self, data: DataSource, max_actions: Optional[int]) -> None:
        self.data = data
        self.budget = max_actions if max_actions is not None else float("inf")
        self.stuck = False
        self.last_env: Optional[Env] = None

    def spend(self) -> None:
        self.budget -= 1

    @property
    def halted(self) -> bool:
        """True once the budget is spent or an action failed validity."""
        return self.stuck or self.budget <= 0


def execute(
    program: Program | Sequence[Statement],
    doms: DOMTrace,
    data: DataSource,
    env: Optional[Env] = None,
    max_actions: Optional[int] = None,
) -> EvalResult:
    """Run ``program`` under the trace semantics.

    Parameters
    ----------
    program:
        A :class:`Program` or a raw statement sequence.
    doms:
        The DOM trace Π guiding the simulation.  One snapshot is consumed
        per emitted action.
    data:
        The input data source ``I``.
    env:
        Initial environment (defaults to empty — the ``Eval`` rule).
    max_actions:
        Optional hard cap on emitted actions.  The synthesizer uses
        ``m + 1`` to avoid simulating past the first prediction.
    """
    statements = tuple(program) if isinstance(program, Program) else tuple(program)
    context = _Context(data, max_actions)
    initial_env = env or Env.empty()
    context.last_env = initial_env
    actions: list[Action] = []
    remaining, final_env = _eval_sequence(
        statements, doms, initial_env, context, actions
    )
    return EvalResult(actions, remaining, final_env, context.last_env)


# ----------------------------------------------------------------------
# Statement dispatch
# ----------------------------------------------------------------------
def _eval_sequence(
    statements: Sequence[Statement],
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    for statement in statements:
        if doms.is_empty or context.halted:  # Term
            break
        doms, env = _eval_statement(statement, doms, env, context, out)
    return doms, env


def _eval_statement(
    statement: Statement,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    if isinstance(statement, ActionStmt):
        return _eval_action(statement, doms, env, context, out)
    if isinstance(statement, ForEachSelector):
        return _eval_selector_loop(statement, doms, env, context, out)
    if isinstance(statement, ForEachValue):
        return _eval_value_loop(statement, doms, env, context, out)
    if isinstance(statement, WhileLoop):
        return _eval_while_loop(statement, doms, env, context, out)
    if isinstance(statement, PaginateLoop):
        return _eval_paginate_loop(statement, doms, env, context, out)
    raise TypeError(f"not a statement: {statement!r}")


def _eval_action(
    statement: ActionStmt,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """Base rules (Click, ScrapeText, ..., EnterData).

    The *transition* is angelic — the head snapshot is consumed without
    performing the action — but, following Example 3.1, the resolved
    selector must denote a node on the head snapshot (and an ``EnterData``
    path must resolve in the data source), otherwise execution halts.
    """
    selector = env.resolve_selector(statement.target) if statement.target else None
    if selector is not None and not valid(selector, doms.head()):
        context.stuck = True
        return doms, env
    path = env.resolve_path(statement.value) if statement.value else None
    if path is not None and not context.data.contains(path):
        context.stuck = True
        return doms, env
    out.append(Action(statement.kind, selector, statement.text, path))
    context.spend()
    context.last_env = env
    return doms.tail(), env


def _eval_selector_loop(
    loop: ForEachSelector,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """S-Init / S-Cont / S-Term: lazy iteration over matching nodes.

    The collection base resolves once (Figure 8 rules (9)/(10) substitute
    the resolved base into the continuation); each iteration materialises
    the *i*-th element selector and checks ``valid`` against the current
    head snapshot, which is what makes lazily loaded pages work.
    """
    base = env.resolve_selector(loop.collection.base)
    extend = base.child if isinstance(loop.collection, ChildrenOf) else base.desc
    pred = loop.collection.pred
    index = 1
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        element = extend(pred, index)
        if not valid(element, doms.head()):  # S-Term
            break
        env = env.bind(loop.var, element)  # S-Cont
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        index += 1
    return doms, env


def _eval_value_loop(
    loop: ForEachValue,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """VP-Loop: eager iteration over the value paths of an input array.

    A collection path that does not denote an array makes the loop stuck;
    we render "stuck" as zero iterations, which validation then rejects
    (the s-rewrite cannot reproduce any action).
    """
    path = env.resolve_path(loop.collection.path)
    try:
        element_paths = context.data.value_paths(path)
    except DataPathError:
        return doms, env
    for element_path in element_paths:
        if doms.is_empty or context.halted:  # Term
            break
        env = env.bind(loop.var, element_path)
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
    return doms, env


def _eval_while_loop(
    loop: WhileLoop,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """While-Init / While-Cont / While-Term: click-terminated pagination.

    Each round runs the body, then re-checks the terminating Click's
    selector on the new head snapshot; if it still denotes a node the click
    is emitted and the loop continues, otherwise the loop ends.
    """
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        if doms.is_empty or context.halted:  # Term
            break
        selector = env.resolve_selector(loop.click.target)
        if not valid(selector, doms.head()):  # While-Term
            break
        out.append(Action(loop.click.kind, selector))  # While-Cont
        context.spend()
        context.last_env = env
        doms = doms.tail()
    return doms, env


def _eval_paginate_loop(
    loop: PaginateLoop,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """Numbered pagination (extension, see :class:`PaginateLoop`).

    Each round runs the body, then navigates: the counter-templated
    selector is clicked when it denotes a node on the head snapshot;
    otherwise the advance control is clicked when present and valid (it
    lands on page κ, so the counter still increments); otherwise the
    loop terminates.
    """
    counter = loop.start
    advance = (
        env.resolve_selector(loop.advance) if loop.advance is not None else None
    )
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        if doms.is_empty or context.halted:  # Term
            break
        numbered = loop.template.instantiate(counter)
        if valid(numbered, doms.head()):
            out.append(Action(CLICK, numbered))
        elif advance is not None and valid(advance, doms.head()):
            out.append(Action(CLICK, advance))
        else:
            break
        context.spend()
        context.last_env = env
        doms = doms.tail()
        counter += 1
    return doms, env
