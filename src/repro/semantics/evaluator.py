"""The trace semantics of the web RPA language (Figure 7 of the paper).

This module implements the simulated execution judgment::

    Π, Σ ⊢ P ⇝ A′, Π′, Σ′

A program runs against a *recorded* DOM trace instead of a live browser:
every emitted action consumes the head snapshot ("angelic" transition), and
loop continuation is decided by ``valid(ρ, π₁)`` checks against the current
head snapshot only.  Executing a program this way is side-effect free, which
is what lets the synthesizer evaluate candidate programs that would be
dangerous to run for real.

Rule correspondence
-------------------
========================  =============================================
Paper rule                Implementation
========================  =============================================
Term                      the ``doms.is_empty`` guards
Seq                       :func:`_eval_sequence`
Click/EnterData/...       :func:`_eval_action`
S-Init / S-Cont / S-Term  :func:`_eval_selector_loop`
VP-Loop                   :func:`_eval_value_loop`
While-Init/Cont/Term      :func:`_eval_while_loop`
Figure 8 (1)-(8)          :meth:`repro.semantics.env.Env.resolve_selector`
                          / ``resolve_path``
Figure 8 (9)-(11)         collection expansion inside the loop rules
========================  =============================================

One point where the paper's prose and its figure diverge: Example 3.1 says
that executing ``Click(ϱ/b)`` when ``//a[1]/b`` does not denote a node in
π₁ "produces a shorter action trace", while the Click rule in Figure 7
emits unconditionally.  We follow the example: node-addressing actions
check ``valid(ρ, π₁)`` (and ``EnterData`` checks that its value path
resolves in ``I``) before emitting, and execution halts when the check
fails.  For any program that actually corresponds to the recorded trace
the check never fires — it only makes wrong candidates fail earlier, so
satisfaction (Definition 4.1) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import valid
from repro.lang.actions import Action
from repro.lang.ast import (
    ActionStmt,
    CLICK,
    ChildrenOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    WhileLoop,
)
from repro.lang.data import DataSource
from repro.semantics.env import Env
from repro.semantics.trace import DOMTrace
from repro.util.errors import DataPathError


@dataclass
class EvalResult:
    """Outcome of a simulated execution: A′, Π′ and Σ′.

    ``env_at_last_action`` is Σ as of the final emitted action (the
    initial Σ when nothing was emitted).  Once the action budget is
    exhausted every loop/sequence checks ``halted`` before binding, so
    this is exactly the final environment of a run whose budget equals
    the action count — the execution cache uses ``env_at_last_action is
    env`` to decide whether a memoized outcome may serve such a run.
    """

    actions: list[Action]
    remaining: DOMTrace
    env: Env
    env_at_last_action: Optional[Env] = None
    #: When continuation recording was armed (see :func:`execute`) and a
    #: loop was still mid-iteration when the run ended, the resume point:
    #: ``(consumed, env, state)`` — the number of actions emitted before
    #: the last iteration that *started*, the environment at that
    #: iteration's top, and a per-loop-form state tag for
    #: :func:`resume_statement`.  ``None`` when the run terminated
    #: normally (every loop ran to completion) or recording was off.
    continuation: Optional[tuple] = None


class _Context:
    """Per-execution configuration: data source, action budget, halt flag.

    ``last_env`` tracks Σ as of the most recent emitted action (see
    :class:`EvalResult.env_at_last_action`).
    """

    __slots__ = ("data", "budget", "stuck", "last_env", "cont_armed", "cont")

    def __init__(self, data: DataSource, max_actions: Optional[int]) -> None:
        self.data = data
        self.budget = max_actions if max_actions is not None else float("inf")
        self.stuck = False
        self.last_env: Optional[Env] = None
        # Continuation recording (resumable loops): armed by the caller,
        # *claimed* by the first loop that starts iterating — nested
        # loops see the flag already cleared, so the recorded state
        # always belongs to the outermost loop, which is the statement
        # the engine re-enters on resume.
        self.cont_armed = False
        self.cont: Optional[tuple] = None

    def spend(self) -> None:
        self.budget -= 1

    @property
    def halted(self) -> bool:
        """True once the budget is spent or an action failed validity."""
        return self.stuck or self.budget <= 0


def execute(
    program: Program | Sequence[Statement],
    doms: DOMTrace,
    data: DataSource,
    env: Optional[Env] = None,
    max_actions: Optional[int] = None,
    record_continuation: bool = False,
) -> EvalResult:
    """Run ``program`` under the trace semantics.

    Parameters
    ----------
    program:
        A :class:`Program` or a raw statement sequence.
    doms:
        The DOM trace Π guiding the simulation.  One snapshot is consumed
        per emitted action.
    data:
        The input data source ``I``.
    env:
        Initial environment (defaults to empty — the ``Eval`` rule).
    max_actions:
        Optional hard cap on emitted actions.  The synthesizer uses
        ``m + 1`` to avoid simulating past the first prediction.
    record_continuation:
        Arm continuation recording: the first loop that starts iterating
        records, at the top of each iteration, the state needed to
        re-enter it there later (:attr:`EvalResult.continuation`).  Used
        by the execution cache to make absorbing-loop re-execution
        resumable instead of O(window).
    """
    statements = tuple(program) if isinstance(program, Program) else tuple(program)
    context = _Context(data, max_actions)
    context.cont_armed = record_continuation
    initial_env = env or Env.empty()
    context.last_env = initial_env
    actions: list[Action] = []
    remaining, final_env = _eval_sequence(
        statements, doms, initial_env, context, actions
    )
    return EvalResult(actions, remaining, final_env, context.last_env, context.cont)


# ----------------------------------------------------------------------
# Statement dispatch
# ----------------------------------------------------------------------
def _eval_sequence(
    statements: Sequence[Statement],
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    for statement in statements:
        if doms.is_empty or context.halted:  # Term
            break
        doms, env = _eval_statement(statement, doms, env, context, out)
    return doms, env


def _eval_statement(
    statement: Statement,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    if isinstance(statement, ActionStmt):
        return _eval_action(statement, doms, env, context, out)
    if isinstance(statement, ForEachSelector):
        return _eval_selector_loop(statement, doms, env, context, out)
    if isinstance(statement, ForEachValue):
        return _eval_value_loop(statement, doms, env, context, out)
    if isinstance(statement, WhileLoop):
        return _eval_while_loop(statement, doms, env, context, out)
    if isinstance(statement, PaginateLoop):
        return _eval_paginate_loop(statement, doms, env, context, out)
    raise TypeError(f"not a statement: {statement!r}")


def _eval_action(
    statement: ActionStmt,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """Base rules (Click, ScrapeText, ..., EnterData).

    The *transition* is angelic — the head snapshot is consumed without
    performing the action — but, following Example 3.1, the resolved
    selector must denote a node on the head snapshot (and an ``EnterData``
    path must resolve in the data source), otherwise execution halts.
    """
    selector = env.resolve_selector(statement.target) if statement.target else None
    if selector is not None and not valid(selector, doms.head()):
        context.stuck = True
        return doms, env
    path = env.resolve_path(statement.value) if statement.value else None
    if path is not None and not context.data.contains(path):
        context.stuck = True
        return doms, env
    out.append(Action(statement.kind, selector, statement.text, path))
    context.spend()
    context.last_env = env
    return doms.tail(), env


def _eval_selector_loop(
    loop: ForEachSelector,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
    start_index: int = 1,
) -> tuple[DOMTrace, Env]:
    """S-Init / S-Cont / S-Term: lazy iteration over matching nodes.

    The collection base resolves once (Figure 8 rules (9)/(10) substitute
    the resolved base into the continuation); each iteration materialises
    the *i*-th element selector and checks ``valid`` against the current
    head snapshot, which is what makes lazily loaded pages work.
    """
    recording = context.cont_armed
    context.cont_armed = False
    base = env.resolve_selector(loop.collection.base)
    extend = base.child if isinstance(loop.collection, ChildrenOf) else base.desc
    pred = loop.collection.pred
    index = start_index
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        if recording:
            # iteration-top state: everything after this point is a
            # function of (env, index) and the remaining trace/budget
            context.cont = (len(out), env, ("sel", index))
        element = extend(pred, index)
        if not valid(element, doms.head()):  # S-Term
            break
        env = env.bind(loop.var, element)  # S-Cont
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        index += 1
    return doms, env


def _eval_value_loop(
    loop: ForEachValue,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
    start_position: int = 0,
) -> tuple[DOMTrace, Env]:
    """VP-Loop: eager iteration over the value paths of an input array.

    A collection path that does not denote an array makes the loop stuck;
    we render "stuck" as zero iterations, which validation then rejects
    (the s-rewrite cannot reproduce any action).
    """
    recording = context.cont_armed
    context.cont_armed = False
    path = env.resolve_path(loop.collection.path)
    try:
        element_paths = context.data.value_paths(path)
    except DataPathError:
        return doms, env
    for position in range(start_position, len(element_paths)):
        if doms.is_empty or context.halted:  # Term
            break
        if recording:
            context.cont = (len(out), env, ("val", position))
        env = env.bind(loop.var, element_paths[position])
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
    return doms, env


def _eval_while_loop(
    loop: WhileLoop,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
) -> tuple[DOMTrace, Env]:
    """While-Init / While-Cont / While-Term: click-terminated pagination.

    Each round runs the body, then re-checks the terminating Click's
    selector on the new head snapshot; if it still denotes a node the click
    is emitted and the loop continues, otherwise the loop ends.
    """
    recording = context.cont_armed
    context.cont_armed = False
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        if recording:
            context.cont = (len(out), env, ("while",))
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        if doms.is_empty or context.halted:  # Term
            break
        selector = env.resolve_selector(loop.click.target)
        if not valid(selector, doms.head()):  # While-Term
            break
        out.append(Action(loop.click.kind, selector))  # While-Cont
        context.spend()
        context.last_env = env
        doms = doms.tail()
    return doms, env


def _eval_paginate_loop(
    loop: PaginateLoop,
    doms: DOMTrace,
    env: Env,
    context: _Context,
    out: list[Action],
    start_counter: Optional[int] = None,
) -> tuple[DOMTrace, Env]:
    """Numbered pagination (extension, see :class:`PaginateLoop`).

    Each round runs the body, then navigates: the counter-templated
    selector is clicked when it denotes a node on the head snapshot;
    otherwise the advance control is clicked when present and valid (it
    lands on page κ, so the counter still increments); otherwise the
    loop terminates.
    """
    recording = context.cont_armed
    context.cont_armed = False
    counter = loop.start if start_counter is None else start_counter
    advance = (
        env.resolve_selector(loop.advance) if loop.advance is not None else None
    )
    while True:
        if doms.is_empty or context.halted:  # Term
            break
        if recording:
            context.cont = (len(out), env, ("pag", counter))
        doms, env = _eval_sequence(loop.body, doms, env, context, out)
        if doms.is_empty or context.halted:  # Term
            break
        numbered = loop.template.instantiate(counter)
        if valid(numbered, doms.head()):
            out.append(Action(CLICK, numbered))
        elif advance is not None and valid(advance, doms.head()):
            out.append(Action(CLICK, advance))
        else:
            break
        context.spend()
        context.last_env = env
        doms = doms.tail()
        counter += 1
    return doms, env


# ----------------------------------------------------------------------
# Resumption
# ----------------------------------------------------------------------
def resume_statement(
    statement: Statement,
    state: tuple,
    doms: DOMTrace,
    data: DataSource,
    env: Env,
    max_actions: Optional[int] = None,
) -> EvalResult:
    """Re-enter a loop ``statement`` at a recorded iteration boundary.

    ``state`` and ``env`` come from a prior run's
    :attr:`EvalResult.continuation`; ``doms`` is the trace *suffix*
    starting where that run's consumed prefix ended.  The re-entered run
    records a fresh continuation, so resumes chain as the trace grows.

    Only valid for closed statements (no free variables): the loop's
    collection/click selectors are re-resolved under the iteration-top
    environment, which is safe precisely because a top-level statement
    cannot reference an enclosing loop's variable.
    """
    context = _Context(data, max_actions)
    context.cont_armed = True
    context.last_env = env
    out: list[Action] = []
    tag = state[0]
    if isinstance(statement, ForEachSelector) and tag == "sel":
        remaining, final_env = _eval_selector_loop(
            statement, doms, env, context, out, start_index=state[1]
        )
    elif isinstance(statement, ForEachValue) and tag == "val":
        remaining, final_env = _eval_value_loop(
            statement, doms, env, context, out, start_position=state[1]
        )
    elif isinstance(statement, WhileLoop) and tag == "while":
        remaining, final_env = _eval_while_loop(statement, doms, env, context, out)
    elif isinstance(statement, PaginateLoop) and tag == "pag":
        remaining, final_env = _eval_paginate_loop(
            statement, doms, env, context, out, start_counter=state[1]
        )
    else:
        raise ValueError(
            f"continuation state {state!r} does not match statement {statement!r}"
        )
    return EvalResult(out, remaining, final_env, context.last_env, context.cont)
