"""Action- and trace-consistency (Definition 4.1's auxiliary notions).

Two actions are consistent *given a DOM snapshot* when they have the same
type and their arguments match; XPath arguments match when they refer to
the same DOM node on that snapshot.  Two traces are consistent given a DOM
trace when they are pointwise consistent.
"""

from __future__ import annotations

from typing import Sequence

from repro.dom.node import DOMNode
from repro.dom.xpath import resolve
from repro.lang.actions import Action
from repro.semantics.trace import DOMTrace


def actions_consistent(first: Action, second: Action, dom: DOMNode) -> bool:
    """Consistency of two actions on one snapshot.

    Selector arguments are compared by the node they denote on ``dom`` —
    this is what lets a synthesized ``//h3[1]`` match a recorded absolute
    XPath.  Non-selector arguments (strings, value paths) compare
    structurally.
    """
    if first.kind != second.kind:
        return False
    if (first.selector is None) != (second.selector is None):
        return False
    if first.selector is not None:
        node_a = resolve(first.selector, dom)
        if node_a is None:
            return False
        node_b = resolve(second.selector, dom)
        if node_b is None or node_a is not node_b:
            return False
    return first.text == second.text and first.path == second.path


def consistent_prefix_length(
    produced: Sequence[Action],
    reference: Sequence[Action],
    doms: DOMTrace,
) -> int:
    """Length of the longest pointwise-consistent prefix.

    ``doms[i]`` is the snapshot the *i*-th actions of both traces execute
    upon.  The result is capped by all three sequence lengths.
    """
    limit = min(len(produced), len(reference), len(doms))
    for index in range(limit):
        if not actions_consistent(produced[index], reference[index], doms[index]):
            return index
    return limit


def traces_consistent(
    first: Sequence[Action],
    second: Sequence[Action],
    doms: DOMTrace,
) -> bool:
    """Full-trace consistency: equal length and pointwise consistent."""
    if len(first) != len(second):
        return False
    if len(doms) < len(first):
        return False
    return consistent_prefix_length(first, second, doms) == len(first)
