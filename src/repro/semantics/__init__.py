"""Trace semantics: simulated execution, environments, consistency."""

from repro.semantics.env import Env
from repro.semantics.trace import ActionTrace, DOMTrace
from repro.semantics.evaluator import EvalResult, execute
from repro.semantics.consistency import (
    actions_consistent,
    consistent_prefix_length,
    traces_consistent,
)

__all__ = [
    "Env",
    "ActionTrace",
    "DOMTrace",
    "EvalResult",
    "execute",
    "actions_consistent",
    "consistent_prefix_length",
    "traces_consistent",
]
