"""Provenance-tracking execution: which statement produced which action.

The plain evaluator (:mod:`repro.semantics.evaluator`) answers *what*
actions a program produces; this module additionally answers *where
from*: each emitted action is tagged with

* the **statement path** — body indices from the program root down to
  the emitting statement (a while loop's terminating click is addressed
  one past its body);
* the **iteration stack** — for every enclosing loop, its statement
  path and the 1-based iteration the action was emitted in;
* the **bindings** — what each in-scope loop variable resolved to;
* the **snapshot index** — the position in the master DOM trace the
  action consumed.

This powers the ``repro explain`` CLI command and the session
inspector: after synthesis, a user can see that action 17 of their
demonstration corresponds to iteration 4 of the scraping loop.

The traversal intentionally duplicates the evaluator's recursion rather
than threading callbacks through its hot path (the synthesizer executes
candidate programs thousands of times per call; explanation runs once
per user request).  ``tests/test_provenance.py`` pins the two
implementations together: the projected action sequence must be
identical on arbitrary programs and traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dom.xpath import valid
from repro.lang.actions import Action
from repro.lang.ast import (
    ActionStmt,
    CLICK,
    ChildrenOf,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Program,
    Statement,
    Var,
    WhileLoop,
)
from repro.lang.data import DataSource
from repro.semantics.env import Env
from repro.semantics.trace import DOMTrace
from repro.util.errors import DataPathError

StatementPath = tuple[int, ...]


@dataclass(frozen=True)
class ProvenanceRecord:
    """One emitted action with its origin inside the program."""

    action: Action
    path: StatementPath
    iterations: tuple[tuple[StatementPath, int], ...]
    bindings: tuple[tuple[Var, str], ...]
    snapshot_index: int

    @property
    def depth(self) -> int:
        """How many loops enclose the emitting statement."""
        return len(self.iterations)


@dataclass
class ProvenanceResult:
    """All records of one provenance run."""

    records: list[ProvenanceRecord]

    @property
    def actions(self) -> list[Action]:
        """The plain action trace (must match the evaluator's)."""
        return [record.action for record in self.records]

    def by_statement(self) -> dict[StatementPath, list[ProvenanceRecord]]:
        """Group records by their emitting statement."""
        groups: dict[StatementPath, list[ProvenanceRecord]] = {}
        for record in self.records:
            groups.setdefault(record.path, []).append(record)
        return groups

    def iteration_counts(self) -> dict[StatementPath, int]:
        """For each loop, how many iterations contributed actions."""
        counts: dict[StatementPath, int] = {}
        for record in self.records:
            for loop_path, iteration in record.iterations:
                counts[loop_path] = max(counts.get(loop_path, 0), iteration)
        return counts


class _Walker:
    """Recursive interpreter mirroring the evaluator, tagging emissions."""

    def __init__(self, data: DataSource, max_actions: Optional[int]) -> None:
        self.data = data
        self.budget = max_actions if max_actions is not None else float("inf")
        self.stuck = False
        self.records: list[ProvenanceRecord] = []
        self.iterations: list[tuple[StatementPath, int]] = []
        self.bindings: list[tuple[Var, str]] = []

    @property
    def halted(self) -> bool:
        return self.stuck or self.budget <= 0

    # ------------------------------------------------------------------
    def sequence(
        self, statements: Sequence[Statement], path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        for index, statement in enumerate(statements):
            if doms.is_empty or self.halted:
                break
            doms, env = self.statement(statement, path + (index,), doms, env)
        return doms, env

    def statement(
        self, statement: Statement, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        if isinstance(statement, ActionStmt):
            return self.action(statement, path, doms, env)
        if isinstance(statement, ForEachSelector):
            return self.selector_loop(statement, path, doms, env)
        if isinstance(statement, ForEachValue):
            return self.value_loop(statement, path, doms, env)
        if isinstance(statement, WhileLoop):
            return self.while_loop(statement, path, doms, env)
        if isinstance(statement, PaginateLoop):
            return self.paginate_loop(statement, path, doms, env)
        raise TypeError(f"not a statement: {statement!r}")

    # ------------------------------------------------------------------
    def emit(self, action: Action, path: StatementPath, doms: DOMTrace) -> DOMTrace:
        self.records.append(
            ProvenanceRecord(
                action,
                path,
                tuple(self.iterations),
                tuple(self.bindings),
                doms.start,
            )
        )
        self.budget -= 1
        return doms.tail()

    def action(
        self, statement: ActionStmt, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        selector = env.resolve_selector(statement.target) if statement.target else None
        if selector is not None and not valid(selector, doms.head()):
            self.stuck = True
            return doms, env
        value_path = env.resolve_path(statement.value) if statement.value else None
        if value_path is not None and not self.data.contains(value_path):
            self.stuck = True
            return doms, env
        action = Action(statement.kind, selector, statement.text, value_path)
        return self.emit(action, path, doms), env

    def selector_loop(
        self, loop: ForEachSelector, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        base = env.resolve_selector(loop.collection.base)
        extend = base.child if isinstance(loop.collection, ChildrenOf) else base.desc
        pred = loop.collection.pred
        index = 1
        while True:
            if doms.is_empty or self.halted:
                break
            element = extend(pred, index)
            if not valid(element, doms.head()):
                break
            env = env.bind(loop.var, element)
            self.iterations.append((path, index))
            self.bindings.append((loop.var, str(element)))
            doms, env = self.sequence(loop.body, path, doms, env)
            self.iterations.pop()
            self.bindings.pop()
            index += 1
        return doms, env

    def value_loop(
        self, loop: ForEachValue, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        collection_path = env.resolve_path(loop.collection.path)
        try:
            element_paths = self.data.value_paths(collection_path)
        except DataPathError:
            return doms, env
        for index, element_path in enumerate(element_paths, start=1):
            if doms.is_empty or self.halted:
                break
            env = env.bind(loop.var, element_path)
            self.iterations.append((path, index))
            self.bindings.append((loop.var, str(element_path)))
            doms, env = self.sequence(loop.body, path, doms, env)
            self.iterations.pop()
            self.bindings.pop()
        return doms, env

    def while_loop(
        self, loop: WhileLoop, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        iteration = 1
        while True:
            if doms.is_empty or self.halted:
                break
            self.iterations.append((path, iteration))
            doms, env = self.sequence(loop.body, path, doms, env)
            if doms.is_empty or self.halted:
                self.iterations.pop()
                break
            selector = env.resolve_selector(loop.click.target)
            if not valid(selector, doms.head()):
                self.iterations.pop()
                break
            doms = self.emit(
                Action(loop.click.kind, selector), path + (len(loop.body),), doms
            )
            self.iterations.pop()
            iteration += 1
        return doms, env

    def paginate_loop(
        self, loop: PaginateLoop, path: StatementPath, doms: DOMTrace, env: Env
    ) -> tuple[DOMTrace, Env]:
        counter = loop.start
        advance = (
            env.resolve_selector(loop.advance) if loop.advance is not None else None
        )
        iteration = 1
        while True:
            if doms.is_empty or self.halted:
                break
            self.iterations.append((path, iteration))
            doms, env = self.sequence(loop.body, path, doms, env)
            if doms.is_empty or self.halted:
                self.iterations.pop()
                break
            numbered = loop.template.instantiate(counter)
            click_path = path + (len(loop.body),)
            if valid(numbered, doms.head()):
                doms = self.emit(Action(CLICK, numbered), click_path, doms)
            elif advance is not None and valid(advance, doms.head()):
                doms = self.emit(Action(CLICK, advance), click_path, doms)
            else:
                self.iterations.pop()
                break
            self.iterations.pop()
            counter += 1
            iteration += 1
        return doms, env


def explain(
    program: Program | Sequence[Statement],
    doms: DOMTrace,
    data: DataSource,
    max_actions: Optional[int] = None,
) -> ProvenanceResult:
    """Execute ``program`` under the trace semantics with provenance.

    The emitted action sequence is identical to
    :func:`repro.semantics.evaluator.execute`'s on the same inputs; each
    action additionally carries its origin.
    """
    statements = tuple(program) if isinstance(program, Program) else tuple(program)
    walker = _Walker(data, max_actions)
    walker.sequence(statements, (), doms, Env.empty())
    return ProvenanceResult(walker.records)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def statement_at(program: Program, path: StatementPath) -> Statement:
    """Look up the statement a path addresses (while-click aware)."""
    container: Sequence[Statement] = program.statements
    current: Optional[Statement] = None
    for index in path:
        if isinstance(current, WhileLoop) and index == len(current.body):
            return current.click
        if isinstance(current, PaginateLoop) and index == len(current.body):
            return current  # the loop's templated click is synthetic
        current = container[index]
        container = _body_of(current)
    if current is None:
        raise ValueError("empty statement path")
    return current


def _body_of(stmt: Statement) -> Sequence[Statement]:
    if isinstance(stmt, (ForEachSelector, ForEachValue, WhileLoop, PaginateLoop)):
        return stmt.body
    return ()


def render_explanation(program: Program, result: ProvenanceResult) -> str:
    """A per-action listing aligning the trace with the program.

    Example line::

        17  ScrapeText(//div[@class='card'][4]/h3[1])  <- stmt 2.0.0  [iter 2/4]

    where ``stmt 2.0.0`` is the statement path and ``[iter 2/4]`` lists
    the enclosing loops' iteration numbers outermost-first.
    """
    lines = []
    for position, record in enumerate(result.records, start=1):
        where = ".".join(str(index) for index in record.path)
        iters = "/".join(str(iteration) for _, iteration in record.iterations)
        suffix = f"  [iter {iters}]" if iters else ""
        lines.append(f"{position:4d}  {record.action}  <- stmt {where}{suffix}")
    return "\n".join(lines)


def _describe(stmt: Statement) -> str:
    """A one-word description of a statement for summary lines."""
    if isinstance(stmt, ActionStmt):
        return stmt.kind
    if isinstance(stmt, ForEachSelector):
        return "foreach-selector"
    if isinstance(stmt, ForEachValue):
        return "foreach-value"
    if isinstance(stmt, PaginateLoop):
        return "paginate"
    return "while"


def render_summary(program: Program, result: ProvenanceResult) -> str:
    """Per-statement totals: actions emitted and loop iteration counts."""
    groups = result.by_statement()
    counts = result.iteration_counts()
    lines = ["actions per statement:"]
    for path in sorted(groups):
        where = ".".join(str(index) for index in path)
        kind = _describe(statement_at(program, path))
        lines.append(f"  stmt {where} ({kind}): {len(groups[path])} actions")
    if counts:
        lines.append("loop iterations reached:")
        for path in sorted(counts):
            where = ".".join(str(index) for index in path)
            lines.append(f"  loop {where}: {counts[path]} iterations")
    return "\n".join(lines)
