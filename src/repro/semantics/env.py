"""Evaluation environments (Σ in the paper's judgments).

An environment maps selector variables ϱ to concrete selectors and
value-path variables ϑ to concrete value paths.  Environments are
persistent: binding returns a new environment, which matches how the
inference rules thread Σ.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.dom.xpath import ConcreteSelector
from repro.lang.ast import SEL_VAR, VAL_VAR, Selector, ValuePath, Var
from repro.util.errors import ReproError

Binding = Union[ConcreteSelector, ValuePath]


class Env:
    """An immutable variable environment."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[dict[Var, Binding]] = None) -> None:
        self._bindings: dict[Var, Binding] = dict(bindings) if bindings else {}

    @staticmethod
    def empty() -> "Env":
        """The environment with no bindings."""
        return _EMPTY

    def bind(self, var: Var, value: Binding) -> "Env":
        """Return a new environment with ``var`` bound to ``value``."""
        if var.kind == SEL_VAR and not isinstance(value, ConcreteSelector):
            raise ReproError(f"selector variable {var} bound to {value!r}")
        if var.kind == VAL_VAR:
            if not isinstance(value, ValuePath) or not value.is_concrete:
                raise ReproError(f"value variable {var} bound to {value!r}")
        updated = dict(self._bindings)
        updated[var] = value
        return Env(updated)

    def lookup(self, var: Var) -> Binding:
        """The binding of ``var``; raises if unbound."""
        try:
            return self._bindings[var]
        except KeyError as exc:
            raise ReproError(f"unbound variable {var}") from exc

    def __contains__(self, var: Var) -> bool:
        return var in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def fingerprint(self) -> tuple:
        """A hashable value identity of the bindings.

        Two environments with equal fingerprints make every program
        execute identically; the execution engine uses this as its cache
        key component for Σ.
        """
        return tuple(
            sorted(
                self._bindings.items(),
                key=lambda item: (item[0].kind, item[0].uid),
            )
        )

    # ------------------------------------------------------------------
    # Substitution (Figure 8 rules (1)-(8))
    # ------------------------------------------------------------------
    def resolve_selector(self, selector: Selector) -> ConcreteSelector:
        """Evaluate a symbolic selector to a concrete one (rules (1)-(4))."""
        if selector.base is None:
            return ConcreteSelector(selector.steps)
        bound = self.lookup(selector.base)
        assert isinstance(bound, ConcreteSelector)
        return bound.concat(selector.steps)

    def resolve_path(self, path: ValuePath) -> ValuePath:
        """Evaluate a symbolic value path to a concrete one (rules (5)-(8))."""
        if path.base is None:
            return path
        bound = self.lookup(path.base)
        assert isinstance(bound, ValuePath)
        return ValuePath(None, bound.accessors + path.accessors)


_EMPTY = Env()
