"""Action traces and DOM traces.

A DOM trace Π is a window over a master list of snapshots.  Windows share
the underlying list, so taking tails (which the semantics does once per
action) and slicing partitions (which the synthesizer does constantly) are
O(1).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.dom.node import DOMNode
from repro.lang.actions import Action

ActionTrace = tuple[Action, ...]

#: Master-list id tuples for :meth:`DOMTrace.id_key`, keyed by list
#: identity with the list itself held to guard against id recycling.
_ID_KEYS: dict[int, tuple] = {}

#: Master-list content-key tuples for :meth:`DOMTrace.value_key`, same
#: discipline.  Only fully frozen master lists are memoized — unfrozen
#: snapshots may still mutate, so their keys must be recomputed.
_VALUE_KEYS: dict[int, tuple] = {}


class DOMTrace:
    """An immutable window ``snapshots[start:stop]`` over recorded DOMs."""

    __slots__ = ("_snapshots", "start", "stop")

    def __init__(
        self,
        snapshots: Sequence[DOMNode],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        if isinstance(snapshots, DOMTrace):
            raise TypeError("wrap raw snapshot lists, not DOMTrace objects")
        self._snapshots = snapshots
        self.start = start
        self.stop = len(snapshots) if stop is None else stop
        if not 0 <= self.start <= self.stop <= len(snapshots):
            raise ValueError(
                f"bad window [{self.start}, {self.stop}) over {len(snapshots)} snapshots"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.stop - self.start

    def __bool__(self) -> bool:
        return self.stop > self.start

    def __getitem__(self, index: int) -> DOMNode:
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._snapshots[self.start + index]

    def __iter__(self) -> Iterator[DOMNode]:
        for position in range(self.start, self.stop):
            yield self._snapshots[position]

    @property
    def is_empty(self) -> bool:
        """True when no snapshots remain (the Term rule fires)."""
        return self.stop == self.start

    def head(self) -> DOMNode:
        """The snapshot the next action executes upon (π₁)."""
        if self.is_empty:
            raise IndexError("head of empty DOM trace")
        return self._snapshots[self.start]

    def tail(self) -> "DOMTrace":
        """The trace after consuming one snapshot ([π₂, ··, πₘ])."""
        if self.is_empty:
            raise IndexError("tail of empty DOM trace")
        return DOMTrace(self._snapshots, self.start + 1, self.stop)

    def window(self, start: int, stop: Optional[int] = None) -> "DOMTrace":
        """A sub-window with indices relative to this window."""
        absolute_stop = self.stop if stop is None else self.start + stop
        return DOMTrace(self._snapshots, self.start + start, absolute_stop)

    def id_key(self) -> tuple[int, ...]:
        """The window's snapshots by object id (an execution-cache key).

        Snapshots are frozen and shared across incremental calls, so id
        tuples give content identity as long as the caller pins them.
        The full master list's id tuple is computed once and sliced per
        window — thousands of windows per call view the same master.
        """
        snapshots = self._snapshots
        entry = _ID_KEYS.get(id(snapshots))
        if entry is None or entry[0] is not snapshots:
            if len(_ID_KEYS) >= 8:
                _ID_KEYS.pop(next(iter(_ID_KEYS)))
            entry = (snapshots, tuple(map(id, snapshots)))
            _ID_KEYS[id(snapshots)] = entry
        return entry[1][self.start : self.stop]

    def value_key(self) -> tuple[int, ...]:
        """The window's snapshots by content digest (the execution-cache key).

        Unlike :meth:`id_key`, these keys are *values*: equal for
        structurally equal snapshots in any process, which is what lets
        executions be shared between worker processes and persisted
        across restarts (see :mod:`repro.engine.keys`).  Per-snapshot
        digests are memoized on frozen nodes, and the master list's key
        tuple is computed once and sliced per window, mirroring
        :meth:`id_key`'s amortization.
        """
        snapshots = self._snapshots
        entry = _VALUE_KEYS.get(id(snapshots))
        if entry is None or entry[0] is not snapshots:
            keys = tuple(snapshot.content_key() for snapshot in snapshots)
            if not all(snapshot.frozen for snapshot in snapshots):
                # mutable snapshots: keys may change, never memoize
                return keys[self.start : self.stop]
            if len(_VALUE_KEYS) >= 8:
                _VALUE_KEYS.pop(next(iter(_VALUE_KEYS)))
            entry = (snapshots, keys)
            _VALUE_KEYS[id(snapshots)] = entry
        return entry[1][self.start : self.stop]

    def pin_key(self) -> tuple[DOMNode, ...]:
        """The window's snapshots themselves (keeps :meth:`id_key` valid)."""
        return tuple(self._snapshots[self.start : self.stop])

    def shares_base_with(self, other: "DOMTrace") -> bool:
        """True when both windows view the same master snapshot list."""
        return self._snapshots is other._snapshots
