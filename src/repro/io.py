"""JSON (de)serialization for demonstrations, programs, and snapshots.

A recorded demonstration — actions, DOM snapshots, scraped outputs — can
be saved to a JSON document and reloaded later, so synthesis can run
offline from stored sessions (the shape a production recorder extension
would ship to a backend).  Programs round-trip through the concrete
syntax; selectors and value paths through their string forms.

Top-level entry points: :func:`recording_to_json` /
:func:`recording_from_json` and the ``dump``/``load`` file helpers.
"""

from __future__ import annotations

import json
from typing import IO, Any, Optional, Union

from repro.browser.recorder import Recording
from repro.dom.node import DOMNode
from repro.dom.xpath import ConcreteSelector, parse_selector
from repro.lang.actions import Action
from repro.lang.ast import Program, ValuePath
from repro.lang.parser import parse_program
from repro.lang.pretty import format_program
from repro.util.errors import ParseError

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# DOM snapshots
# ----------------------------------------------------------------------
def dom_to_json(node: DOMNode) -> dict:
    """A JSON-ready tree for one snapshot."""
    payload: dict[str, Any] = {"tag": node.tag}
    if node.attrs:
        payload["attrs"] = dict(node.attrs)
    if node.text:
        payload["text"] = node.text
    if node.children:
        payload["children"] = [dom_to_json(child) for child in node.children]
    return payload


def dom_from_json(payload: dict) -> DOMNode:
    """Rebuild (and freeze) a snapshot from :func:`dom_to_json` output."""
    node = _dom_from_json(payload)
    return node.freeze()


def _dom_from_json(payload: dict) -> DOMNode:
    if "tag" not in payload:
        raise ParseError("snapshot node missing 'tag'")
    return DOMNode(
        payload["tag"],
        payload.get("attrs"),
        payload.get("text", ""),
        [_dom_from_json(child) for child in payload.get("children", ())],
    )


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------
def _path_to_json(path: ValuePath) -> list:
    return list(path.accessors)


def _path_from_json(payload: list) -> ValuePath:
    accessors = []
    for accessor in payload:
        if not isinstance(accessor, (str, int)):
            raise ParseError(f"bad value-path accessor {accessor!r}")
        accessors.append(accessor)
    return ValuePath(None, tuple(accessors))


def action_to_json(action: Action) -> dict:
    """One action as a JSON object."""
    payload: dict[str, Any] = {"kind": action.kind}
    if action.selector is not None:
        payload["selector"] = str(action.selector)
    if action.text is not None:
        payload["text"] = action.text
    if action.path is not None:
        payload["path"] = _path_to_json(action.path)
    return payload


def action_from_json(payload: dict) -> Action:
    """Rebuild an action from :func:`action_to_json` output."""
    if "kind" not in payload:
        raise ParseError("action missing 'kind'")
    selector: Optional[ConcreteSelector] = None
    if "selector" in payload:
        selector = parse_selector(payload["selector"])
    path = _path_from_json(payload["path"]) if "path" in payload else None
    return Action(payload["kind"], selector, payload.get("text"), path)


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def program_to_json(program: Program) -> dict:
    """A program as its concrete syntax plus a format marker."""
    return {"version": FORMAT_VERSION, "program": format_program(program)}


def program_from_json(payload: dict) -> Program:
    """Rebuild a program serialized by :func:`program_to_json`."""
    if "program" not in payload:
        raise ParseError("payload missing 'program'")
    return parse_program(payload["program"])


# ----------------------------------------------------------------------
# Recordings
# ----------------------------------------------------------------------
def recording_to_json(recording: Recording) -> dict:
    """A full demonstration as one JSON document.

    Consecutive identical snapshots (scrapes do not mutate the page) are
    stored once and referenced by index, which keeps documents compact.
    """
    snapshots: list[dict] = []
    indices: list[int] = []
    seen: dict[int, int] = {}
    for snapshot in recording.snapshots:
        key = id(snapshot)
        if key not in seen:
            seen[key] = len(snapshots)
            snapshots.append(dom_to_json(snapshot))
        indices.append(seen[key])
    return {
        "version": FORMAT_VERSION,
        "actions": [action_to_json(action) for action in recording.actions],
        "snapshots": snapshots,
        "snapshot_indices": indices,
        "outputs": list(recording.outputs),
        "truncated": recording.truncated,
    }


def recording_from_json(payload: dict) -> Recording:
    """Rebuild a demonstration serialized by :func:`recording_to_json`."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ParseError(f"unsupported recording format version {version!r}")
    actions = [action_from_json(item) for item in payload.get("actions", [])]
    snapshot_pool = [dom_from_json(item) for item in payload.get("snapshots", [])]
    indices = payload.get("snapshot_indices", [])
    if len(indices) != len(actions) + 1:
        raise ParseError(
            f"need {len(actions) + 1} snapshot references, got {len(indices)}"
        )
    try:
        snapshots = [snapshot_pool[index] for index in indices]
    except (IndexError, TypeError) as exc:
        raise ParseError("snapshot index out of range") from exc
    return Recording(
        actions=actions,
        snapshots=snapshots,
        outputs=list(payload.get("outputs", [])),
        truncated=bool(payload.get("truncated", False)),
    )


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
Serializable = Union[Recording, Program]


def dump(value: Serializable, fp: IO[str]) -> None:
    """Write a recording or program as JSON to an open text file."""
    if isinstance(value, Recording):
        json.dump(recording_to_json(value), fp)
    elif isinstance(value, Program):
        json.dump(program_to_json(value), fp)
    else:
        raise TypeError(f"cannot serialize {type(value).__name__}")


def load(fp: IO[str]) -> Serializable:
    """Read back a JSON document written by :func:`dump`."""
    payload = json.load(fp)
    if not isinstance(payload, dict):
        raise ParseError("expected a JSON object")
    if "actions" in payload:
        return recording_from_json(payload)
    return program_from_json(payload)
