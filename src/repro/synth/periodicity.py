"""Shape-periodicity gates for span enumeration (optimization).

Algorithm 2 enumerates every span ``(i, p, j, q)`` of a tuple's program
and anti-unifies each pivot pair — but most pairs cannot anti-unify at
all (a Click never unifies with a ScrapeText; a loop never unifies with
an action), and most spans cannot survive validation (the loop's second
iteration must re-execute statements of the same shapes).  Both facts
are visible in a cheap abstraction of the statement list: its *shape
sequence*.

:func:`statement_shape` maps a statement to a hashable key such that
shape inequality implies :func:`~repro.synth.anti_unify.
anti_unify_statements` returns nothing (the key captures exactly the
non-selector conditions the rules require: action kinds and constant
arguments, loop collection type and predicate, body kind trees).  Two
gates build on it:

* the **pivot gate** skips anti-unification whenever the pivot pair's
  shapes differ.  This is behaviour-preserving — it precomputes a
  necessary condition of the rules — and is on by default
  (``SynthesisConfig.use_shape_gates``).
* the **window gate** (:func:`window_periodic`) additionally requires
  the whole conjectured first iteration to repeat shape-wise one period
  later, which a validated rewrite exhibits whenever both iterations are
  in the same rewriting state.  Tuples in *asymmetric* states (one
  occurrence of an inner loop rolled, the next still raw) can validate
  spans this gate prunes, so it changes the exploration order; the
  symmetric sibling tuple always exists on the worklist (rewrites of
  independent slices commute), so Theorem 5.5 is unaffected.  Opt-in via
  ``SynthesisConfig.use_window_periodicity``; the ablation bench
  measures its effect.

:func:`trace_periods` reports the statement-level periods a whole
program window exhibits — a cheap diagnostic for seeing what the gates
would prune on a given trace.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.ast import (
    ActionStmt,
    ForEachSelector,
    ForEachValue,
    PaginateLoop,
    Statement,
    WhileLoop,
)

Shape = tuple


def statement_shape(stmt: Statement) -> Shape:
    """A hashable key whose inequality refutes anti-unifiability.

    Soundness contract (checked by the tests): for any two statements
    ``a``, ``b`` and any snapshots, ``statement_shape(a) !=
    statement_shape(b)`` implies ``anti_unify_statements(a, …, b, …) ==
    []``.  The key therefore contains only what the Figure 10 rules
    require to *agree* between iterations — never the selectors, which
    are exactly what varies.
    """
    if isinstance(stmt, ActionStmt):
        # rule (1)/(3): same kind, same constant text, value pivots only
        # between concrete paths of equal accessor length
        value_key = None
        if stmt.value is not None:
            value_key = (stmt.value.base is None, len(stmt.value.accessors))
        return ("a", stmt.kind, stmt.text, value_key)
    if isinstance(stmt, ForEachSelector):
        # rule (2): same collection type and predicate, alpha-equivalent
        # bodies (body kind trees are a necessary condition)
        return (
            "fs",
            type(stmt.collection).__name__,
            stmt.collection.pred,
            _body_shape(stmt.body),
        )
    if isinstance(stmt, ForEachValue):
        return ("fv", len(stmt.collection.path.accessors), _body_shape(stmt.body))
    if isinstance(stmt, WhileLoop):
        # no rule lifts while loops; the shape still distinguishes them
        # from everything else so the gate never mixes categories
        return ("w", _body_shape(stmt.body), statement_shape(stmt.click))
    if isinstance(stmt, PaginateLoop):
        return ("pg", _body_shape(stmt.body))
    raise TypeError(f"not a statement: {stmt!r}")


def _body_shape(body: tuple[Statement, ...]) -> Shape:
    return tuple(statement_shape(child) for child in body)


def shape_sequence(statements: Sequence[Statement]) -> list[Shape]:
    """The shape of every statement, in order (one tuple-program pass)."""
    return [statement_shape(stmt) for stmt in statements]


def window_periodic(shapes: Sequence[Shape], start: int, period: int) -> bool:
    """Does the window ``[start, start+period)`` repeat one period later?

    True exactly when ``shapes[k] == shapes[k + period]`` for every
    ``k`` in the window — the statement-level footprint of two aligned
    loop iterations.  Windows running past the end are not periodic.
    """
    if start < 0 or period < 1 or start + 2 * period > len(shapes):
        return False
    return all(
        shapes[position] == shapes[position + period]
        for position in range(start, start + period)
    )


def trace_periods(
    shapes: Sequence[Shape], max_period: int | None = None
) -> dict[int, int]:
    """Window counts per period: how much repetition the trace exhibits.

    Maps each period ``L`` (up to ``max_period``, default ``len // 2``)
    to the number of start positions whose ``L``-window repeats.  Purely
    diagnostic — it shows what the window gate would see on a trace.
    """
    limit = max_period if max_period is not None else len(shapes) // 2
    counts: dict[int, int] = {}
    for period in range(1, limit + 1):
        windows = sum(
            1
            for start in range(0, len(shapes) - 2 * period + 1)
            if window_periodic(shapes, start, period)
        )
        if windows:
            counts[period] = windows
    return counts
